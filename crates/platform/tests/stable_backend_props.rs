//! Backend equivalence at the trait boundary, on the full platform stack:
//! the WAL backend must be *observationally invisible* — random fleets with
//! rollbacks and crash schedules, run at 1, 2, and 4 shards, produce
//! byte-identical per-node stable dumps, agent reports, counters, and
//! traces whichever conformant backend sits behind [`mar_simnet::StableStore`].
//!
//! Counters are compared in full — including `stable.writes`,
//! `stable.bytes_written`, and the group-commit barrier count
//! `stable.commits` — so a backend that commits more or fewer batches than
//! the reference model fails loudly.
//!
//! The second half extends the PR 5 step-boundary crash sweep across the
//! trait boundary: at every step boundary the node holding the agent gets a
//! random torn-WAL suffix injected (a partially flushed record marked
//! durable) and is then crashed. Recovery must discard the torn tail, so
//! the run stays byte-identical to the reference-backend run with the
//! identical crash schedule.

mod common;

use std::collections::BTreeMap;

use proptest::prelude::*;

use common::{
    build_platform, gen_agents, gen_crashes, launch_agents, schedule_crashes, stable_dump,
    step_name, strip_engine_counters, GenAgent, GenCrash, GenStep,
};
use mar_core::{LoggingMode, RollbackMode};
use mar_platform::{AgentSpec, ReportOutcome};
use mar_simnet::stable::wal::encode_put_frame;
use mar_simnet::{NodeId, SimDuration, StableFactory, WalBackend, WalConfig};
use mar_wire::Value;

const NODES: u32 = 6;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Everything observable about a finished fleet run.
#[derive(Debug, PartialEq)]
struct FleetFingerprint {
    reports: Vec<(String, u64, u64, Vec<u8>)>,
    stable: Vec<BTreeMap<String, Vec<u8>>>,
    counters: BTreeMap<String, u64>,
    trace: Vec<mar_simnet::TraceRecord>,
}

fn run_fleet(
    seed: u64,
    agents: &[GenAgent],
    crashes: &[GenCrash],
    shards: usize,
    stable: &StableFactory,
) -> FleetFingerprint {
    let mut p = build_platform(NODES, seed, shards, true, stable);
    schedule_crashes(&mut p, NODES, crashes);
    let handles = launch_agents(&mut p, NODES, agents);
    assert!(
        p.run_until_settled(&handles, SimDuration::from_secs(600)),
        "scenario must settle (shards={shards}, backend={})",
        stable.name()
    );
    let reports = handles
        .iter()
        .map(|&h| {
            let r = p.report(h).expect("settled agent has a report");
            (
                format!("{:?}", r.outcome),
                r.steps_committed,
                r.finished_at_us,
                r.record.to_bytes().expect("record encodes"),
            )
        })
        .collect();
    FleetFingerprint {
        reports,
        stable: stable_dump(&p),
        counters: strip_engine_counters(p.snapshot().counters),
        trace: p.world().trace().records().to_vec(),
    }
}

/// Asserts the WAL run is byte-identical to the reference run at every
/// shard count.
fn assert_backend_invariant(seed: u64, agents: &[GenAgent], crashes: &[GenCrash]) {
    let wal = StableFactory::wal(WalConfig::default());
    let reference = StableFactory::reference();
    for shards in SHARD_COUNTS {
        let a = run_fleet(seed, agents, crashes, shards, &reference);
        let b = run_fleet(seed, agents, crashes, shards, &wal);
        assert_eq!(
            a.reports, b.reports,
            "agent reports diverge across backends at shards={shards}"
        );
        assert_eq!(
            a.counters, b.counters,
            "counters diverge across backends at shards={shards}"
        );
        assert_eq!(
            a.trace, b.trace,
            "trace diverges across backends at shards={shards}"
        );
        for (i, (ra, rb)) in a.stable.iter().zip(&b.stable).enumerate() {
            assert_eq!(
                ra, rb,
                "stable store diverges on node {i} across backends at shards={shards}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random fleets with rollbacks and crash schedules: reference and WAL
    /// backends are byte-identical at shards 1, 2, and 4.
    #[test]
    fn wal_backend_is_observationally_invisible(
        seed in 0u64..1_000,
        agents in gen_agents(NODES),
        crashes in gen_crashes(NODES),
    ) {
        assert_backend_invariant(seed, &agents, &crashes);
    }
}

/// Pinned fleet (rollbacks + two crashes, one on an agent's home) so a
/// backend regression reproduces without shrinking; also pins a tiny
/// checkpoint threshold, forcing several log rollovers mid-run.
#[test]
fn pinned_fleet_is_backend_invariant_including_rollovers() {
    let agents = vec![
        GenAgent {
            home: 0,
            steps: vec![(0, 0), (1, 2), (0, 4), (2, 1)],
            rollback: true,
        },
        GenAgent {
            home: 2,
            steps: vec![(1, 3), (0, 0), (2, 2)],
            rollback: false,
        },
    ];
    let crashes = vec![
        GenCrash {
            node: 1,
            at_ms: 8,
            down_ms: 25,
        },
        GenCrash {
            node: 3,
            at_ms: 15,
            down_ms: 40,
        },
    ];
    assert_backend_invariant(4321, &agents, &crashes);
    // Tiny checkpoints: same fingerprint as the reference at 1 shard.
    let small = StableFactory::wal(WalConfig {
        checkpoint_bytes: 256,
        path: None,
    });
    let a = run_fleet(4321, &agents, &crashes, 1, &StableFactory::reference());
    let b = run_fleet(4321, &agents, &crashes, 1, &small);
    assert_eq!(a, b, "tiny-checkpoint WAL diverges from reference");
}

// ---------------------------------------------------------------------------
// Torn-tail injection at every step boundary (extends the PR 5 sweep
// across the trait boundary).
// ---------------------------------------------------------------------------

/// Durable outcome of a single-agent run driven with a crash (and, on the
/// WAL arm, a torn-tail injection) at one step boundary.
#[derive(Debug, PartialEq)]
struct BoundaryFingerprint {
    outcome: ReportOutcome,
    steps_committed: u64,
    finished_at_us: u64,
    record_bytes: Vec<u8>,
    stable: Vec<BTreeMap<String, Vec<u8>>>,
    counters: BTreeMap<String, u64>,
}

/// Runs the fixed sweep itinerary; after `boundary` step commits the node
/// holding the agent is crashed for 300 ms. With `torn: Some((key, cut))`
/// (WAL arm only) a partial put frame for `key` cut at `cut` bytes is
/// injected into the holder's durable log right before the crash.
fn run_boundary(
    steps: &[GenStep],
    boundary: u64,
    stable: &StableFactory,
    torn: Option<(&str, usize)>,
) -> BoundaryFingerprint {
    let mut p = build_platform(NODES, 7, 1, true, stable);
    let it = {
        let mut b = mar_itinerary::ItineraryBuilder::main("I");
        b = b.sub("S", |s| {
            for (i, g) in steps.iter().enumerate() {
                s.step(step_name(g.kind, i), g.node);
            }
        });
        b.build().expect("valid itinerary")
    };
    let mut spec = AgentSpec::new("scripted", NodeId(0), it);
    spec.logging = LoggingMode::State;
    spec.mode = RollbackMode::Optimized;
    spec.data.set_sro("notes", Value::list([]));
    let agent = p.launch(spec);

    let mut crashed = false;
    for _ in 0..3_000 {
        p.run_for(SimDuration::from_millis(2));
        if !crashed && p.snapshot().counter("steps.committed") >= boundary {
            let holder = p
                .queued_agents()
                .iter()
                .find(|(_, id)| *id == agent.id())
                .map(|(n, _)| *n);
            if let Some(n) = holder {
                if let Some((key, cut)) = torn {
                    // A flush of `key` was interrupted mid-frame: the torn
                    // prefix sits in the durable log when the node dies.
                    let mut frame = Vec::new();
                    encode_put_frame(&mut frame, key, &[0xAB; 64]);
                    let cut = cut % frame.len();
                    p.world_mut()
                        .stable_mut(n)
                        .backend_mut()
                        .as_any_mut()
                        .downcast_mut::<WalBackend>()
                        .expect("wal arm runs on WalBackend")
                        .inject_torn_tail(&frame[..cut]);
                }
                p.world_mut().crash_for(n, SimDuration::from_millis(300));
                crashed = true;
            }
        }
        if p.report(agent).is_some() {
            break;
        }
    }
    assert!(
        p.run_until_settled(&[agent], SimDuration::from_secs(600)),
        "boundary {boundary} must settle ({})",
        stable.name()
    );
    let report = p.report(agent).expect("report");
    BoundaryFingerprint {
        outcome: report.outcome,
        steps_committed: report.steps_committed,
        finished_at_us: report.finished_at_us,
        record_bytes: report.record.to_bytes().expect("record encodes"),
        stable: stable_dump(&p),
        counters: strip_engine_counters(p.snapshot().counters),
    }
}

fn sweep_steps() -> Vec<GenStep> {
    [(0u8, 1u32), (2, 1), (0, 1), (1, 2), (0, 2), (0, 3)]
        .iter()
        .map(|&(kind, node)| GenStep { kind, node })
        .collect()
}

/// Kill the holder at every step boundary with a torn-WAL suffix: the
/// recovered WAL view must be byte-identical to the reference backend under
/// the identical crash schedule — the torn record is as if it never
/// happened.
#[test]
fn torn_tail_at_every_step_boundary_is_invisible() {
    let steps = sweep_steps();
    // Deterministic per-boundary cut offsets: early, mid-varint, mid-key,
    // mid-value, end-minus-one.
    let cuts = [0usize, 1, 5, 17, 40, 68, 71];
    for boundary in 0..=(steps.len() as u64) {
        let cut = cuts[boundary as usize % cuts.len()];
        let reference = run_boundary(&steps, boundary, &StableFactory::reference(), None);
        let wal = run_boundary(
            &steps,
            boundary,
            &StableFactory::wal(WalConfig::default()),
            Some(("q/torn-victim", cut)),
        );
        assert_eq!(
            reference, wal,
            "torn tail leaked at boundary {boundary} (cut {cut})"
        );
        assert_eq!(
            reference.outcome,
            ReportOutcome::Completed,
            "boundary {boundary}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Proptest arm of the same sweep: random boundary × random cut offset
    /// × random itinerary suffix.
    #[test]
    fn random_torn_tails_at_step_boundaries_are_invisible(
        boundary in 0u64..6,
        cut in 0usize..72,
        extra in proptest::collection::vec((0u8..4, 1u32..NODES), 0..3),
    ) {
        let mut steps = sweep_steps();
        steps.extend(extra.iter().map(|&(kind, node)| GenStep { kind, node }));
        let reference = run_boundary(&steps, boundary, &StableFactory::reference(), None);
        let wal = run_boundary(
            &steps,
            boundary,
            &StableFactory::wal(WalConfig::default()),
            Some(("q/torn-victim", cut)),
        );
        prop_assert_eq!(reference, wal);
    }
}
