//! Full-stack smoke tests: forward execution and a simple partial rollback
//! over a few simulated nodes.

use mar_core::{LoggingMode, RollbackMode, RollbackScope};
use mar_itinerary::ItineraryBuilder;
use mar_platform::{
    metric_keys as mk, AgentBehavior, AgentSpec, Platform, PlatformBuilder, ReportOutcome, StepCtx,
    StepDecision,
};
use mar_resources::{comp_undo_transfer, BankRm, DirectoryRm};
use mar_simnet::{NodeId, SimDuration};
use mar_txn::{RmRegistry, TxnError};
use mar_wire::Value;

/// Collects one directory entry per node into a strongly reversible vector.
struct Collector;

impl AgentBehavior for Collector {
    fn step(&self, method: &str, ctx: &mut StepCtx<'_>) -> Result<StepDecision, TxnError> {
        assert!(method.starts_with("collect"));
        let found = ctx.call(
            "dir",
            "query",
            &Value::map([("topic", Value::from("offers"))]),
        )?;
        ctx.sro_push("notes", found);
        Ok(StepDecision::Continue)
    }
}

/// Transfers money on two nodes; on the first visit to the decision step it
/// requests a rollback of the current sub-itinerary, on the second it
/// continues — state it remembers in an *uncompensated* weakly reversible
/// object, which is exactly how an agent "deals with the changed situation"
/// after a rollback (§3.2).
struct Trader;

impl AgentBehavior for Trader {
    fn step(&self, method: &str, ctx: &mut StepCtx<'_>) -> Result<StepDecision, TxnError> {
        match method {
            "reserve" => {
                ctx.call(
                    "bank",
                    "transfer",
                    &Value::map([
                        ("from", Value::from("alice")),
                        ("to", Value::from("escrow")),
                        ("amount", Value::from(40i64)),
                    ]),
                )?;
                ctx.compensate(comp_undo_transfer("bank", "alice", "escrow", 40))?;
                Ok(StepDecision::Continue)
            }
            "decide" => {
                let attempts = ctx.wro("attempts").and_then(Value::as_i64).unwrap_or(0);
                if attempts == 0 {
                    // A plain set_wro would be undone with the aborting step
                    // transaction; memos ride on the rollback request.
                    ctx.rollback_memo("attempts", Value::from(1i64));
                    Ok(StepDecision::Rollback(RollbackScope::CurrentSub))
                } else {
                    Ok(StepDecision::Continue)
                }
            }
            other => Ok(StepDecision::Fail(format!("unknown step {other}"))),
        }
    }
}

fn collector_platform(seed: u64) -> Platform {
    let mut b = PlatformBuilder::new(4)
        .seed(seed)
        .behavior("collector", Collector);
    for n in 1..4u32 {
        b = b.resources(NodeId(n), move || {
            let mut rms = RmRegistry::new();
            rms.register(Box::new(
                DirectoryRm::new("dir")
                    .with_entry("offers", Value::from(format!("offer-from-node-{n}"))),
            ));
            rms
        });
    }
    b.build()
}

#[test]
fn collector_visits_all_nodes_and_completes() {
    let mut p = collector_platform(1);
    let it = ItineraryBuilder::main("I")
        .sub("gather", |s| {
            s.step("collect1", 1)
                .step("collect2", 2)
                .step("collect3", 3);
        })
        .build()
        .unwrap();
    let agent = p.launch(AgentSpec::new("collector", NodeId(0), it));
    assert!(
        p.run_until_settled(&[agent], SimDuration::from_secs(60)),
        "agent should finish"
    );
    let report = p.report(agent).unwrap();
    assert_eq!(report.outcome, ReportOutcome::Completed);
    assert_eq!(report.steps_committed, 3);
    let notes = report.record.data.sro("notes").unwrap().as_list().unwrap();
    assert_eq!(notes.len(), 3);
    // Exactly-once: the agent is in no queue anymore.
    assert_eq!(p.residence_count(agent), 0);
    // The gather sub-itinerary is top-level: the log was discarded.
    assert!(report.record.log.is_empty());
    let m = p.snapshot();
    assert_eq!(m.counter(mk::STEPS_COMMITTED), 3);
    assert_eq!(m.counter(mk::AGENT_COMPLETED), 1);
    assert_eq!(m.counter(mk::LOG_DISCARDS), 1);
}

#[test]
fn deterministic_across_reruns() {
    let run = |seed| {
        let mut p = collector_platform(seed);
        let it = ItineraryBuilder::main("I")
            .sub("gather", |s| {
                s.step("collect1", 1).step("collect2", 2);
            })
            .build()
            .unwrap();
        let agent = p.launch(AgentSpec::new("collector", NodeId(0), it));
        p.run_until_settled(&[agent], SimDuration::from_secs(60));
        (p.report(agent).map(|r| r.finished_at_us), p.snapshot())
    };
    assert_eq!(run(7), run(7));
}

fn trader_platform(seed: u64, mode: RollbackMode) -> (Platform, mar_platform::AgentHandle) {
    let mut p = PlatformBuilder::new(3)
        .seed(seed)
        .behavior("trader", Trader)
        .resources(NodeId(1), || {
            let mut rms = RmRegistry::new();
            rms.register(Box::new(
                BankRm::new("bank", false)
                    .with_account("alice", 100)
                    .with_account("escrow", 0),
            ));
            rms
        })
        .build();
    let it = ItineraryBuilder::main("I")
        .sub("trade", |s| {
            s.step("reserve", 1).step("decide", 2);
        })
        .build()
        .unwrap();
    let mut spec = AgentSpec::new("trader", NodeId(0), it);
    spec.mode = mode;
    spec.logging = LoggingMode::State;
    let agent = p.launch(spec);
    (p, agent)
}

fn assert_trader_run(mode: RollbackMode) {
    let (mut p, agent) = trader_platform(3, mode);
    assert!(
        p.run_until_settled(&[agent], SimDuration::from_secs(120)),
        "agent should finish (mode {mode:?})"
    );
    let report = p.report(agent).unwrap();
    assert_eq!(report.outcome, ReportOutcome::Completed, "mode {mode:?}");
    // Committed steps: reserve, then (after the rollback compensated it)
    // reserve again and decide. The first decide aborted — never committed.
    assert_eq!(report.steps_committed, 3);

    let m = p.snapshot();
    assert_eq!(m.counter(mk::ROLLBACK_STARTED), 1);
    assert_eq!(m.counter(mk::ROLLBACK_COMPLETED), 1);

    // Compensation really ran: the net effect is exactly ONE transfer.
    let world = p.world_mut();
    let mole = world
        .service_mut::<mar_platform::MoleService>(NodeId(1), mar_platform::MOLE)
        .unwrap();
    let money = mole.rms().audit_money();
    assert_eq!(money.get("USD"), Some(&100), "conservation");
    // Final balances: alice 60, escrow 40 (one effective transfer).
    let audit = mole.rms();
    let bank = audit.get("bank").unwrap().audit_money();
    assert_eq!(bank.get("USD").and_then(Value::as_i64), Some(100));
    assert_eq!(p.residence_count(agent), 0);
}

#[test]
fn trader_rolls_back_and_recovers_basic() {
    assert_trader_run(RollbackMode::Basic);
}

#[test]
fn trader_rolls_back_and_recovers_optimized() {
    assert_trader_run(RollbackMode::Optimized);
}

/// The acceptance bar of the handle-based driver API: a ≥100-agent fleet
/// settles through `launch_fleet`/`drain_reports`, with completion
/// detection costing one mailbox event per agent — not a stable-store scan
/// per tick per node.
#[test]
fn fleet_of_100_settles_with_mailbox_events_only() {
    const FLEET: usize = 100;
    let mut p = collector_platform(11);
    let it = || {
        ItineraryBuilder::main("I")
            .sub("gather", |s| {
                s.step("collect1", 1).step("collect2", 2);
            })
            .build()
            .unwrap()
    };
    let handles = p.launch_fleet((0..FLEET).map(|_| AgentSpec::new("collector", NodeId(0), it())));
    assert_eq!(handles.len(), FLEET);
    assert!(
        p.run_until_settled(&handles, SimDuration::from_secs(600)),
        "fleet should settle"
    );
    for h in &handles {
        let report = p.report(*h).unwrap();
        assert_eq!(report.outcome, ReportOutcome::Completed, "{h}");
    }
    let m = p.snapshot();
    assert_eq!(m.counter(mk::AGENT_COMPLETED), FLEET as u64);
    // Exactly one mailbox event per completion was consumed, and no
    // deep (whole-store) driver scan ever ran.
    assert_eq!(m.counter(mk::DRIVER_MBOX_EVENTS), FLEET as u64);
    assert_eq!(m.counter(mk::DRIVER_DEEP_SCANS), 0);
    // Reports flowed once: local completions plus acked remote deliveries.
    assert!(m.counter(mk::DRIVER_MBOX_SCANS) > 0);
}

/// Report / mailbox GC: after the driver drains a report, the stable
/// artifacts of the finished agent — the home `report/<id>` copy, the
/// completing node's `done/<id>` record and its outbox entry — are gone,
/// so a long-lived fleet platform does not grow stable storage per
/// finished agent. The report itself stays served from the driver cache,
/// and the money audit still sees the drained wallets.
#[test]
fn drained_reports_are_garbage_collected_from_stable_storage() {
    const FLEET: usize = 20;
    let mut p = collector_platform(17);
    let it = || {
        ItineraryBuilder::main("I")
            .sub("gather", |s| {
                s.step("collect1", 1).step("collect2", 2);
            })
            .build()
            .unwrap()
    };
    let handles = p.launch_fleet((0..FLEET).map(|_| AgentSpec::new("collector", NodeId(0), it())));
    assert!(p.run_until_settled(&handles, SimDuration::from_secs(600)));
    let m = p.snapshot();
    assert_eq!(m.counter(mk::DRIVER_REPORTS_GC), FLEET as u64);
    for node in p.world().node_ids() {
        for prefix in ["report/", "done/", "report-outbox/"] {
            assert_eq!(
                p.world().stable(node).keys_with_prefix(prefix),
                Vec::<String>::new(),
                "stale {prefix} artifacts on {node}"
            );
        }
    }
    // Reports still resolve (from the driver cache), exactly once each.
    for h in &handles {
        assert_eq!(p.report(*h).unwrap().outcome, ReportOutcome::Completed);
    }
}

/// Completions reached by hand-driven `run_for` must be visible to a
/// zero-deadline `run_until_settled` (it drains the mailboxes before
/// deciding, like the pre-handle implementation checked reports up front).
#[test]
fn settle_with_zero_deadline_sees_already_finished_agents() {
    let mut p = collector_platform(13);
    let it = ItineraryBuilder::main("I")
        .sub("gather", |s| {
            s.step("collect1", 1);
        })
        .build()
        .unwrap();
    let agent = p.launch(AgentSpec::new("collector", NodeId(0), it));
    p.run_for(SimDuration::from_secs(30)); // manual drive, no drain
    assert!(
        p.run_until_settled(&[agent], SimDuration::ZERO),
        "finished agent must be visible without advancing time"
    );
}

#[test]
fn optimized_mode_moves_agent_less() {
    let run = |mode| {
        let (mut p, agent) = trader_platform(5, mode);
        p.run_until_settled(&[agent], SimDuration::from_secs(120));
        p.snapshot().counter(mk::TRANSFERS_ROLLBACK)
    };
    let basic = run(RollbackMode::Basic);
    let optimized = run(RollbackMode::Optimized);
    // The compensated step (reserve@1) has only an RCE: the optimized mode
    // must not move the agent at all during rollback.
    assert!(basic >= 1, "basic transfers: {basic}");
    assert_eq!(optimized, 0, "optimized transfers: {optimized}");
}

fn capped_platform(seed: u64, cap: usize) -> Platform {
    let mut b = PlatformBuilder::new(4)
        .seed(seed)
        .report_cache_cap(cap)
        .behavior("collector", Collector);
    for n in 1..4u32 {
        b = b.resources(NodeId(n), move || {
            let mut rms = RmRegistry::new();
            rms.register(Box::new(
                DirectoryRm::new("dir")
                    .with_entry("offers", Value::from(format!("offer-from-node-{n}"))),
            ));
            rms
        });
    }
    b.build()
}

/// The driver's report cache is bounded: beyond the configured cap, the
/// least-recently-used reports are dropped (their stable artifacts were
/// already garbage-collected on drain, so they are gone for good) and the
/// loss is visible in `driver.reports_evicted`.
#[test]
fn report_cache_evicts_least_recently_used_beyond_cap() {
    const FLEET: usize = 5;
    const CAP: usize = 2;
    let mut p = capped_platform(19, CAP);
    let it = || {
        ItineraryBuilder::main("I")
            .sub("gather", |s| {
                s.step("collect1", 1);
            })
            .build()
            .unwrap()
    };
    let handles = p.launch_fleet((0..FLEET).map(|_| AgentSpec::new("collector", NodeId(0), it())));
    assert!(p.run_until_settled(&handles, SimDuration::from_secs(600)));
    assert_eq!(
        p.snapshot().counter(mk::DRIVER_REPORTS_EVICTED),
        (FLEET - CAP) as u64
    );
    let cached = handles.iter().filter(|h| p.report(**h).is_some()).count();
    assert_eq!(cached, CAP, "exactly the cap's worth of reports survive");
}

/// `Platform::forget` releases a report and every trace the driver keeps
/// of the agent; under the (large) default cap nothing is ever evicted.
#[test]
fn forget_releases_report_exactly_once() {
    let mut p = collector_platform(23);
    let it = ItineraryBuilder::main("I")
        .sub("gather", |s| {
            s.step("collect1", 1);
        })
        .build()
        .unwrap();
    let agent = p.launch(AgentSpec::new("collector", NodeId(0), it));
    assert!(p.run_until_settled(&[agent], SimDuration::from_secs(60)));

    let report = p.forget(agent).expect("report was cached");
    assert_eq!(report.outcome, ReportOutcome::Completed);
    assert!(p.forget(agent).is_none(), "second forget finds nothing");
    // With home and cache entries gone, only the deep-scan fallback is
    // left, and the stable artifacts were garbage-collected on drain.
    assert!(p.report(agent).is_none());
    assert_eq!(p.snapshot().counter(mk::DRIVER_DEEP_SCANS), 1);
    assert_eq!(p.snapshot().counter(mk::DRIVER_REPORTS_EVICTED), 0);
}
