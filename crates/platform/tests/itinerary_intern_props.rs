//! Equivalence of content-addressed itinerary interning with the
//! ship-inline-every-hop control: for generated scenarios × crash injection
//! at every step boundary × shard counts {1, 2, 4}, a run with interning
//! **on** must be indistinguishable — in everything durable and everything
//! timed — from the identical run with interning **off**:
//!
//! * byte-identical stable storage on every node at quiescence (queues
//!   always hold the inline form: references never reach stable bytes);
//! * identical reports (outcome, committed steps, completion time, final
//!   record bytes);
//! * identical counters (the `itinerary.*` family is the *only* permitted
//!   difference) and a byte-identical kernel trace — reference-compressed
//!   `Prepare`s are billed at their inline size, so send/deliver timelines
//!   cannot drift.
//!
//! Crash semantics: nothing of the intern table or the known-hash sets is
//! persisted. A recovered *sender* ships inline until it re-advertises; a
//! recovered *receiver* re-derives intern entries from the queue items
//! still durable in its own `q/` (the same intern-on-receipt rule applied
//! at recovery admission), which keeps pre-crash advertisements pointing
//! at hashes the node really holds. The sweep crashes the node holding the
//! agent after every step boundary in turn, on the reference backend and
//! the WAL backend.
//!
//! The degraded paths get their own (deliberately non-timed) coverage:
//! an eviction-thrashed cache must fall back to `ItineraryMiss`/inline
//! retransmission without changing any agent-visible outcome, and
//! unknown-hash or truncated/garbled reference frames from the wire must
//! never corrupt a node or enqueue a record.

mod common;

use std::collections::BTreeMap;

use proptest::prelude::*;

use common::{
    build_platform_itin, stable_dump, step_name, strip_engine_counters, strip_itinerary_counters,
    GenStep,
};
use mar_core::itinspan::{encode_ref, itinerary_span, splice_span};
use mar_core::{AgentId, AgentRecord, ItinerarySlot, LoggingMode, RollbackMode};
use mar_platform::{AgentSpec, MoleMsg, ReportOutcome, MOLE};
use mar_simnet::{Address, NodeId, SimDuration, StableFactory, TraceRecord, WalConfig};
use mar_txn::{RemoteWork, TxMsg, TxnId};
use mar_wire::Value;

const NODES: u32 = 4;

/// Everything durable — and everything timed — about a finished run.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    outcome: ReportOutcome,
    steps_committed: u64,
    finished_at_us: u64,
    record_bytes: Vec<u8>,
    /// Per-node dump of the complete stable store.
    stable: Vec<BTreeMap<String, Vec<u8>>>,
    /// All counters except the engine- and `itinerary.*` families.
    counters: BTreeMap<String, u64>,
    /// The complete kernel event trace (sends, deliveries, timers…).
    trace: Vec<TraceRecord>,
    /// `itinerary.*` observability, kept out of the equivalence but used
    /// for the non-vacuity checks.
    ref_transfers: u64,
    refetches: u64,
}

fn itinerary_for(steps: &[GenStep], rollback_at: Option<usize>) -> mar_itinerary::Itinerary {
    let mut b = mar_itinerary::ItineraryBuilder::main("I");
    b = b.sub("S", |s| {
        for (i, g) in steps.iter().enumerate() {
            s.step(step_name(g.kind, i), g.node);
        }
        if let Some(at) = rollback_at {
            s.step(format!("rbk#{}", steps.len()), steps[at % steps.len()].node);
        }
    });
    b.build().expect("valid generated itinerary")
}

/// Runs the generated scenario to completion, optionally crashing the node
/// holding the agent right after `crash_after_steps` step commits.
fn run(
    seed: u64,
    steps: &[GenStep],
    rollback_at: Option<usize>,
    shards: usize,
    interning: bool,
    crash_after_steps: Option<u64>,
    stable: &StableFactory,
) -> RunFingerprint {
    let mut p = build_platform_itin(NODES, seed, shards, interning, 256, stable);
    let mut spec = AgentSpec::new("scripted", NodeId(0), itinerary_for(steps, rollback_at));
    spec.logging = LoggingMode::State;
    spec.mode = RollbackMode::Optimized;
    spec.data.set_sro("notes", Value::list([]));
    let agent = p.launch(spec);

    // Drive by hand so the crash lands exactly at a step boundary: the
    // first poll at which `steps.committed` crosses the threshold.
    if let Some(after) = crash_after_steps {
        let mut crashed = false;
        for _ in 0..3_000 {
            p.run_for(SimDuration::from_millis(2));
            if !crashed && p.snapshot().counter("steps.committed") >= after {
                let holder = p
                    .queued_agents()
                    .iter()
                    .find(|(_, id)| *id == agent.id())
                    .map(|(n, _)| *n);
                if let Some(n) = holder {
                    p.world_mut().crash_for(n, SimDuration::from_millis(300));
                    crashed = true;
                }
            }
            if p.report(agent).is_some() {
                break;
            }
        }
    }
    assert!(
        p.run_until_settled(&[agent], SimDuration::from_secs(600)),
        "scenario must settle (interning={interning})"
    );
    let report = p.report(agent).expect("report");
    let record_bytes = report.record.to_bytes().expect("record encodes");
    let stable = stable_dump(&p);
    let m = p.snapshot();
    let trace = p.world().trace().records().to_vec();
    let ref_transfers = m.counter("itinerary.ref_transfers");
    let refetches = m.counter("itinerary.refetches");
    RunFingerprint {
        outcome: report.outcome,
        steps_committed: report.steps_committed,
        finished_at_us: report.finished_at_us,
        record_bytes,
        stable,
        counters: strip_itinerary_counters(strip_engine_counters(m.counters)),
        trace,
        ref_transfers,
        refetches,
    }
}

fn assert_equivalent(on: &RunFingerprint, off: &RunFingerprint, label: &str) {
    assert_eq!(on.outcome, off.outcome, "{label}: outcome");
    assert_eq!(
        on.steps_committed, off.steps_committed,
        "{label}: committed steps"
    );
    assert_eq!(
        on.finished_at_us, off.finished_at_us,
        "{label}: completion time"
    );
    assert_eq!(
        on.record_bytes, off.record_bytes,
        "{label}: final record bytes"
    );
    assert_eq!(on.counters, off.counters, "{label}: counters");
    for (i, (a, b)) in on.stable.iter().zip(&off.stable).enumerate() {
        assert_eq!(
            a.keys().collect::<Vec<_>>(),
            b.keys().collect::<Vec<_>>(),
            "{label}: stable keys on node {i}"
        );
        for (k, va) in a {
            assert_eq!(
                Some(va),
                b.get(k),
                "{label}: stable bytes for {k:?} on node {i}"
            );
        }
    }
    assert_eq!(
        on.trace.len(),
        off.trace.len(),
        "{label}: trace record count"
    );
    for (i, (a, b)) in on.trace.iter().zip(&off.trace).enumerate() {
        assert_eq!(a, b, "{label}: trace record {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random itineraries (with and without a rollback step), failure-free,
    /// at every pinned shard count: interning on ≡ interning off.
    #[test]
    fn interning_is_observationally_invisible(
        seed in 0u64..1_000,
        raw in proptest::collection::vec((0u8..4, 1u32..NODES), 2..7),
        rollback in 0usize..4,
        shards in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let steps: Vec<GenStep> = raw.iter().map(|&(kind, node)| GenStep { kind, node }).collect();
        // `rollback == 0` means "no rollback step".
        let rollback_at = (rollback > 0).then(|| rollback - 1);
        let reference = StableFactory::reference();
        let on = run(seed, &steps, rollback_at, shards, true, None, &reference);
        let off = run(seed, &steps, rollback_at, shards, false, None, &reference);
        assert_equivalent(&on, &off, &format!("no-crash s{shards}"));
        prop_assert_eq!(&on.outcome, &ReportOutcome::Completed);
        prop_assert_eq!(off.ref_transfers, 0);
    }

    /// Same, under a crash of the node holding the agent at a random step
    /// boundary: the recovered node re-derives its intern entries from its
    /// own durable queue, so both arms converge on identical bytes *and*
    /// identical timelines.
    #[test]
    fn crash_recovery_is_identical_with_interning_on_and_off(
        seed in 0u64..1_000,
        raw in proptest::collection::vec((0u8..4, 1u32..NODES), 2..6),
        crash_after in 0u64..6,
    ) {
        let steps: Vec<GenStep> = raw.iter().map(|&(kind, node)| GenStep { kind, node }).collect();
        let reference = StableFactory::reference();
        let on = run(seed, &steps, None, 1, true, Some(crash_after), &reference);
        let off = run(seed, &steps, None, 1, false, Some(crash_after), &reference);
        assert_equivalent(&on, &off, "crash");
        prop_assert_eq!(&on.outcome, &ReportOutcome::Completed);
    }
}

/// The fixed revisit-heavy itinerary the exhaustive sweeps use: the 1→2
/// edge is traversed three times, so warm migrations really do ship
/// references (the interning best case), and the crash sweep lands on both
/// past senders and past receivers of advertised hashes.
fn sweep_steps() -> Vec<GenStep> {
    [
        (0u8, 1u32),
        (1, 2),
        (0, 1),
        (2, 2), // second 1→2 traversal: ships a reference when warm
        (0, 3),
        (0, 1),
        (0, 2), // third 1→2 traversal
    ]
    .iter()
    .map(|&(kind, node)| GenStep { kind, node })
    .collect()
}

/// Exhaustive (non-random) sweep: the fixed revisit itinerary crashed
/// after every single step boundary in turn, compared across the arms at
/// the given shard count on the given backend.
fn sweep_every_boundary(stable: &StableFactory, shards: usize) {
    let steps = sweep_steps();
    let backend = stable.name();
    for boundary in 0..=(steps.len() as u64) {
        let label = format!("boundary {boundary} s{shards} ({backend})");
        let on = run(11, &steps, None, shards, true, Some(boundary), stable);
        let off = run(11, &steps, None, shards, false, Some(boundary), stable);
        assert_equivalent(&on, &off, &label);
        assert_eq!(on.outcome, ReportOutcome::Completed, "{label}");
        assert_eq!(on.steps_committed, steps.len() as u64, "{label}");
        // The equivalence is not vacuous: the repeated edges really did
        // ship references in the interning arm, and never in the control.
        assert!(on.ref_transfers > 0, "{label}: no reference transfers");
        assert_eq!(off.ref_transfers, 0, "{label}");
        // …and never by falling back to the NACK path: the timelines above
        // could not have matched otherwise.
        assert_eq!(on.refetches, 0, "{label}: unexpected refetch");
    }
}

#[test]
fn crash_at_every_step_boundary_is_identical_at_shard_1() {
    sweep_every_boundary(&StableFactory::reference(), 1);
}

#[test]
fn crash_at_every_step_boundary_is_identical_at_shard_2() {
    sweep_every_boundary(&StableFactory::reference(), 2);
}

#[test]
fn crash_at_every_step_boundary_is_identical_at_shard_4() {
    sweep_every_boundary(&StableFactory::reference(), 4);
}

/// The same sweep with the WAL backend substituted: queue writes become
/// group-committed log records and recovery replays checkpoint + tail.
#[test]
fn crash_at_every_step_boundary_is_identical_on_wal() {
    let wal = StableFactory::wal(WalConfig {
        checkpoint_bytes: 4 * 1024,
        path: None,
    });
    sweep_every_boundary(&wal, 1);
    sweep_every_boundary(&wal, 2);
}

// ---------------------------------------------------------------------------
// Degraded paths: evictions, NACKs, and hostile frames.
// ---------------------------------------------------------------------------

/// Agent-visible outcome only — what the degraded paths must preserve
/// (their extra round-trips legitimately shift completion times).
#[derive(Debug, PartialEq)]
struct OutcomeFingerprint {
    outcomes: Vec<ReportOutcome>,
    steps: Vec<u64>,
    records: Vec<Vec<u8>>,
}

/// Runs three agents with *distinct* itineraries ping-ponging over the same
/// 1⇄2 edge, with the intern table capped at a single entry: every arrival
/// evicts the previous itinerary, so warm senders keep shipping references
/// the receiver no longer holds. Completion must survive purely on the
/// `ItineraryMiss` → inline-retransmit path.
fn run_thrash(interning: bool, cap: usize) -> (OutcomeFingerprint, u64, u64) {
    let reference = StableFactory::reference();
    let mut p = build_platform_itin(NODES, 23, 1, interning, cap, &reference);
    let mut handles = Vec::new();
    for a in 0..3u8 {
        // Distinct step names ⇒ distinct itinerary bytes ⇒ distinct hashes.
        let steps: Vec<GenStep> = (0..6)
            .map(|i| GenStep {
                kind: (a + i) % 3,
                node: 1 + (i as u32) % 2,
            })
            .collect();
        let mut spec = AgentSpec::new("scripted", NodeId(0), itinerary_for(&steps, None));
        spec.logging = LoggingMode::State;
        spec.mode = RollbackMode::Optimized;
        spec.data.set_sro("notes", Value::list([]));
        handles.push(p.launch(spec));
    }
    assert!(
        p.run_until_settled(&handles, SimDuration::from_secs(600)),
        "thrash scenario must settle (interning={interning}, cap={cap})"
    );
    let mut fp = OutcomeFingerprint {
        outcomes: Vec::new(),
        steps: Vec::new(),
        records: Vec::new(),
    };
    for h in &handles {
        let r = p.report(*h).expect("report");
        fp.outcomes.push(r.outcome.clone());
        fp.steps.push(r.steps_committed);
        fp.records
            .push(r.record.to_bytes().expect("record encodes"));
    }
    let m = p.snapshot();
    (
        fp,
        m.counter("itinerary.refetches"),
        m.counter("itinerary.evictions"),
    )
}

/// A single-entry intern table under three competing itineraries: stale
/// advertisements must degrade to NACK + inline retransmit, never to a
/// wrong itinerary or a stuck agent, and the agent-visible outcome must
/// match the interning-off control exactly.
#[test]
fn eviction_thrash_degrades_to_nack_and_inline() {
    let (on, refetches, evictions) = run_thrash(true, 1);
    let (off, off_refetches, _) = run_thrash(false, 1);
    assert_eq!(on, off, "degraded outcome must match the control");
    for o in &on.outcomes {
        assert_eq!(o, &ReportOutcome::Completed);
    }
    assert!(evictions > 0, "cap 1 must evict under 3 itineraries");
    assert!(
        refetches > 0,
        "stale advertisements must exercise the NACK path"
    );
    assert_eq!(off_refetches, 0);
}

/// Builds an encoded agent record whose itinerary section is replaced by
/// `section` — the raw material for hostile `Prepare` frames.
fn record_with_itinerary_section(section: &[u8]) -> Vec<u8> {
    let mut data = mar_core::DataSpace::new();
    data.set_wro("w", Value::from(1i64));
    let record = AgentRecord::new(
        AgentId(999),
        "scripted",
        0,
        data,
        mar_itinerary::samples::fig6(),
        LoggingMode::State,
        RollbackMode::Optimized,
    );
    let bytes = record.to_bytes().expect("record encodes");
    let span = itinerary_span(&bytes).expect("span");
    splice_span(&bytes, span, section)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Hostile reference frames off the wire — unknown hashes, truncated
    /// reference framing, raw garbage in the itinerary section — must
    /// degrade to the NACK/ignore path: the victim node keeps serving its
    /// real agent, never enqueues the hostile record, and never panics.
    #[test]
    fn malformed_reference_frames_never_corrupt_a_node(
        seed in 0u64..500,
        section in prop_oneof![
            // A well-formed reference to a hash nobody interned.
            any::<u64>().prop_map(encode_ref),
            // A reference frame truncated mid-varint.
            any::<u64>().prop_map(|h| {
                let mut b = encode_ref(h);
                b.truncate(b.len().saturating_sub(1).max(1));
                b
            }),
            // Raw garbage where the itinerary section should be.
            proptest::collection::vec(any::<u8>(), 1..24),
        ],
    ) {
        let reference = StableFactory::reference();
        let mut p = build_platform_itin(NODES, seed, 1, true, 256, &reference);
        let steps: Vec<GenStep> =
            [(0u8, 1u32), (1, 2), (0, 1)].iter().map(|&(kind, node)| GenStep { kind, node }).collect();
        let mut spec = AgentSpec::new("scripted", NodeId(0), itinerary_for(&steps, None));
        spec.logging = LoggingMode::State;
        spec.mode = RollbackMode::Optimized;
        spec.data.set_sro("notes", Value::list([]));
        let agent = p.launch(spec);

        // Inject the hostile Prepare at node 1, claiming to be node 3.
        let work = RemoteWork::new("enqueue-fwd", record_with_itinerary_section(&section));
        let msg = MoleMsg::Tx {
            from: NodeId(3),
            msg: TxMsg::Prepare { txn: TxnId::new(NodeId(3), 7_777), work },
        };
        p.world_mut().post(Address::new(NodeId(1), MOLE), msg.encode());

        prop_assert!(
            p.run_until_settled(&[agent], SimDuration::from_secs(600)),
            "victim node must keep settling"
        );
        let report = p.report(agent).expect("report");
        prop_assert_eq!(&report.outcome, &ReportOutcome::Completed);
        // The hostile record must never have been admitted to the queue.
        let leaked = stable_dump(&p)
            .iter()
            .flat_map(BTreeMap::keys)
            .any(|k| k.starts_with("q/") && k.contains("999"));
        prop_assert!(!leaked, "hostile record reached a stable queue");
    }
}

// ---------------------------------------------------------------------------
// Hash stability.
// ---------------------------------------------------------------------------

/// The content hash is a pure function of the tree: every construction
/// path — builder, encode/decode roundtrip, span extraction, resident
/// record — lands on the same 64-bit identity, and it is exactly the FNV
/// hash of the canonical encoding.
#[test]
fn itinerary_hash_is_stable_across_construction_paths() {
    let tree = itinerary_for(&sweep_steps(), Some(2));
    let a = ItinerarySlot::from_tree(tree.clone()).expect("slot");
    let b = ItinerarySlot::from_tree(tree.clone()).expect("slot");
    assert_eq!(a.hash(), b.hash());
    assert_eq!(a.hash(), mar_wire::content_hash64(a.as_bytes()));

    // Through a full record encode and span extraction.
    let mut data = mar_core::DataSpace::new();
    data.set_sro("notes", Value::list([]));
    let record = AgentRecord::new(
        AgentId(7),
        "scripted",
        0,
        data,
        tree.clone(),
        LoggingMode::State,
        RollbackMode::Optimized,
    );
    let bytes = record.to_bytes().expect("record encodes");
    let span = itinerary_span(&bytes).expect("span");
    let c = ItinerarySlot::from_span(&bytes[span]).expect("slot");
    assert_eq!(c.hash(), a.hash());
    assert_eq!(c.materialize().expect("tree"), tree);

    // A different tree ⇒ a different identity (and a rebuilt identical
    // tree ⇒ the same one, independent of construction order).
    let other = itinerary_for(&sweep_steps(), None);
    let d = ItinerarySlot::from_tree(other).expect("slot");
    assert_ne!(d.hash(), a.hash());
    let rebuilt = ItinerarySlot::from_tree(itinerary_for(&sweep_steps(), Some(2))).expect("slot");
    assert_eq!(rebuilt.hash(), a.hash());
}
