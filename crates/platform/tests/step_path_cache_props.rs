//! Equivalence of the resident-record step path with the decode-every-step
//! control: for random itineraries × both logging modes × crash injection
//! at every step boundary, a run with the resident cache **on** must be
//! indistinguishable — in everything durable — from the identical run with
//! the cache **off**:
//!
//! * byte-identical stable storage on every node at quiescence (queues,
//!   resource snapshots, 2PC records, sequence counters);
//! * identical final agent records and reports (outcome, committed steps,
//!   serialized record bytes);
//! * identical step/rollback/transfer metrics (cache hit/miss counters are
//!   the *only* permitted difference).
//!
//! Crash semantics are the paper's: the cache is volatile, so a node
//! restart recovers purely from stable bytes — which the splice encoder
//! keeps byte-identical to the wholesale re-encode. The property is checked
//! on the reference stable backend and re-run with the WAL backend
//! substituted, since the splice path is exactly the workload group commit
//! batches.

mod common;

use std::collections::BTreeMap;

use proptest::prelude::*;

use common::{build_platform, stable_dump, step_name, GenStep};
use mar_core::{LoggingMode, RollbackMode};
use mar_platform::{AgentSpec, ReportOutcome};
use mar_simnet::{NodeId, SimDuration, StableFactory, WalConfig};
use mar_wire::Value;

const NODES: u32 = 4;

/// Everything durable about a finished run.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    outcome: ReportOutcome,
    steps_committed: u64,
    finished_at_us: u64,
    record_bytes: Vec<u8>,
    /// Per-node dump of the complete stable store.
    stable: Vec<BTreeMap<String, Vec<u8>>>,
    steps_metric: u64,
    rollbacks: u64,
    transfer_bytes: u64,
    /// Cache hits — the one counter allowed to differ between the arms.
    resident_hits: u64,
}

/// Runs the generated scenario to completion, optionally crashing the node
/// holding the agent right after `crash_after_steps` step commits.
fn run(
    seed: u64,
    steps: &[GenStep],
    rollback_at: Option<usize>,
    logging: LoggingMode,
    cache: bool,
    crash_after_steps: Option<u64>,
    stable: &StableFactory,
) -> RunFingerprint {
    let mut p = build_platform(NODES, seed, 1, cache, stable);
    let it = {
        let mut b = mar_itinerary::ItineraryBuilder::main("I");
        b = b.sub("S", |s| {
            for (i, g) in steps.iter().enumerate() {
                s.step(step_name(g.kind, i), g.node);
            }
            if let Some(at) = rollback_at {
                s.step(format!("rbk#{}", steps.len()), steps[at % steps.len()].node);
            }
        });
        b.build().expect("valid generated itinerary")
    };
    let mut spec = AgentSpec::new("scripted", NodeId(0), it);
    spec.logging = logging;
    spec.mode = RollbackMode::Optimized;
    spec.data.set_sro("notes", Value::list([]));
    let agent = p.launch(spec);

    // Drive by hand so the crash lands exactly at a step boundary: the
    // first poll at which `steps.committed` crosses the threshold.
    if let Some(after) = crash_after_steps {
        let mut crashed = false;
        for _ in 0..3_000 {
            p.run_for(SimDuration::from_millis(2));
            if !crashed && p.snapshot().counter("steps.committed") >= after {
                let holder = p
                    .queued_agents()
                    .iter()
                    .find(|(_, id)| *id == agent.id())
                    .map(|(n, _)| *n);
                if let Some(n) = holder {
                    p.world_mut().crash_for(n, SimDuration::from_millis(300));
                    crashed = true;
                }
            }
            if p.report(agent).is_some() {
                break;
            }
        }
    }
    assert!(
        p.run_until_settled(&[agent], SimDuration::from_secs(600)),
        "scenario must settle (cache={cache})"
    );
    let report = p.report(agent).expect("report");
    let record_bytes = report.record.to_bytes().expect("record encodes");
    let stable = stable_dump(&p);
    let m = p.snapshot();
    RunFingerprint {
        outcome: report.outcome,
        steps_committed: report.steps_committed,
        finished_at_us: report.finished_at_us,
        record_bytes,
        stable,
        steps_metric: m.counter("steps.committed"),
        rollbacks: m.counter("rollback.completed"),
        transfer_bytes: m.counter("agent.transfer_bytes.forward")
            + m.counter("agent.transfer_bytes.rollback"),
        resident_hits: m.counter("resident.hits"),
    }
}

fn assert_equivalent(on: &RunFingerprint, off: &RunFingerprint, label: &str) {
    assert_eq!(on.outcome, off.outcome, "{label}: outcome");
    assert_eq!(
        on.steps_committed, off.steps_committed,
        "{label}: committed steps"
    );
    assert_eq!(
        on.finished_at_us, off.finished_at_us,
        "{label}: completion time"
    );
    assert_eq!(
        on.record_bytes, off.record_bytes,
        "{label}: final record bytes"
    );
    assert_eq!(on.steps_metric, off.steps_metric, "{label}: step metric");
    assert_eq!(on.rollbacks, off.rollbacks, "{label}: rollbacks");
    assert_eq!(
        on.transfer_bytes, off.transfer_bytes,
        "{label}: transfer bytes"
    );
    for (i, (a, b)) in on.stable.iter().zip(&off.stable).enumerate() {
        assert_eq!(
            a.keys().collect::<Vec<_>>(),
            b.keys().collect::<Vec<_>>(),
            "{label}: stable keys on node {i}"
        );
        for (k, va) in a {
            assert_eq!(
                Some(va),
                b.get(k),
                "{label}: stable bytes for {k:?} on node {i}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random itineraries (with and without a rollback step), both logging
    /// modes, no failures: cache on ≡ cache off.
    #[test]
    fn resident_cache_is_observationally_invisible(
        seed in 0u64..1_000,
        raw in proptest::collection::vec((0u8..4, 1u32..NODES), 2..7),
        rollback in 0usize..4,
        logging in prop_oneof![Just(LoggingMode::State), Just(LoggingMode::Transition)],
    ) {
        let steps: Vec<GenStep> = raw.iter().map(|&(kind, node)| GenStep { kind, node }).collect();
        // `rollback == 0` means "no rollback step".
        let rollback_at = (rollback > 0).then(|| rollback - 1);
        let reference = StableFactory::reference();
        let on = run(seed, &steps, rollback_at, logging, true, None, &reference);
        let off = run(seed, &steps, rollback_at, logging, false, None, &reference);
        assert_equivalent(&on, &off, "no-crash");
        prop_assert_eq!(&on.outcome, &ReportOutcome::Completed);
    }

    /// Same, under a crash of the node holding the agent at a random step
    /// boundary: recovery re-decodes from the spliced stable bytes, and
    /// both arms converge to the identical durable state.
    #[test]
    fn crash_recovery_is_identical_with_cache_on_and_off(
        seed in 0u64..1_000,
        raw in proptest::collection::vec((0u8..4, 1u32..NODES), 2..6),
        crash_after in 0u64..6,
        logging in prop_oneof![Just(LoggingMode::State), Just(LoggingMode::Transition)],
    ) {
        let steps: Vec<GenStep> = raw.iter().map(|&(kind, node)| GenStep { kind, node }).collect();
        let reference = StableFactory::reference();
        let on = run(seed, &steps, None, logging, true, Some(crash_after), &reference);
        let off = run(seed, &steps, None, logging, false, Some(crash_after), &reference);
        assert_equivalent(&on, &off, "crash");
        prop_assert_eq!(&on.outcome, &ReportOutcome::Completed);
    }
}

/// The fixed same-node-run itinerary the exhaustive sweeps use: the
/// resident cache's best case.
fn sweep_steps() -> Vec<GenStep> {
    [
        (0u8, 1u32),
        (2, 1),
        (0, 1), // same-node run: resident steps
        (1, 2),
        (0, 2),
        (0, 3),
    ]
    .iter()
    .map(|&(kind, node)| GenStep { kind, node })
    .collect()
}

/// Exhaustive (non-random) sweep: one fixed itinerary with consecutive
/// same-node runs crashed after every single step boundary in turn.
/// Recovery from the spliced bytes must be byte-equivalent to the
/// decode-every-step control at each boundary, on the given backend.
fn sweep_every_boundary(stable: &StableFactory) {
    let steps = sweep_steps();
    let backend = stable.name();
    for boundary in 0..=(steps.len() as u64) {
        let on = run(
            7,
            &steps,
            None,
            LoggingMode::State,
            true,
            Some(boundary),
            stable,
        );
        let off = run(
            7,
            &steps,
            None,
            LoggingMode::State,
            false,
            Some(boundary),
            stable,
        );
        assert_equivalent(&on, &off, &format!("boundary {boundary} ({backend})"));
        assert_eq!(
            on.outcome,
            ReportOutcome::Completed,
            "boundary {boundary} ({backend})"
        );
        assert_eq!(
            on.steps_committed,
            steps.len() as u64,
            "boundary {boundary} ({backend})"
        );
        // The equivalence is not vacuous: the same-node runs really were
        // served from the resident cache, and the control never was.
        assert!(
            on.resident_hits > 0,
            "boundary {boundary} ({backend}): no cache hits"
        );
        assert_eq!(off.resident_hits, 0, "boundary {boundary} ({backend})");
    }
}

#[test]
fn crash_at_every_step_boundary_recovers_identically() {
    sweep_every_boundary(&StableFactory::reference());
}

/// The same exhaustive sweep with the WAL backend substituted: the spliced
/// queue writes become group-committed log records, and every step-boundary
/// crash recovers from checkpoint + replay instead of a map copy.
#[test]
fn crash_at_every_step_boundary_recovers_identically_on_wal() {
    // A small checkpoint threshold makes several checkpoints happen inside
    // the sweep, so boundaries land before, between, and after rollovers.
    sweep_every_boundary(&StableFactory::wal(WalConfig {
        checkpoint_bytes: 4 * 1024,
        path: None,
    }));
}
