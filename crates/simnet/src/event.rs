//! The kernel event queue.
//!
//! Events are totally ordered by `(time, sequence number)`; the sequence
//! number breaks ties in insertion order, which makes runs reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::node::{Address, NodeId};
use crate::time::SimTime;

/// Identifier of a timer set through [`crate::Ctx::set_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

#[derive(Debug)]
pub(crate) enum Event {
    /// Deliver a network message to a service.
    Deliver {
        from: Address,
        to: Address,
        payload: Vec<u8>,
    },
    /// Fire a timer on a service (valid only for the node epoch it was set in).
    Timer {
        node: NodeId,
        service: &'static str,
        id: TimerId,
        tag: u64,
        epoch: u64,
    },
    /// Crash a node (volatile state is lost).
    NodeDown { node: NodeId },
    /// Recover a node (services rebuilt from factories).
    NodeUp { node: NodeId },
    /// Take a link down (messages in either direction will be dropped at send time).
    LinkDown { a: NodeId, b: NodeId },
    /// Bring a link back up.
    LinkUp { a: NodeId, b: NodeId },
}

#[derive(Debug)]
struct HeapItem {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest event first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Min-heap of pending events keyed by (time, insertion order).
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<HeapItem>,
    seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue::default()
    }

    pub fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapItem { at, seq, event });
    }

    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|i| (i.at, i.event))
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|i| i.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(node: u32) -> Event {
        Event::NodeDown { node: NodeId(node) }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(5), dummy(1));
        q.push(SimTime::from_micros(1), dummy(2));
        q.push(SimTime::from_micros(3), dummy(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.as_micros())).collect();
        assert_eq!(order, [1, 3, 5]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        q.push(t, dummy(10));
        q.push(t, dummy(20));
        match q.pop().unwrap().1 {
            Event::NodeDown { node } => assert_eq!(node, NodeId(10)),
            other => panic!("unexpected {other:?}"),
        }
        match q.pop().unwrap().1 {
            Event::NodeDown { node } => assert_eq!(node, NodeId(20)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(2), dummy(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
