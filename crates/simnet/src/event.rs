//! The kernel event queue.
//!
//! Events are totally ordered by `(time, origin, seq)`: the virtual time the
//! event is due, the id of the node whose callback created it (the driver
//! uses a reserved origin), and a per-origin sequence number. The key is a
//! property of the event's *cause*, not of queue insertion order, so the
//! global order is identical no matter how nodes are partitioned into
//! shards — the foundation of the sharded runtime's determinism guarantee.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::node::{Address, NodeId};
use crate::time::SimTime;

/// Identifier of a timer set through [`crate::Ctx::set_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

/// Origin id used for events scheduled by the driver (world API calls)
/// rather than by a node's callback. Sorts after every real node at equal
/// times, which matches the old global insertion order: driver schedules
/// happen between runs, never between same-instant node events.
pub(crate) const DRIVER_ORIGIN: u64 = u64::MAX;

/// Total order key of a scheduled event: `(time, origin, per-origin seq)`.
pub(crate) type EventKey = (SimTime, u64, u64);

#[derive(Debug)]
pub(crate) enum Event {
    /// Deliver a network message to a service.
    Deliver {
        from: Address,
        to: Address,
        payload: Vec<u8>,
        /// Logical size for the delivery trace (see
        /// [`crate::Ctx::send_billed`]); equals `payload.len()` for
        /// ordinary sends.
        billed: usize,
    },
    /// Fire a timer on a service (valid only for the node epoch it was set in).
    Timer {
        node: NodeId,
        service: &'static str,
        id: TimerId,
        tag: u64,
        epoch: u64,
    },
    /// Crash a node (volatile state is lost).
    NodeDown { node: NodeId },
    /// Recover a node (services rebuilt from factories).
    NodeUp { node: NodeId },
    /// Take a link down (messages in either direction will be dropped at send time).
    LinkDown { a: NodeId, b: NodeId },
    /// Bring a link back up.
    LinkUp { a: NodeId, b: NodeId },
}

#[derive(Debug)]
struct HeapItem {
    key: EventKey,
    event: Event,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest event first.
        other.key.cmp(&self.key)
    }
}

/// Min-heap of pending events keyed by `(time, origin, seq)`.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<HeapItem>,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue::default()
    }

    pub fn push(&mut self, key: EventKey, event: Event) {
        self.heap.push(HeapItem { key, event });
    }

    pub fn pop(&mut self) -> Option<(EventKey, Event)> {
        self.heap.pop().map(|i| (i.key, i.event))
    }

    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|i| i.key)
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|i| i.key.0)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(node: u32) -> Event {
        Event::NodeDown { node: NodeId(node) }
    }

    fn key(us: u64, origin: u64, seq: u64) -> EventKey {
        (SimTime::from_micros(us), origin, seq)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(key(5, 0, 0), dummy(1));
        q.push(key(1, 0, 1), dummy(2));
        q.push(key(3, 0, 2), dummy(3));
        let order: Vec<u64> =
            std::iter::from_fn(|| q.pop().map(|(k, _)| k.0.as_micros())).collect();
        assert_eq!(order, [1, 3, 5]);
    }

    #[test]
    fn ties_break_by_origin_then_seq() {
        let mut q = EventQueue::new();
        q.push(key(7, 2, 0), dummy(10));
        q.push(key(7, 1, 5), dummy(20));
        q.push(key(7, 1, 2), dummy(30));
        q.push(key(7, DRIVER_ORIGIN, 0), dummy(40));
        let order: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::NodeDown { node } => node.0,
                other => panic!("unexpected {other:?}"),
            })
        })
        .collect();
        assert_eq!(order, [30, 20, 10, 40]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(key(2, 0, 0), dummy(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
        assert_eq!(q.peek_key(), Some(key(2, 0, 0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
