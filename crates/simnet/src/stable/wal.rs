//! Log-structured stable backend with group commit.
//!
//! Mutations append length-framed records (the `mar_wire` LEB128 varint
//! framing) to an in-memory write-ahead log. Nothing in the log is durable
//! until the next [`commit`](super::StableBackend::commit) barrier — the
//! kernel issues one per event, so a step transaction's many small writes
//! become one group-committed batch. When the log grows past
//! [`WalConfig::checkpoint_bytes`] the commit takes a checkpoint (the full
//! view re-encoded as put records) and truncates the log. Recovery replays
//! checkpoint + log and discards any torn (partially framed) tail, exactly
//! like a disk log whose final sector write was interrupted.
//!
//! Record format (all integers are unsigned LEB128 varints):
//!
//! ```text
//! frame   := len payload              -- len = payload byte length, > 0
//! payload := 0x00 klen key vlen value -- put
//!          | 0x01 klen key            -- delete
//! ```
//!
//! A frame is *torn* if the buffer ends inside `len` or before `len`
//! payload bytes, if the tag is unknown, if the inner lengths do not
//! consume exactly `len` bytes, or if the key is not UTF-8.

use std::any::Any;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use mar_wire::varint::{get_uvarint, put_uvarint};

use super::{prefix_range, BackendStats, StableBackend};
use crate::node::NodeId;

const TAG_PUT: u8 = 0x00;
const TAG_DELETE: u8 = 0x01;

/// Tuning knobs of the [`WalBackend`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalConfig {
    /// Log size (bytes) at which a commit barrier takes a checkpoint and
    /// truncates the log.
    pub checkpoint_bytes: usize,
    /// Directory for **file-backed** durability: each node keeps a
    /// `node-<id>.log` / `node-<id>.ckpt` pair there, the exact record
    /// format of the in-memory log, with an `fsync` at every group-commit
    /// `durable_len` watermark. `None` (the default) keeps the log in
    /// memory — the right choice for tests and benches; real node-host
    /// processes set a directory so a killed process recovers its committed
    /// state on restart.
    pub path: Option<PathBuf>,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            checkpoint_bytes: 64 * 1024,
            path: None,
        }
    }
}

/// Appends a put record for `(key, value)` to `out`.
pub fn encode_put_frame(out: &mut Vec<u8>, key: &str, value: &[u8]) {
    let klen = key.len() as u64;
    let vlen = value.len() as u64;
    let body = 1 + varint_len(klen) + key.len() + varint_len(vlen) + value.len();
    put_uvarint(out, body as u64);
    out.push(TAG_PUT);
    put_uvarint(out, klen);
    out.extend_from_slice(key.as_bytes());
    put_uvarint(out, vlen);
    out.extend_from_slice(value);
}

/// Appends a delete record for `key` to `out`.
pub fn encode_delete_frame(out: &mut Vec<u8>, key: &str) {
    let klen = key.len() as u64;
    let body = 1 + varint_len(klen) + key.len();
    put_uvarint(out, body as u64);
    out.push(TAG_DELETE);
    put_uvarint(out, klen);
    out.extend_from_slice(key.as_bytes());
}

fn varint_len(v: u64) -> usize {
    mar_wire::varint::uvarint_len(v)
}

/// One decoded record.
#[derive(Debug, PartialEq, Eq)]
enum Frame<'a> {
    Put(&'a str, &'a [u8]),
    Delete(&'a str),
}

/// Decodes the frame starting at `*pos`, advancing `*pos` past it. Returns
/// `None` — without advancing — if the buffer holds no complete, well-formed
/// frame there (a torn tail).
fn decode_frame<'a>(buf: &'a [u8], pos: &mut usize) -> Option<Frame<'a>> {
    let mut p = *pos;
    let frame = try_decode_frame(buf, &mut p)?;
    *pos = p;
    Some(frame)
}

/// Length of the longest prefix of `buf` made of complete, well-formed
/// frames.
fn valid_prefix_len(buf: &[u8]) -> usize {
    let mut pos = 0usize;
    while pos < buf.len() {
        if decode_frame(buf, &mut pos).is_none() {
            break;
        }
    }
    pos
}

fn try_decode_frame<'a>(buf: &'a [u8], p: &mut usize) -> Option<Frame<'a>> {
    let len = get_uvarint(buf, p).ok()? as usize;
    if len == 0 {
        return None;
    }
    let body = buf.get(*p..*p + len)?;
    *p += len;
    let mut q = 0usize;
    let tag = *body.first()?;
    q += 1;
    let klen = get_uvarint(body, &mut q).ok()? as usize;
    let key = std::str::from_utf8(body.get(q..q + klen)?).ok()?;
    q += klen;
    match tag {
        TAG_PUT => {
            let vlen = get_uvarint(body, &mut q).ok()? as usize;
            let value = body.get(q..q + vlen)?;
            q += vlen;
            if q != len {
                return None;
            }
            Some(Frame::Put(key, value))
        }
        TAG_DELETE => {
            if q != len {
                return None;
            }
            Some(Frame::Delete(key))
        }
        _ => None,
    }
}

/// On-disk persistence of one node's WAL: a log file receiving fsynced
/// appends of committed records, and a checkpoint file replaced atomically
/// (write-to-temp, fsync, rename).
#[derive(Debug)]
struct FileBacking {
    ckpt_path: PathBuf,
    /// Open append handle on the node's log file.
    log_file: File,
}

impl FileBacking {
    fn append_and_sync(&mut self, bytes: &[u8]) {
        self.log_file
            .write_all(bytes)
            .expect("wal: append to log file");
        self.log_file.sync_data().expect("wal: fsync log file");
    }

    /// Replaces the checkpoint file with `checkpoint` and truncates the log
    /// file, in the crash-safe order: new checkpoint durable first.
    fn write_checkpoint(&mut self, checkpoint: &[u8]) {
        let tmp = self.ckpt_path.with_extension("ckpt.tmp");
        let mut f = File::create(&tmp).expect("wal: create checkpoint temp");
        f.write_all(checkpoint).expect("wal: write checkpoint");
        f.sync_all().expect("wal: fsync checkpoint");
        drop(f);
        std::fs::rename(&tmp, &self.ckpt_path).expect("wal: publish checkpoint");
        self.log_file.set_len(0).expect("wal: truncate log file");
        self.log_file.sync_data().expect("wal: fsync truncated log");
    }
}

fn read_file_or_empty(path: &Path) -> Vec<u8> {
    match File::open(path) {
        Ok(mut f) => {
            let mut buf = Vec::new();
            f.read_to_end(&mut buf).expect("wal: read backing file");
            buf
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => panic!("wal: open {}: {e}", path.display()),
    }
}

/// Log-structured stable backend: view + checkpoint + write-ahead log.
///
/// The `view` is the volatile read path (destroyed by a crash); durability
/// lives in `checkpoint` + `log[..durable_len]`. Bytes past `durable_len`
/// are mutations awaiting the next commit barrier. With
/// [`WalConfig::path`] set, the durable prefix additionally lives in real
/// files: committed bytes are appended and fsynced at every barrier, and
/// [`WalBackend::open`] recovers them after a process death.
#[derive(Debug)]
pub struct WalBackend {
    cfg: WalConfig,
    view: BTreeMap<String, Vec<u8>>,
    /// Encoded put records for every key at the last checkpoint.
    checkpoint: Vec<u8>,
    /// Records appended since the last checkpoint.
    log: Vec<u8>,
    /// Length of the crash-durable log prefix.
    durable_len: usize,
    /// Mutations since the last commit barrier.
    pending: u64,
    stats: BackendStats,
    file: Option<FileBacking>,
}

impl WalBackend {
    /// Creates an empty in-memory WAL backend (any [`WalConfig::path`] is
    /// ignored; use [`WalBackend::open`] for file backing).
    pub fn new(cfg: WalConfig) -> Self {
        WalBackend {
            cfg,
            view: BTreeMap::new(),
            checkpoint: Vec::new(),
            log: Vec::new(),
            durable_len: 0,
            pending: 0,
            stats: BackendStats::default(),
            file: None,
        }
    }

    /// Opens the backend for `node`: in-memory when [`WalConfig::path`] is
    /// `None`, otherwise file-backed in that directory (`node-<id>.log` /
    /// `node-<id>.ckpt`), replaying whatever a previous process committed
    /// there and discarding any torn tail — both from the file.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created or the files cannot be
    /// read — a node host that cannot reach its stable storage must not
    /// come up.
    pub fn open(cfg: WalConfig, node: NodeId) -> Self {
        let Some(dir) = cfg.path.clone() else {
            return WalBackend::new(cfg);
        };
        std::fs::create_dir_all(&dir).expect("wal: create backing directory");
        let log_path = dir.join(format!("node-{}.log", node.0));
        let ckpt_path = dir.join(format!("node-{}.ckpt", node.0));
        let checkpoint = read_file_or_empty(&ckpt_path);
        let log = read_file_or_empty(&log_path);
        // Discard a torn tail (a crash mid-append) from the file before
        // opening it for further appends.
        let valid = valid_prefix_len(&log);
        let torn = (log.len() - valid) as u64;
        let log_file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)
            .expect("wal: open log file");
        if torn > 0 {
            log_file.set_len(valid as u64).expect("wal: drop torn tail");
            log_file.sync_data().expect("wal: fsync truncated log");
        }
        let mut backend = WalBackend {
            cfg,
            view: BTreeMap::new(),
            checkpoint,
            log,
            durable_len: 0,
            pending: 0,
            stats: BackendStats::default(),
            file: Some(FileBacking {
                ckpt_path,
                log_file,
            }),
        };
        backend.recover();
        backend
    }

    /// Re-encodes the whole view as the checkpoint and truncates the log.
    fn checkpoint_now(&mut self) {
        self.checkpoint.clear();
        for (k, v) in &self.view {
            encode_put_frame(&mut self.checkpoint, k, v);
        }
        if let Some(f) = &mut self.file {
            f.write_checkpoint(&self.checkpoint);
        }
        self.log.clear();
        self.durable_len = 0;
        self.stats.checkpoints += 1;
        self.stats.checkpoint_bytes += self.checkpoint.len() as u64;
    }

    /// Replays `buf` into `view`, returning the number of bytes consumed by
    /// complete frames and the number of records applied. Stops (without
    /// consuming) at the first torn or malformed frame.
    fn replay(view: &mut BTreeMap<String, Vec<u8>>, buf: &[u8]) -> (usize, u64) {
        let mut pos = 0usize;
        let mut records = 0u64;
        while pos < buf.len() {
            match decode_frame(buf, &mut pos) {
                Some(Frame::Put(k, v)) => {
                    view.insert(k.to_owned(), v.to_vec());
                }
                Some(Frame::Delete(k)) => {
                    view.remove(k);
                }
                None => break,
            }
            records += 1;
        }
        (pos, records)
    }

    /// Test hook: appends `bytes` (typically a prefix of a valid frame) to
    /// the log *as if durable* — modeling a crash that interrupted the disk
    /// flush, leaving a torn tail for recovery to discard. Mutations still
    /// pending at that moment never reached the device either, so they are
    /// dropped first (exactly what the reference model loses on crash).
    pub fn inject_torn_tail(&mut self, bytes: &[u8]) {
        self.log.truncate(self.durable_len);
        self.pending = 0;
        self.log.extend_from_slice(bytes);
        self.durable_len = self.log.len();
        if let Some(f) = &mut self.file {
            f.append_and_sync(bytes);
        }
    }

    /// Current length of the durable log prefix (test inspection).
    pub fn durable_log_len(&self) -> usize {
        self.durable_len
    }
}

impl StableBackend for WalBackend {
    fn name(&self) -> &'static str {
        "wal"
    }

    fn put(&mut self, key: String, value: Vec<u8>) {
        let before = self.log.len();
        encode_put_frame(&mut self.log, &key, &value);
        self.stats.wal_bytes += (self.log.len() - before) as u64;
        self.stats.records += 1;
        self.pending += 1;
        self.view.insert(key, value);
    }

    fn get(&self, key: &str) -> Option<&[u8]> {
        self.view.get(key).map(Vec::as_slice)
    }

    fn delete(&mut self, key: &str) -> Option<Vec<u8>> {
        let prev = self.view.remove(key)?;
        let before = self.log.len();
        encode_delete_frame(&mut self.log, key);
        self.stats.wal_bytes += (self.log.len() - before) as u64;
        self.stats.records += 1;
        self.pending += 1;
        Some(prev)
    }

    fn len(&self) -> usize {
        self.view.len()
    }

    fn iter<'a>(&'a self) -> Box<dyn Iterator<Item = (&'a str, &'a [u8])> + 'a> {
        Box::new(self.view.iter().map(|(k, v)| (k.as_str(), v.as_slice())))
    }

    fn iter_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> Box<dyn Iterator<Item = (&'a str, &'a [u8])> + 'a> {
        Box::new(prefix_range(&self.view, prefix))
    }

    fn commit(&mut self) -> bool {
        let had_pending = self.pending > 0;
        if had_pending {
            let prev = self.durable_len;
            self.durable_len = self.log.len();
            // The fsync *is* the durability watermark: everything up to
            // `durable_len` survives a process death, nothing past it does.
            if let Some(f) = &mut self.file {
                f.append_and_sync(&self.log[prev..self.durable_len]);
            }
            self.pending = 0;
            self.stats.commits += 1;
            if self.log.len() >= self.cfg.checkpoint_bytes {
                self.checkpoint_now();
            }
        }
        had_pending
    }

    fn crash(&mut self) {
        // Uncommitted log bytes never reached stable media.
        self.log.truncate(self.durable_len);
        self.pending = 0;
        // The view is volatile: drop it; `recover` rebuilds it.
        self.view.clear();
        self.recover();
    }

    fn recover(&mut self) {
        // Discard a torn tail: keep only the prefix of complete frames.
        let valid_len = valid_prefix_len(&self.log);
        if valid_len < self.log.len() {
            self.stats.torn_bytes_discarded += (self.log.len() - valid_len) as u64;
            self.log.truncate(valid_len);
        }
        self.durable_len = self.log.len();
        // Rebuild the view: checkpoint first, then the log.
        self.view.clear();
        let (ckpt_bytes, from_checkpoint) = WalBackend::replay(&mut self.view, &self.checkpoint);
        let (log_bytes, from_log) = WalBackend::replay(&mut self.view, &self.log);
        self.pending = 0;
        self.stats.recoveries += 1;
        self.stats.replayed_records += from_checkpoint + from_log;
        self.stats.replayed_bytes += (ckpt_bytes + log_bytes) as u64;
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    /// Clones are memory-resident snapshots: the file handle is *not*
    /// duplicated (two appenders on one log would corrupt it), so a clone
    /// behaves like the in-memory backend with the same state.
    fn clone_backend(&self) -> Box<dyn StableBackend> {
        Box::new(WalBackend {
            cfg: WalConfig {
                path: None,
                ..self.cfg.clone()
            },
            view: self.view.clone(),
            checkpoint: self.checkpoint.clone(),
            log: self.log.clone(),
            durable_len: self.durable_len,
            pending: self.pending,
            stats: self.stats,
            file: None,
        })
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal() -> WalBackend {
        WalBackend::new(WalConfig::default())
    }

    fn dump(b: &WalBackend) -> Vec<(String, Vec<u8>)> {
        b.iter().map(|(k, v)| (k.to_owned(), v.to_vec())).collect()
    }

    #[test]
    fn put_commit_crash_recover_roundtrip() {
        let mut b = wal();
        b.put("a".into(), vec![1, 2]);
        b.put("b".into(), vec![3]);
        assert!(b.commit());
        b.put("c".into(), vec![4]);
        // `c` was never committed: a crash must forget it.
        b.crash();
        assert_eq!(b.get("a"), Some(&[1u8, 2][..]));
        assert_eq!(b.get("b"), Some(&[3u8][..]));
        assert_eq!(b.get("c"), None);
    }

    #[test]
    fn delete_of_absent_key_is_not_a_mutation() {
        let mut b = wal();
        assert_eq!(b.delete("nope"), None);
        assert!(!b.commit());
        assert_eq!(b.stats().records, 0);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_byte_offset_of_the_last_frame() {
        // A committed base plus a torn suffix cut at every possible byte
        // boundary of a valid frame must always recover to exactly the base.
        let mut frame = Vec::new();
        encode_put_frame(&mut frame, "q/agent-42", b"record bytes of some length");
        for cut in 0..frame.len() {
            let mut b = wal();
            b.put("base".into(), vec![9]);
            assert!(b.commit());
            b.inject_torn_tail(&frame[..cut]);
            b.crash();
            assert_eq!(
                dump(&b),
                vec![("base".to_owned(), vec![9])],
                "torn cut at byte {cut} leaked into the recovered view"
            );
            assert_eq!(
                b.stats().torn_bytes_discarded,
                cut as u64,
                "cut at byte {cut}"
            );
        }
    }

    #[test]
    fn complete_injected_frame_is_durable() {
        // The boundary case of the sweep above: a fully written frame in
        // the durable log prefix legitimately replays.
        let mut frame = Vec::new();
        encode_put_frame(&mut frame, "q/agent-42", b"payload");
        let mut b = wal();
        b.put("base".into(), vec![9]);
        assert!(b.commit());
        b.inject_torn_tail(&frame);
        b.crash();
        assert_eq!(b.get("q/agent-42"), Some(&b"payload"[..]));
        assert_eq!(b.stats().torn_bytes_discarded, 0);
    }

    #[test]
    fn recover_twice_equals_recover_once() {
        let mut b = wal();
        b.put("a".into(), vec![1]);
        b.put("b".into(), vec![2]);
        b.commit();
        b.delete("a");
        b.commit();
        let mut torn = Vec::new();
        encode_put_frame(&mut torn, "zz", b"half");
        b.inject_torn_tail(&torn[..torn.len() / 2]);
        b.crash();
        let once = dump(&b);
        let durable = b.durable_log_len();
        b.recover();
        assert_eq!(dump(&b), once);
        assert_eq!(b.durable_log_len(), durable);
        b.recover();
        assert_eq!(dump(&b), once);
    }

    #[test]
    fn checkpoint_truncates_log_and_preserves_scan_order() {
        let mut b = WalBackend::new(WalConfig {
            checkpoint_bytes: 64,
            ..WalConfig::default()
        });
        for i in (0..20).rev() {
            b.put(format!("k/{i:02}"), vec![i as u8; 8]);
            b.commit();
        }
        let stats = b.stats();
        assert!(stats.checkpoints > 0, "log must have rolled over");
        assert!(b.durable_log_len() < 64 + 16, "log was truncated");
        // Ordered prefix scan sees all keys, sorted, across the
        // checkpoint/log split.
        let keys: Vec<&str> = b.iter_prefix("k/").map(|(k, _)| k).collect();
        let expected: Vec<String> = (0..20).map(|i| format!("k/{i:02}")).collect();
        assert_eq!(keys, expected);
        // And the split survives crash + recovery.
        b.crash();
        let keys: Vec<&str> = b.iter_prefix("k/").map(|(k, _)| k).collect();
        assert_eq!(keys, expected);
    }

    #[test]
    fn deletes_replay_over_checkpoint() {
        let mut b = WalBackend::new(WalConfig {
            checkpoint_bytes: 32,
            ..WalConfig::default()
        });
        b.put("keep".into(), vec![1]);
        b.put("drop".into(), vec![2; 40]);
        b.commit(); // big enough to checkpoint
        assert!(b.stats().checkpoints >= 1);
        b.delete("drop");
        b.commit();
        b.crash();
        assert_eq!(b.get("keep"), Some(&[1u8][..]));
        assert_eq!(b.get("drop"), None);
    }

    #[test]
    fn malformed_tags_and_lengths_are_torn() {
        for bad in [
            vec![0x01, 0xFF],             // unknown tag
            vec![0x00],                   // zero-length frame
            vec![0x03, 0x00, 0x01, b'a'], // put frame truncated inside body
            vec![0x02, 0x01, 0x05],       // delete whose klen overruns the body
        ] {
            let mut b = wal();
            b.put("base".into(), vec![7]);
            b.commit();
            b.inject_torn_tail(&bad);
            b.crash();
            assert_eq!(dump(&b), vec![("base".to_owned(), vec![7])], "{bad:?}");
        }
    }

    fn temp_wal_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mar-wal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn file_cfg(dir: &Path, checkpoint_bytes: usize) -> WalConfig {
        WalConfig {
            checkpoint_bytes,
            path: Some(dir.to_path_buf()),
        }
    }

    #[test]
    fn file_backed_state_survives_reopen() {
        let dir = temp_wal_dir("reopen");
        {
            let mut b = WalBackend::open(file_cfg(&dir, 64 * 1024), NodeId(3));
            b.put("a".into(), vec![1, 2]);
            b.put("b".into(), vec![3]);
            assert!(b.commit());
            b.delete("a");
            assert!(b.commit());
            // Pending-but-uncommitted work must not survive the process.
            b.put("lost".into(), vec![9]);
        }
        let b = WalBackend::open(file_cfg(&dir, 64 * 1024), NodeId(3));
        assert_eq!(b.get("a"), None);
        assert_eq!(b.get("b"), Some(&[3u8][..]));
        assert_eq!(b.get("lost"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backed_nodes_are_isolated() {
        let dir = temp_wal_dir("isolated");
        let mut b3 = WalBackend::open(file_cfg(&dir, 64 * 1024), NodeId(3));
        let mut b4 = WalBackend::open(file_cfg(&dir, 64 * 1024), NodeId(4));
        b3.put("k".into(), vec![3]);
        b3.commit();
        b4.put("k".into(), vec![4]);
        b4.commit();
        let b3 = WalBackend::open(file_cfg(&dir, 64 * 1024), NodeId(3));
        let b4 = WalBackend::open(file_cfg(&dir, 64 * 1024), NodeId(4));
        assert_eq!(b3.get("k"), Some(&[3u8][..]));
        assert_eq!(b4.get("k"), Some(&[4u8][..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backed_reopen_discards_torn_tail_at_every_cut() {
        let mut frame = Vec::new();
        encode_put_frame(&mut frame, "q/agent-7", b"torn payload bytes");
        let dir = temp_wal_dir("torn");
        for cut in 0..frame.len() {
            let _ = std::fs::remove_dir_all(&dir);
            {
                let mut b = WalBackend::open(file_cfg(&dir, 64 * 1024), NodeId(0));
                b.put("base".into(), vec![9]);
                assert!(b.commit());
                // Simulate a flush interrupted by the crash: a frame prefix
                // reaches the device.
                b.inject_torn_tail(&frame[..cut]);
            }
            let b = WalBackend::open(file_cfg(&dir, 64 * 1024), NodeId(0));
            assert_eq!(dump(&b), vec![("base".to_owned(), vec![9])], "cut {cut}");
            assert_eq!(b.stats().torn_bytes_discarded, cut as u64, "cut {cut}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backed_checkpoint_rolls_log_and_survives_reopen() {
        let dir = temp_wal_dir("ckpt");
        {
            let mut b = WalBackend::open(file_cfg(&dir, 64), NodeId(1));
            for i in 0..20 {
                b.put(format!("k/{i:02}"), vec![i as u8; 8]);
                b.commit();
            }
            assert!(b.stats().checkpoints > 0, "log must have rolled over");
        }
        let log_len = std::fs::metadata(dir.join("node-1.log"))
            .expect("log file exists")
            .len();
        assert!(log_len < 64 + 16, "log file was truncated at checkpoint");
        let b = WalBackend::open(file_cfg(&dir, 64), NodeId(1));
        let keys: Vec<String> = b.iter_prefix("k/").map(|(k, _)| k.to_owned()).collect();
        let expected: Vec<String> = (0..20).map(|i| format!("k/{i:02}")).collect();
        assert_eq!(keys, expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clone_of_file_backed_is_memory_resident() {
        let dir = temp_wal_dir("clone");
        let mut b = WalBackend::open(file_cfg(&dir, 64 * 1024), NodeId(0));
        b.put("a".into(), vec![1]);
        b.commit();
        let mut c = b.clone_backend();
        c.put("b".into(), vec![2]);
        c.commit();
        // The clone's commit must not have reached the file.
        let reopened = WalBackend::open(file_cfg(&dir, 64 * 1024), NodeId(0));
        assert_eq!(reopened.get("a"), Some(&[1u8][..]));
        assert_eq!(reopened.get("b"), None);
        assert_eq!(c.get("b"), Some(&[2u8][..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_counts_barriers_not_writes() {
        let mut b = wal();
        for i in 0..10 {
            b.put(format!("k{i}"), vec![0]);
        }
        assert!(b.commit());
        let s = b.stats();
        assert_eq!(s.records, 10);
        assert_eq!(s.commits, 1);
    }
}
