//! Per-node stable storage behind a pluggable backend trait.
//!
//! Stable storage survives node crashes — it holds agent input queues,
//! transaction decision records, and prepared writes. The public surface is
//! [`StableStore`], an ordered key-value map of byte strings with prefix
//! scans plus write accounting for the experiments; the durability substrate
//! behind it is a [`StableBackend`] chosen per world through
//! [`StableFactory`]:
//!
//! * [`MemBackend`] — the reference (model) backend: a plain ordered map
//!   with an undo list, so uncommitted mutations are rolled back by a
//!   crash. Its behaviour *is* the durability contract every other backend
//!   is tested against.
//! * [`wal::WalBackend`] — a log-structured backend: mutations append
//!   length-framed records to a write-ahead log, a group-[`commit`] barrier
//!   makes them durable in one batch, periodic checkpoints truncate the
//!   log, and recovery replays the log over the last checkpoint, discarding
//!   any torn tail.
//!
//! The kernel brackets every service callback with
//! [`StableStore::begin_batch`] / [`StableStore::commit`], so the many
//! small writes a step transaction produces coalesce into one commit
//! barrier per event (counted under `stable.commits`). Mutations made
//! outside a batch — driver and test writes through
//! [`crate::World::stable_mut`] — auto-commit individually, keeping the
//! "stable means crash-surviving" contract for every caller.
//!
//! [`commit`]: StableBackend::commit

pub mod wal;

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Bound;
use std::sync::Arc;

pub use wal::{WalBackend, WalConfig};

/// Operation counters reported by a [`StableBackend`].
///
/// `commits` and `records` are backend-independent by construction (every
/// backend counts the same mutations and the same barriers); the remaining
/// fields are populated only by backends with the matching mechanism (log,
/// checkpoints, recovery replay).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Commit barriers that found at least one pending mutation.
    pub commits: u64,
    /// Mutation records accepted (puts plus effective deletes).
    pub records: u64,
    /// Bytes appended to the write-ahead log (cumulative).
    pub wal_bytes: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Bytes written by checkpoints (cumulative).
    pub checkpoint_bytes: u64,
    /// Recovery passes executed.
    pub recoveries: u64,
    /// Records replayed by recovery passes (cumulative).
    pub replayed_records: u64,
    /// Bytes read back (checkpoint plus log) by recovery passes
    /// (cumulative) — the recovery-cost axis of the chaos benchmarks.
    pub replayed_bytes: u64,
    /// Torn (partially written) log bytes discarded by recovery.
    pub torn_bytes_discarded: u64,
}

/// A durability substrate for one node's stable storage.
///
/// Backends are object-safe ([`crate::World`] holds them as
/// `Box<dyn StableBackend>`) and must uphold one contract, pinned by the
/// conformance suite in `tests/backend_conformance.rs`:
///
/// * the *view* (what [`get`]/[`iter`] observe) always reflects every
///   mutation applied so far, committed or not;
/// * [`commit`] makes all pending mutations crash-durable and returns
///   whether there were any — a *mutation* is a put, or a delete that
///   removed a present key;
/// * [`crash`] destroys volatile state: the view reverts to the last
///   committed state;
/// * [`recover`] rebuilds the view after a crash and is idempotent.
///
/// [`get`]: StableBackend::get
/// [`iter`]: StableBackend::iter
/// [`commit`]: StableBackend::commit
/// [`crash`]: StableBackend::crash
/// [`recover`]: StableBackend::recover
pub trait StableBackend: Any + Send + fmt::Debug {
    /// Short backend name (used in factory `Debug` output and bench arms).
    fn name(&self) -> &'static str;

    /// Writes `value` under `key`, replacing any previous value.
    fn put(&mut self, key: String, value: Vec<u8>);

    /// Reads the value stored under `key`.
    fn get(&self, key: &str) -> Option<&[u8]>;

    /// Removes `key`, returning the previous value if present. Deleting an
    /// absent key is not a mutation (no record, no pending commit work).
    fn delete(&mut self, key: &str) -> Option<Vec<u8>>;

    /// Number of entries in the view.
    fn len(&self) -> usize;

    /// Returns `true` if the view holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all `(key, value)` pairs in lexicographic key order.
    fn iter<'a>(&'a self) -> Box<dyn Iterator<Item = (&'a str, &'a [u8])> + 'a>;

    /// Iterates over the `(key, value)` pairs whose key starts with
    /// `prefix`, in lexicographic key order.
    fn iter_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> Box<dyn Iterator<Item = (&'a str, &'a [u8])> + 'a>;

    /// Group-commit barrier: makes every mutation since the previous
    /// barrier crash-durable. Returns `true` iff at least one mutation was
    /// pending (so callers can count occupied barriers consistently across
    /// backends).
    fn commit(&mut self) -> bool;

    /// Simulates the node crash: volatile state is destroyed and the view
    /// reverts to the last committed state.
    fn crash(&mut self);

    /// Rebuilds the view after a crash. Idempotent: recovering twice leaves
    /// the same view as recovering once.
    fn recover(&mut self);

    /// Backend operation counters.
    fn stats(&self) -> BackendStats;

    /// Clones the backend including its current view and counters
    /// (object-safe stand-in for `Clone`).
    fn clone_backend(&self) -> Box<dyn StableBackend>;

    /// Downcast access for backend-specific test hooks (e.g. torn-tail
    /// injection on [`wal::WalBackend`]).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Ordered iteration over the keys of `map` starting with `prefix`.
fn prefix_range<'a>(
    map: &'a BTreeMap<String, Vec<u8>>,
    prefix: &'a str,
) -> impl Iterator<Item = (&'a str, &'a [u8])> + 'a {
    map.range::<str, _>((Bound::Included(prefix), Bound::Unbounded))
        .take_while(move |(k, _)| k.starts_with(prefix))
        .map(|(k, v)| (k.as_str(), v.as_slice()))
}

/// The reference (model) backend: an ordered map plus an undo list of the
/// mutations since the last commit barrier, so a crash rolls uncommitted
/// work back. Simple enough to be obviously correct — the crash-injection
/// proptests compare every other backend against it.
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    view: BTreeMap<String, Vec<u8>>,
    /// `(key, previous value)` per uncommitted mutation, applied in reverse
    /// on crash.
    undo: Vec<(String, Option<Vec<u8>>)>,
    stats: BackendStats,
}

impl MemBackend {
    /// Creates an empty reference backend.
    pub fn new() -> Self {
        MemBackend::default()
    }
}

impl StableBackend for MemBackend {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn put(&mut self, key: String, value: Vec<u8>) {
        let prev = self.view.insert(key.clone(), value);
        self.undo.push((key, prev));
        self.stats.records += 1;
    }

    fn get(&self, key: &str) -> Option<&[u8]> {
        self.view.get(key).map(Vec::as_slice)
    }

    fn delete(&mut self, key: &str) -> Option<Vec<u8>> {
        let prev = self.view.remove(key)?;
        self.undo.push((key.to_owned(), Some(prev.clone())));
        self.stats.records += 1;
        Some(prev)
    }

    fn len(&self) -> usize {
        self.view.len()
    }

    fn iter<'a>(&'a self) -> Box<dyn Iterator<Item = (&'a str, &'a [u8])> + 'a> {
        Box::new(self.view.iter().map(|(k, v)| (k.as_str(), v.as_slice())))
    }

    fn iter_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> Box<dyn Iterator<Item = (&'a str, &'a [u8])> + 'a> {
        Box::new(prefix_range(&self.view, prefix))
    }

    fn commit(&mut self) -> bool {
        let had_pending = !self.undo.is_empty();
        if had_pending {
            self.undo.clear();
            self.stats.commits += 1;
        }
        had_pending
    }

    fn crash(&mut self) {
        for (key, prev) in self.undo.drain(..).rev() {
            match prev {
                Some(v) => self.view.insert(key, v),
                None => self.view.remove(&key),
            };
        }
    }

    fn recover(&mut self) {
        self.stats.recoveries += 1;
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn clone_backend(&self) -> Box<dyn StableBackend> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Constructor for the stable backend of every node in a world — set on
/// [`crate::WorldConfig::stable`].
///
/// # Examples
///
/// ```
/// use mar_simnet::{StableFactory, WalConfig, WorldConfig};
/// let mut cfg = WorldConfig::with_seed(7);
/// cfg.stable = StableFactory::wal(WalConfig::default());
/// assert_eq!(cfg.stable.name(), "wal");
/// ```
#[derive(Clone)]
pub struct StableFactory {
    name: &'static str,
    make: Arc<dyn Fn(crate::node::NodeId) -> Box<dyn StableBackend> + Send + Sync>,
}

impl StableFactory {
    /// The reference in-memory backend (the default).
    pub fn reference() -> Self {
        StableFactory {
            name: "reference",
            make: Arc::new(|_| Box::new(MemBackend::new())),
        }
    }

    /// The log-structured WAL backend with the given tuning. With
    /// [`WalConfig::path`] set the backend is file-backed per node
    /// (recovering whatever an earlier process committed there); the
    /// factory is then named `"wal-file"`.
    pub fn wal(cfg: WalConfig) -> Self {
        let name = if cfg.path.is_some() {
            "wal-file"
        } else {
            "wal"
        };
        StableFactory {
            name,
            make: Arc::new(move |node| Box::new(WalBackend::open(cfg.clone(), node))),
        }
    }

    /// A custom backend constructor (out-of-tree backends). The node id is
    /// ignored; use [`StableFactory::custom_per_node`] for backends that
    /// need it (e.g. per-node files).
    pub fn custom(
        name: &'static str,
        make: impl Fn() -> Box<dyn StableBackend> + Send + Sync + 'static,
    ) -> Self {
        StableFactory {
            name,
            make: Arc::new(move |_| make()),
        }
    }

    /// A custom backend constructor that receives the node id it builds
    /// for.
    pub fn custom_per_node(
        name: &'static str,
        make: impl Fn(crate::node::NodeId) -> Box<dyn StableBackend> + Send + Sync + 'static,
    ) -> Self {
        StableFactory {
            name,
            make: Arc::new(make),
        }
    }

    /// The backend name this factory produces.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Builds the backend instance for `node`.
    pub fn make(&self, node: crate::node::NodeId) -> Box<dyn StableBackend> {
        (self.make)(node)
    }

    /// Builds a [`StableStore`] wrapping a fresh backend instance for
    /// `node`.
    pub fn make_store(&self, node: crate::node::NodeId) -> StableStore {
        StableStore::with_backend(self.make(node))
    }
}

impl Default for StableFactory {
    fn default() -> Self {
        StableFactory::reference()
    }
}

impl fmt::Debug for StableFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StableFactory")
            .field("name", &self.name)
            .finish()
    }
}

/// Crash-surviving key-value store of one node.
///
/// Wraps a [`StableBackend`] with the write accounting the experiments
/// report and the group-commit batching protocol: between
/// [`begin_batch`](StableStore::begin_batch) and
/// [`commit`](StableStore::commit) mutations stay pending on the backend;
/// outside a batch every mutation auto-commits so ad-hoc writes are durable
/// immediately.
///
/// # Examples
///
/// ```
/// use mar_simnet::StableStore;
/// let mut s = StableStore::new();
/// s.put("q/00001", b"agent".to_vec());
/// assert_eq!(s.get("q/00001"), Some(&b"agent"[..]));
/// assert_eq!(s.first_with_prefix("q/"), Some(("q/00001", &b"agent"[..])));
/// ```
#[derive(Debug)]
pub struct StableStore {
    backend: Box<dyn StableBackend>,
    write_ops: u64,
    bytes_written: u64,
    in_batch: bool,
}

impl Default for StableStore {
    fn default() -> Self {
        StableStore::with_backend(Box::new(MemBackend::new()))
    }
}

impl Clone for StableStore {
    fn clone(&self) -> Self {
        StableStore {
            backend: self.backend.clone_backend(),
            write_ops: self.write_ops,
            bytes_written: self.bytes_written,
            in_batch: self.in_batch,
        }
    }
}

impl StableStore {
    /// Creates an empty store on the reference backend.
    pub fn new() -> Self {
        StableStore::default()
    }

    /// Creates an empty store on the given backend.
    pub fn with_backend(backend: Box<dyn StableBackend>) -> Self {
        StableStore {
            backend,
            write_ops: 0,
            bytes_written: 0,
            in_batch: false,
        }
    }

    /// Creates an empty store on a WAL backend (convenience for tests).
    pub fn wal(cfg: WalConfig) -> Self {
        StableStore::with_backend(Box::new(WalBackend::new(cfg)))
    }

    fn autocommit(&mut self) {
        if !self.in_batch {
            self.backend.commit();
        }
    }

    /// Writes `value` under `key`, replacing any previous value.
    pub fn put(&mut self, key: impl Into<String>, value: Vec<u8>) {
        self.write_ops += 1;
        self.bytes_written += value.len() as u64;
        self.backend.put(key.into(), value);
        self.autocommit();
    }

    /// Reads the value stored under `key`.
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.backend.get(key)
    }

    /// Removes `key`, returning the previous value if present.
    pub fn delete(&mut self, key: &str) -> Option<Vec<u8>> {
        let prev = self.backend.delete(key);
        if prev.is_some() {
            self.write_ops += 1;
            self.autocommit();
        }
        prev
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, key: &str) -> bool {
        self.backend.get(key).is_some()
    }

    /// All keys starting with `prefix`, in lexicographic order.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.backend
            .iter_prefix(prefix)
            .map(|(k, _)| k.to_owned())
            .collect()
    }

    /// The lexicographically first `(key, value)` pair under `prefix`,
    /// borrowed from the store (hot queue polls copy nothing).
    pub fn first_with_prefix<'a>(&'a self, prefix: &'a str) -> Option<(&'a str, &'a [u8])> {
        self.backend.iter_prefix(prefix).next()
    }

    /// Number of entries under `prefix`.
    pub fn count_with_prefix(&self, prefix: &str) -> usize {
        self.backend.iter_prefix(prefix).count()
    }

    /// Deletes every key under `prefix`, returning how many were removed.
    /// Each removed key counts as one write operation, exactly as the
    /// equivalent sequence of [`delete`](StableStore::delete) calls would.
    pub fn delete_prefix(&mut self, prefix: &str) -> usize {
        let keys = self.keys_with_prefix(prefix);
        for k in &keys {
            self.backend.delete(k);
        }
        let n = keys.len();
        self.write_ops += n as u64;
        if n > 0 {
            self.autocommit();
        }
        n
    }

    /// Number of entries in the store.
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// Returns `true` if the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.backend.is_empty()
    }

    /// Total write operations performed (including deletes).
    pub fn write_ops(&self) -> u64 {
        self.write_ops
    }

    /// Total bytes written by `put` calls.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Iterates over all `(key, value)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.backend.iter()
    }

    // ----- batching and crash/recovery (kernel protocol) ------------------

    /// Opens a group-commit batch: subsequent mutations stay pending until
    /// [`commit`](StableStore::commit). The kernel brackets every service
    /// callback with this pair.
    pub fn begin_batch(&mut self) {
        self.in_batch = true;
    }

    /// Closes the batch, making every pending mutation crash-durable in one
    /// barrier. Returns `true` iff the batch contained a mutation.
    pub fn commit(&mut self) -> bool {
        self.in_batch = false;
        self.backend.commit()
    }

    /// Crash hook: destroys backend volatile state; uncommitted mutations
    /// are lost.
    pub fn crash_volatile(&mut self) {
        self.in_batch = false;
        self.backend.crash();
    }

    /// Recovery hook: rebuilds the backend view (idempotent).
    pub fn recover(&mut self) {
        self.backend.recover();
    }

    /// Operation counters of the underlying backend.
    pub fn backend_stats(&self) -> BackendStats {
        self.backend.stats()
    }

    /// Name of the underlying backend.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Direct access to the backend (backend-specific test hooks).
    pub fn backend_mut(&mut self) -> &mut dyn StableBackend {
        &mut *self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut s = StableStore::new();
        assert!(s.is_empty());
        s.put("a", vec![1]);
        assert!(s.contains("a"));
        assert_eq!(s.get("a"), Some(&[1u8][..]));
        assert_eq!(s.delete("a"), Some(vec![1]));
        assert_eq!(s.delete("a"), None);
        assert!(s.is_empty());
    }

    #[test]
    fn prefix_scans_ordered() {
        let mut s = StableStore::new();
        s.put("q/2", vec![2]);
        s.put("q/1", vec![1]);
        s.put("r/1", vec![9]);
        assert_eq!(s.keys_with_prefix("q/"), ["q/1", "q/2"]);
        assert_eq!(s.first_with_prefix("q/").unwrap().0, "q/1");
        assert_eq!(s.count_with_prefix("q/"), 2);
        assert_eq!(s.first_with_prefix("zz"), None);
    }

    #[test]
    fn delete_prefix_removes_only_matches() {
        let mut s = StableStore::new();
        s.put("q/1", vec![]);
        s.put("q/2", vec![]);
        s.put("x", vec![]);
        assert_eq!(s.delete_prefix("q/"), 2);
        assert_eq!(s.len(), 1);
        assert!(s.contains("x"));
    }

    #[test]
    fn write_accounting() {
        let mut s = StableStore::new();
        s.put("a", vec![0; 10]);
        s.put("b", vec![0; 5]);
        s.delete("a");
        assert_eq!(s.write_ops(), 3);
        assert_eq!(s.bytes_written(), 15);
    }

    #[test]
    fn delete_prefix_counts_one_op_per_removed_key() {
        // Pinned: removing N keys through `delete_prefix` accounts exactly
        // like N individual `delete` calls.
        let mut bulk = StableStore::new();
        let mut single = StableStore::new();
        for s in [&mut bulk, &mut single] {
            s.put("q/1", vec![1]);
            s.put("q/2", vec![2]);
            s.put("q/3", vec![3]);
            s.put("x", vec![9]);
        }
        assert_eq!(bulk.delete_prefix("q/"), 3);
        for k in ["q/1", "q/2", "q/3"] {
            single.delete(k);
        }
        assert_eq!(bulk.write_ops(), single.write_ops());
        assert_eq!(bulk.write_ops(), 4 + 3);
        // Deleting a prefix with no matches is not a write.
        let before = bulk.write_ops();
        assert_eq!(bulk.delete_prefix("none/"), 0);
        assert_eq!(bulk.write_ops(), before);
    }

    #[test]
    fn first_with_prefix_borrows() {
        let mut s = StableStore::new();
        s.put("q/1", vec![7]);
        let (k, v): (&str, &[u8]) = s.first_with_prefix("q/").unwrap();
        assert_eq!((k, v), ("q/1", &[7u8][..]));
    }

    #[test]
    fn prefix_is_not_confused_by_similar_keys() {
        let mut s = StableStore::new();
        s.put("ab", vec![]);
        s.put("abc", vec![]);
        s.put("abd", vec![]);
        assert_eq!(s.keys_with_prefix("abc"), ["abc"]);
    }

    #[test]
    fn reference_backend_crash_drops_uncommitted_batch() {
        let mut s = StableStore::new();
        s.put("committed", vec![1]);
        s.begin_batch();
        s.put("pending", vec![2]);
        s.delete("committed");
        s.crash_volatile();
        s.recover();
        assert_eq!(s.get("committed"), Some(&[1u8][..]));
        assert_eq!(s.get("pending"), None);
    }

    #[test]
    fn commit_reports_batch_occupancy() {
        let mut s = StableStore::new();
        s.begin_batch();
        assert!(!s.commit(), "empty batch");
        s.begin_batch();
        s.delete("missing");
        assert!(!s.commit(), "no-op delete is not a mutation");
        s.begin_batch();
        s.put("k", vec![1]);
        assert!(s.commit(), "batch with a mutation");
    }

    #[test]
    fn factory_builds_named_backends() {
        assert_eq!(StableFactory::default().name(), "reference");
        assert_eq!(StableFactory::wal(WalConfig::default()).name(), "wal");
        let custom = StableFactory::custom("mine", || Box::new(MemBackend::new()));
        assert_eq!(
            custom.make_store(crate::node::NodeId(0)).backend_name(),
            "reference"
        );
        assert_eq!(custom.name(), "mine");
    }

    #[test]
    fn clone_preserves_view_and_accounting() {
        let mut s = StableStore::wal(WalConfig::default());
        s.put("a", vec![1, 2, 3]);
        let c = s.clone();
        assert_eq!(c.get("a"), Some(&[1u8, 2, 3][..]));
        assert_eq!(c.write_ops(), s.write_ops());
        assert_eq!(c.backend_stats(), s.backend_stats());
    }
}
