//! Deterministic pseudo-random numbers for the simulation.
//!
//! A self-contained xoshiro256** generator (seeded through splitmix64) keeps
//! every run reproducible independent of external crate versions. The `rand`
//! crate is intentionally only used in *tests* elsewhere in the workspace.

/// Deterministic xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use mar_simnet::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent generator, e.g. one stream per node, without
    /// disturbing this generator's sequence more than one draw.
    pub fn fork(&mut self, tag: u64) -> SimRng {
        SimRng::seed_from(self.next_u64() ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection method: unbiased and fast.
        let threshold = n.wrapping_neg() % n; // 2^64 mod n
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// failure inter-arrival times). Returns `0.0` for non-positive means.
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u = 1.0 - self.f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// Returns `None` for an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SimRng::seed_from(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = rng.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::seed_from(0).below(0);
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SimRng::seed_from(9);
        for _ in 0..1_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(11);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn exp_mean_roughly_correct() {
        let mut rng = SimRng::seed_from(13);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exp(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "sample mean {mean}");
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut root1 = SimRng::seed_from(42);
        let mut root2 = SimRng::seed_from(42);
        let mut f1 = root1.fork(1);
        let mut f2 = root2.fork(1);
        assert_eq!(f1.next_u64(), f2.next_u64());
        let mut g1 = root1.fork(2);
        assert_ne!(f1.next_u64(), g1.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(5);
        let mut v: Vec<u32> = (0..32).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn pick_from_empty_is_none() {
        let mut rng = SimRng::seed_from(5);
        assert_eq!(rng.pick::<u8>(&[]), None);
    }
}
