//! The remote-node seam of the kernel: wire-facing events.
//!
//! A distributed deployment runs one [`crate::World`] per process, each
//! world holding *all* node ids (so per-node random streams and event keys
//! are identical everywhere) but hosting services only on the nodes the
//! process owns. Nodes owned by another process are marked **remote** via
//! [`crate::World::mark_remote`]; events routed to them are diverted — with
//! their deterministic `(time, origin, seq)` key already computed — into an
//! egress buffer ([`crate::World::take_remote_egress`]) instead of a local
//! queue, shipped over a real transport, and re-inserted at the owner with
//! [`crate::World::inject_remote`]. Because the key travels with the event,
//! the receiving world processes it in exactly the global order the
//! single-process simulation would have used.

use serde::{Deserialize, Serialize};

use crate::node::{Address, NodeId};
use crate::time::SimTime;

/// A delivery event captured at the remote-egress seam, in a form that can
/// cross a process boundary (no `&'static str`, no queue internals).
///
/// The fields are exactly the event key plus the delivery payload of the
/// kernel's internal `Deliver` event; see [`crate::World::inject_remote`]
/// for the re-insertion contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemoteEvent {
    /// Virtual time the delivery is due, in microseconds.
    pub at_us: u64,
    /// Event-key origin: the id of the node whose callback created the
    /// event, or the reserved driver origin (`u64::MAX`).
    pub origin: u64,
    /// Per-origin sequence number (third key component).
    pub seq: u64,
    /// Sending node (`u32::MAX` for external/driver injections).
    pub from_node: u32,
    /// Sending service name.
    pub from_service: String,
    /// Destination node.
    pub to_node: u32,
    /// Destination service name.
    pub to_service: String,
    /// Message payload bytes.
    pub payload: Vec<u8>,
    /// Billed (logical) size used for latency and byte accounting; equals
    /// `payload.len()` unless the sender used reference compression.
    pub billed: u64,
}

impl RemoteEvent {
    /// The destination address, with the service name interned.
    pub fn to_address(&self) -> Address {
        Address::new(NodeId(self.to_node), intern_service_name(&self.to_service))
    }

    /// The source address, with the service name interned.
    pub fn from_address(&self) -> Address {
        Address::new(
            NodeId(self.from_node),
            intern_service_name(&self.from_service),
        )
    }

    /// The due time as a [`SimTime`].
    pub fn at(&self) -> SimTime {
        SimTime::from_micros(self.at_us)
    }
}

/// Interns a service name, returning a `&'static str` equal to `name`.
///
/// [`Address`] stores service names as `&'static str` (registration uses
/// string literals); events decoded from the wire carry owned strings, so
/// re-insertion needs a leak-once process-wide intern table. The set of
/// distinct service names is tiny and fixed by the program, so the leak is
/// bounded.
pub fn intern_service_name(name: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static TABLE: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut table = TABLE.lock().expect("service-name intern table");
    if let Some(existing) = table.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    table.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_returns_the_same_pointer() {
        let a = intern_service_name("mole-test-name");
        let b = intern_service_name("mole-test-name");
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "mole-test-name");
    }

    #[test]
    fn remote_event_addresses_roundtrip() {
        let ev = RemoteEvent {
            at_us: 42,
            origin: 3,
            seq: 7,
            from_node: 3,
            from_service: "mole".to_owned(),
            to_node: 5,
            to_service: "mole".to_owned(),
            payload: vec![1, 2, 3],
            billed: 3,
        };
        assert_eq!(ev.to_address(), Address::new(NodeId(5), "mole"));
        assert_eq!(ev.from_address().node, NodeId(3));
        assert_eq!(ev.at(), SimTime::from_micros(42));
    }
}
