//! Virtual time for the discrete-event simulation.
//!
//! Time is measured in integer microseconds so that event ordering is exact
//! and runs are reproducible bit-for-bit.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An instant in virtual time (microseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Constructs a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Constructs a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Constructs a duration from fractional seconds, rounding to the
    /// nearest microsecond (negative values clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1e6).round() as u64)
        }
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales the duration by a non-negative factor, rounding.
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us >= 1_000_000 {
            write!(f, "{:.3}s", us as f64 / 1e6)
        } else if us >= 1_000 {
            write!(f, "{:.3}ms", us as f64 / 1e3)
        } else {
            write!(f, "{us}us")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(2);
        assert_eq!(t.as_micros(), 2_000);
        assert_eq!(
            (t + SimDuration::from_micros(5)) - t,
            SimDuration::from_micros(5)
        );
        assert_eq!(t.since(SimTime::from_micros(3_000)), SimDuration::ZERO);
    }

    #[test]
    fn fractional_seconds() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        let d = SimDuration::from_secs(2).mul_f64(1.5);
        assert_eq!(d, SimDuration::from_secs(3));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}
