//! The simulation kernel.
//!
//! [`World`] owns the clock, the nodes, and the network, and advances them
//! deterministically: same seed and same setup ⇒ same event order, same
//! metrics, same trace.
//!
//! # Sharded runtime
//!
//! Nodes are partitioned round-robin across `WorldConfig::shards` shards
//! (node `n` lives on shard `n % N`). Each shard owns its nodes' slots, an
//! event queue, a clock cursor, and its own metrics/trace buffers, so a
//! multi-shard run can process shards on worker threads. Determinism across
//! shard counts comes from two rules:
//!
//! 1. Every event carries the key `(virtual_time, origin, seq)`, where
//!    `origin` is the id of the *node* whose callback created the event (the
//!    driver uses a reserved origin) and `seq` is a per-origin counter. The
//!    key depends only on the event's cause, never on the shard layout, so
//!    the induced total order is identical at any shard count.
//! 2. Randomness is drawn from per-node streams derived from `(seed, node)`
//!    only; message latency is drawn from the *sender's* stream.
//!
//! Multi-shard runs use conservative time windows: with lookahead `L =`
//! [`crate::LatencyModel::min_latency`], every cross-shard message created at
//! time `t` is due no earlier than `t + L`, so all shards can process the
//! window `[m, m + L)` (where `m` is the global minimum pending time) in
//! parallel without ever receiving an event "in the past". Cross-shard
//! events travel through per-shard inboxes and are merged into the
//! destination queue, where the origin-based key restores the global order.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use crate::ctx::{Command, Ctx};
use crate::event::{Event, EventKey, EventQueue, TimerId, DRIVER_ORIGIN};
use crate::metrics::{keys, Metrics, MetricsSnapshot};
use crate::net::{LatencyModel, Network};
use crate::node::{Address, NodeId, NodeSlot, Service};
use crate::remote::RemoteEvent;
use crate::rng::SimRng;
use crate::stable::{StableFactory, StableStore};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceKind, TraceRecord};

/// Static configuration of a [`World`].
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Seed for the deterministic random streams.
    pub seed: u64,
    /// Inter-node message latency model.
    pub latency: LatencyModel,
    /// Delivery delay for messages between services on the same node.
    pub local_delay: SimDuration,
    /// Whether to record a kernel trace.
    pub trace: bool,
    /// Maximum number of trace records kept.
    pub trace_cap: usize,
    /// Number of shards the nodes are partitioned into. `1` (the default)
    /// runs the classic sequential dispatch loop; results are identical at
    /// any value. `0` means **auto**: one shard per available hardware
    /// thread ([`std::thread::available_parallelism`]), falling back to the
    /// sequential engine when the latency model has no usable lookahead.
    pub shards: usize,
    /// Stable-storage backend constructor used for every node. The default
    /// is the reference in-memory backend; results are identical with any
    /// conformant backend.
    pub stable: StableFactory,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0,
            latency: LatencyModel::lan(),
            local_delay: SimDuration::from_micros(10),
            trace: false,
            trace_cap: 100_000,
            shards: 1,
            stable: StableFactory::default(),
        }
    }
}

impl WorldConfig {
    /// Convenience constructor with just a seed.
    pub fn with_seed(seed: u64) -> Self {
        WorldConfig {
            seed,
            ..WorldConfig::default()
        }
    }
}

/// Execution profile of a sharded run, collected when
/// [`World::set_shard_profiling`] is on (see that method for the exact
/// measurement mode). All values accumulate across runs.
#[derive(Debug, Clone, Default)]
pub struct ShardProfile {
    /// Number of conservative time windows executed.
    pub windows: u64,
    /// Busy (event-processing) wall time per shard, in nanoseconds.
    pub busy_ns: Vec<u64>,
    /// Critical-path time: the sum over windows of the *maximum* per-shard
    /// busy time in that window — the time an ideal parallel execution of
    /// the same schedule needs, independent of how many cores the host
    /// actually has.
    pub critical_ns: u64,
}

/// Per-shard state: the nodes owned by this shard plus everything their
/// callbacks touch. A `Shard` is self-contained so a worker thread can
/// process it with `&mut` while other shards run in parallel.
struct Shard {
    id: usize,
    n_shards: usize,
    n_nodes: usize,
    queue: EventQueue,
    slots: Vec<NodeSlot>,
    cancelled: BTreeSet<TimerId>,
    /// Replica of the network state; all shards apply the same link events,
    /// so replicas never diverge.
    net: Network,
    metrics: Metrics,
    trace: Trace,
    /// Records drained from `trace` after each event, tagged with the key
    /// of the event that produced them for the deterministic global merge.
    trace_buf: Vec<(SimTime, u64, u64, TraceRecord)>,
    /// Cross-shard events created while processing: `(dest_shard, key, ev)`.
    outbox: Vec<(usize, EventKey, Event)>,
    /// Nodes owned by another process (see [`World::mark_remote`]); events
    /// routed to them are diverted into `egress` instead of a queue.
    remote: Vec<bool>,
    /// Deliveries destined to remote nodes, with their keys, awaiting
    /// [`World::take_remote_egress`].
    egress: Vec<RemoteEvent>,
}

impl Shard {
    fn local_slot(&self, node: NodeId) -> Option<usize> {
        let i = node.0 as usize;
        if node != NodeId::EXTERNAL && i < self.n_nodes && i % self.n_shards == self.id {
            Some(i / self.n_shards)
        } else {
            None
        }
    }

    fn owned_slot(&mut self, node: NodeId) -> &mut NodeSlot {
        let idx = self
            .local_slot(node)
            .expect("node not hosted on this shard");
        &mut self.slots[idx]
    }

    /// Shard that will process events addressed to `node`; events for
    /// addresses outside the world stay on this shard (and are dropped at
    /// delivery time, exactly like the pre-sharding kernel).
    fn shard_of_or_self(&self, node: NodeId) -> usize {
        let i = node.0 as usize;
        if node != NodeId::EXTERNAL && i < self.n_nodes {
            i % self.n_shards
        } else {
            self.id
        }
    }

    /// Processes one event popped from this shard's queue.
    fn process_event(&mut self, key: EventKey, ev: Event) {
        let now = key.0;
        // Link events are replicated into every shard queue so each replica
        // of the network stays current; only shard 0 accounts for them, so
        // counters and the trace are independent of the shard count.
        let is_link = matches!(ev, Event::LinkDown { .. } | Event::LinkUp { .. });
        if !is_link || self.id == 0 {
            self.metrics.inc(keys::EVENTS);
        }
        match ev {
            Event::Deliver {
                from,
                to,
                payload,
                billed,
            } => self.handle_deliver(now, from, to, payload, billed),
            Event::Timer {
                node,
                service,
                id,
                tag,
                epoch,
            } => self.handle_timer(now, node, service, id, tag, epoch),
            Event::NodeDown { node } => self.crash_now_internal(now, node),
            Event::NodeUp { node } => self.recover_now_internal(now, node),
            Event::LinkDown { a, b } => self.set_link_internal(now, a, b, false),
            Event::LinkUp { a, b } => self.set_link_internal(now, a, b, true),
        }
        self.drain_trace(key);
    }

    /// Moves records produced while handling the event keyed `key` into the
    /// merge buffer.
    fn drain_trace(&mut self, key: EventKey) {
        if self.trace.enabled() {
            for rec in self.trace.take_records() {
                self.trace_buf.push((rec.at, key.1, key.2, rec));
            }
        }
    }

    /// Pops and processes every queued event with `time < end`.
    fn process_until(&mut self, end_us: u64) {
        while let Some(key) = self.queue.peek_key() {
            if key.0.as_micros() >= end_us {
                break;
            }
            let (key, ev) = self.queue.pop().expect("peeked event vanished");
            self.process_event(key, ev);
        }
    }

    fn with_service<F>(&mut self, now: SimTime, node: NodeId, service: &'static str, f: F) -> bool
    where
        F: FnOnce(&mut Box<dyn Service>, &mut Ctx<'_>),
    {
        let mut commands = Vec::new();
        let idx = self
            .local_slot(node)
            .expect("node not hosted on this shard");
        let found = {
            let slot = &mut self.slots[idx];
            match slot.services.remove(service) {
                Some(mut svc) => {
                    // Group-commit bracket: every stable mutation the
                    // callback makes becomes durable in one barrier here —
                    // this is what turns a step transaction's many small
                    // writes into a single backend commit.
                    slot.stable.begin_batch();
                    {
                        let mut ctx = Ctx {
                            now,
                            node: slot.id,
                            service,
                            epoch: slot.epoch,
                            stable: &mut slot.stable,
                            rng: &mut slot.rng,
                            metrics: &self.metrics,
                            trace: &mut self.trace,
                            timer_seq: &mut slot.timer_seq,
                            commands: &mut commands,
                        };
                        f(&mut svc, &mut ctx);
                    }
                    if slot.stable.commit() {
                        self.metrics.inc(keys::STABLE_COMMITS);
                    }
                    slot.services.insert(service, svc);
                    true
                }
                None => false,
            }
        };
        self.apply(now, commands);
        found
    }

    fn apply(&mut self, now: SimTime, commands: Vec<Command>) {
        for cmd in commands {
            match cmd {
                Command::Send {
                    from,
                    to,
                    payload,
                    billed,
                } => self.route(now, from, to, payload, billed),
                Command::SetTimer {
                    node,
                    service,
                    id,
                    tag,
                    epoch,
                    delay,
                } => {
                    let at = now + delay;
                    let seq = self.owned_slot(node).next_event_seq();
                    self.queue.push(
                        (at, node.0 as u64, seq),
                        Event::Timer {
                            node,
                            service,
                            id,
                            tag,
                            epoch,
                        },
                    );
                }
                Command::CancelTimer(id) => {
                    self.cancelled.insert(id);
                }
            }
        }
    }

    /// Routes a message sent by a node hosted on this shard. Latency (and
    /// thus the event key) comes from the sender's own stream, so it does
    /// not depend on the shard layout.
    fn route(&mut self, now: SimTime, from: Address, to: Address, payload: Vec<u8>, billed: usize) {
        let sidx = self.local_slot(from.node).expect("send from foreign node");
        // Latency is charged on the *billed* size: a reference-compressed
        // payload travels on the schedule of its rehydrated form, so
        // volatile cache state can never shift the simulation.
        let latency = {
            let slot = &mut self.slots[sidx];
            self.net
                .delivery_latency(from.node, to.node, billed, &mut slot.rng)
        };
        match latency {
            Some(latency) => {
                let at = now + latency;
                let seq = self.slots[sidx].next_event_seq();
                let key = (at, from.node.0 as u64, seq);
                // A remote destination gets the event — key and all — in
                // the egress buffer; the owning process re-inserts it, so
                // the global order is unchanged by the process split.
                if self
                    .remote
                    .get(to.node.0 as usize)
                    .copied()
                    .unwrap_or(false)
                {
                    self.egress
                        .push(remote_event(key, from, to, payload, billed));
                    return;
                }
                let dest = self.shard_of_or_self(to.node);
                let ev = Event::Deliver {
                    from,
                    to,
                    payload,
                    billed,
                };
                if dest == self.id {
                    self.queue.push(key, ev);
                } else {
                    self.outbox.push((dest, key, ev));
                }
            }
            None => {
                self.metrics.inc(keys::MSGS_DROPPED_LINK_DOWN);
                self.trace.record(
                    now,
                    TraceKind::MsgDroppedLinkDown {
                        from: from.node.0,
                        to: to.node.0,
                    },
                );
            }
        }
    }

    fn handle_deliver(
        &mut self,
        now: SimTime,
        from: Address,
        to: Address,
        payload: Vec<u8>,
        billed: usize,
    ) {
        let Some(idx) = self.local_slot(to.node) else {
            // Destination outside the world (e.g. EXTERNAL): dropped silently.
            return;
        };
        if !self.slots[idx].up {
            self.metrics.inc(keys::MSGS_DROPPED_NODE_DOWN);
            self.trace
                .record(now, TraceKind::MsgDroppedNodeDown { node: to.node.0 });
            return;
        }
        if self.trace.enabled() {
            self.trace.record(
                now,
                TraceKind::MsgDelivered {
                    from: (from.node.0, from.service.to_owned()),
                    to: (to.node.0, to.service.to_owned()),
                    bytes: billed,
                },
            );
        }
        let delivered = self.with_service(now, to.node, to.service, |svc, ctx| {
            svc.on_message(ctx, from, &payload)
        });
        if delivered {
            self.metrics.inc(keys::MSGS_DELIVERED);
        }
    }

    fn handle_timer(
        &mut self,
        now: SimTime,
        node: NodeId,
        service: &'static str,
        id: TimerId,
        tag: u64,
        epoch: u64,
    ) {
        if self.cancelled.remove(&id) {
            return;
        }
        let Some(idx) = self.local_slot(node) else {
            return;
        };
        {
            let slot = &self.slots[idx];
            // Timers set before a crash must not fire into the rebuilt world.
            if !slot.up || slot.epoch != epoch {
                return;
            }
        }
        let fired = self.with_service(now, node, service, |svc, ctx| svc.on_timer(ctx, tag));
        if fired {
            self.metrics.inc(keys::TIMERS_FIRED);
            self.trace.record(
                now,
                TraceKind::TimerFired {
                    node: node.0,
                    service: service.to_owned(),
                    tag,
                },
            );
        }
    }

    fn crash_now_internal(&mut self, now: SimTime, node: NodeId) {
        let slot = self.owned_slot(node);
        if !slot.up {
            return;
        }
        slot.crash();
        self.metrics.inc(keys::NODE_CRASHES);
        self.trace
            .record(now, TraceKind::NodeCrashed { node: node.0 });
    }

    fn recover_now_internal(&mut self, now: SimTime, node: NodeId) {
        {
            let slot = self.owned_slot(node);
            if slot.up {
                return;
            }
            slot.rebuild();
        }
        self.metrics.inc(keys::NODE_RECOVERIES);
        self.trace
            .record(now, TraceKind::NodeRecovered { node: node.0 });
        let idx = self
            .local_slot(node)
            .expect("node not hosted on this shard");
        let names: Vec<&'static str> = self.slots[idx].services.keys().copied().collect();
        for name in names {
            self.with_service(now, node, name, |svc, ctx| svc.on_start(ctx));
        }
    }

    fn set_link_internal(&mut self, now: SimTime, a: NodeId, b: NodeId, up: bool) {
        self.net.set_link(a, b, up);
        if self.id == 0 {
            self.trace
                .record(now, TraceKind::LinkChanged { a: a.0, b: b.0, up });
        }
    }
}

/// Packs a keyed delivery into its wire-facing form for the egress buffer.
fn remote_event(
    key: EventKey,
    from: Address,
    to: Address,
    payload: Vec<u8>,
    billed: usize,
) -> RemoteEvent {
    RemoteEvent {
        at_us: key.0.as_micros(),
        origin: key.1,
        seq: key.2,
        from_node: from.node.0,
        from_service: from.service.to_owned(),
        to_node: to.node.0,
        to_service: to.service.to_owned(),
        payload,
        billed: billed as u64,
    }
}

/// The deterministic discrete-event world.
pub struct World {
    time: SimTime,
    shards: Vec<Shard>,
    n_nodes: usize,
    /// Canonical network state; shards hold replicas.
    net: Network,
    net_dirty: bool,
    driver_rng: SimRng,
    driver_seq: u64,
    metrics: Metrics,
    trace: Trace,
    seed: u64,
    stable_factory: StableFactory,
    lookahead: SimDuration,
    profiling: bool,
    profile: ShardProfile,
    /// Per-node remote flags (see [`World::mark_remote`]); shards hold
    /// replicas.
    remote: Vec<bool>,
    /// Driver-injected deliveries destined to remote nodes.
    egress: Vec<RemoteEvent>,
}

impl World {
    /// Creates an empty world.
    ///
    /// `cfg.shards == 0` selects the shard count automatically: one shard
    /// per available hardware thread, or the sequential engine when the
    /// latency model's lookahead is unusable. Results are byte-identical at
    /// any shard count, so auto mode never changes a simulation.
    ///
    /// # Panics
    ///
    /// Panics if an *explicit* `cfg.shards > 1` is combined with a latency
    /// model whose [`LatencyModel::min_latency`] is below 1µs —
    /// conservative parallel windows need strictly positive cross-shard
    /// lookahead.
    pub fn new(cfg: WorldConfig) -> Self {
        let lookahead = cfg.latency.min_latency();
        let n_shards = if cfg.shards == 0 {
            if lookahead >= SimDuration::from_micros(1) {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            } else {
                1
            }
        } else {
            cfg.shards
        };
        assert!(
            n_shards == 1 || lookahead >= SimDuration::from_micros(1),
            "sharded runtime needs >= 1us latency lookahead (base * (1 - jitter)); \
             use shards = 1 with zero-latency models"
        );
        let net = Network::new(cfg.latency, cfg.local_delay);
        let shards = (0..n_shards)
            .map(|id| Shard {
                id,
                n_shards,
                n_nodes: 0,
                queue: EventQueue::new(),
                slots: Vec::new(),
                cancelled: BTreeSet::new(),
                net: net.clone(),
                metrics: Metrics::new(),
                trace: Trace::new(cfg.trace, cfg.trace_cap),
                trace_buf: Vec::new(),
                outbox: Vec::new(),
                remote: Vec::new(),
                egress: Vec::new(),
            })
            .collect();
        World {
            time: SimTime::ZERO,
            shards,
            n_nodes: 0,
            net,
            net_dirty: false,
            driver_rng: SimRng::seed_from(cfg.seed),
            driver_seq: 0,
            metrics: Metrics::new(),
            trace: Trace::new(cfg.trace, cfg.trace_cap),
            seed: cfg.seed,
            stable_factory: cfg.stable,
            lookahead,
            profiling: false,
            profile: ShardProfile {
                windows: 0,
                busy_ns: vec![0; n_shards],
                critical_ns: 0,
            },
            remote: Vec::new(),
            egress: Vec::new(),
        }
    }

    // ----- topology -------------------------------------------------------

    /// Adds a node; ids are assigned densely starting at 0. Node `n` is
    /// hosted on shard `n % shards`.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.n_nodes as u32);
        // The per-node stream depends only on (seed, node id), never on the
        // shard layout or on draws made by other nodes.
        let mut base = SimRng::seed_from(self.seed);
        let rng = base.fork(0x4E0D_E000u64.wrapping_add(id.0 as u64));
        let s = self.n_nodes % self.shards.len();
        let stable = self.stable_factory.make_store(id);
        self.shards[s].slots.push(NodeSlot::new(id, rng, stable));
        self.n_nodes += 1;
        self.remote.push(false);
        for sh in &mut self.shards {
            sh.n_nodes = self.n_nodes;
            sh.remote.push(false);
        }
        id
    }

    /// Registers a service on `node`. The factory is also used to rebuild
    /// the service after a crash. Call before [`World::start`].
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist or the name is already taken.
    pub fn add_service<F>(&mut self, node: NodeId, name: &'static str, factory: F)
    where
        F: Fn() -> Box<dyn Service> + Send + 'static,
    {
        let slot = self.slot_mut(node);
        assert!(
            !slot.services.contains_key(name),
            "service {name} already registered on {node}"
        );
        slot.services.insert(name, factory());
        slot.factories.push((name, Box::new(factory)));
    }

    /// Invokes `on_start` on every service (nodes in id order, services in
    /// name order). Call once after wiring the topology.
    pub fn start(&mut self) {
        self.sync_replicas_if_dirty();
        let n = self.shards.len();
        for id in 0..self.n_nodes {
            let node = NodeId(id as u32);
            let s = id % n;
            let names: Vec<&'static str> = self.shards[s].slots[id / n]
                .services
                .keys()
                .copied()
                .collect();
            let now = self.time;
            self.driver_call_on_shard(s, |sh| {
                for name in names {
                    sh.with_service(now, node, name, |svc, ctx| svc.on_start(ctx));
                }
            });
        }
        self.sync();
    }

    // ----- time -----------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Processes the next event (in the global `(time, origin, seq)` order,
    /// across all shards). Returns `false` when the queues are empty.
    pub fn step(&mut self) -> bool {
        self.sync_replicas_if_dirty();
        let stepped = self.step_inner();
        self.sync();
        stepped
    }

    /// Runs all events with `time <= until`, then advances the clock to
    /// `until`.
    pub fn run_until(&mut self, until: SimTime) {
        self.sync_replicas_if_dirty();
        if self.profiling {
            self.run_windows_profiled(until);
        } else if self.shards.len() == 1 {
            while let Some(at) = self.shards[0].queue.peek_time() {
                if at > until {
                    break;
                }
                self.step_inner();
            }
        } else {
            self.run_windows_threaded(until);
        }
        if self.time < until {
            self.time = until;
        }
        self.sync();
    }

    /// Runs for a span of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        let until = self.time + d;
        self.run_until(until);
    }

    /// Runs until the event queues drain or `max_events` were processed.
    /// Returns the number of events processed.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        self.sync_replicas_if_dirty();
        let mut n = 0;
        while n < max_events && self.step_inner() {
            n += 1;
        }
        self.sync();
        n
    }

    // ----- failures -------------------------------------------------------

    /// Crashes `node` immediately: volatile state is lost, stable storage
    /// survives. No-op if already down.
    pub fn crash_now(&mut self, node: NodeId) {
        self.sync_replicas_if_dirty();
        let s = node.0 as usize % self.shards.len();
        let now = self.time;
        self.driver_call_on_shard(s, |sh| sh.crash_now_internal(now, node));
        self.sync();
    }

    /// Recovers `node` immediately: services are rebuilt from factories and
    /// `on_start` runs on each. No-op if already up.
    pub fn recover_now(&mut self, node: NodeId) {
        self.sync_replicas_if_dirty();
        let s = node.0 as usize % self.shards.len();
        let now = self.time;
        self.driver_call_on_shard(s, |sh| sh.recover_now_internal(now, node));
        self.sync();
    }

    /// Crashes `node` now and schedules recovery after `downtime`.
    pub fn crash_for(&mut self, node: NodeId, downtime: SimDuration) {
        self.crash_now(node);
        let at = self.time + downtime;
        let key = self.next_driver_key(at);
        let s = node.0 as usize % self.shards.len();
        self.shards[s].queue.push(key, Event::NodeUp { node });
    }

    /// Schedules a crash at absolute time `at` (clamped to now).
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        let key = self.next_driver_key(at.max(self.time));
        let s = node.0 as usize % self.shards.len();
        self.shards[s].queue.push(key, Event::NodeDown { node });
    }

    /// Schedules a recovery at absolute time `at` (clamped to now).
    pub fn schedule_recover(&mut self, at: SimTime, node: NodeId) {
        let key = self.next_driver_key(at.max(self.time));
        let s = node.0 as usize % self.shards.len();
        self.shards[s].queue.push(key, Event::NodeUp { node });
    }

    /// Schedules a link state change at absolute time `at`. The event is
    /// replicated into every shard queue (same key) so each network replica
    /// applies it at the right point in virtual time.
    pub fn schedule_link(&mut self, at: SimTime, a: NodeId, b: NodeId, up: bool) {
        let key = self.next_driver_key(at.max(self.time));
        for sh in &mut self.shards {
            let ev = if up {
                Event::LinkUp { a, b }
            } else {
                Event::LinkDown { a, b }
            };
            sh.queue.push(key, ev);
        }
    }

    // ----- injection & inspection ------------------------------------------

    /// Injects a message from the outside world (e.g. the agent owner).
    pub fn post(&mut self, to: Address, payload: Vec<u8>) {
        self.sync_replicas_if_dirty();
        self.metrics.add(keys::BYTES_SENT, payload.len() as u64);
        match self.net.delivery_latency(
            NodeId::EXTERNAL,
            to.node,
            payload.len(),
            &mut self.driver_rng,
        ) {
            Some(latency) => {
                let at = self.time + latency;
                let key = self.next_driver_key(at);
                let billed = payload.len();
                // Latency draw, byte accounting, and the driver key are
                // identical whether the destination is local or remote, so
                // a process split never shifts the schedule.
                if self
                    .remote
                    .get(to.node.0 as usize)
                    .copied()
                    .unwrap_or(false)
                {
                    self.egress
                        .push(remote_event(key, Address::external(), to, payload, billed));
                    return;
                }
                let dest = if (to.node.0 as usize) < self.n_nodes {
                    to.node.0 as usize % self.shards.len()
                } else {
                    0
                };
                self.shards[dest].queue.push(
                    key,
                    Event::Deliver {
                        from: Address::external(),
                        to,
                        payload,
                        billed,
                    },
                );
            }
            None => {
                self.metrics.inc(keys::MSGS_DROPPED_LINK_DOWN);
                self.trace.record(
                    self.time,
                    TraceKind::MsgDroppedLinkDown {
                        from: NodeId::EXTERNAL.0,
                        to: to.node.0,
                    },
                );
            }
        }
    }

    /// Immutable access to a node's stable storage (test inspection).
    pub fn stable(&self, node: NodeId) -> &StableStore {
        &self.slot(node).stable
    }

    /// Mutable access to a node's stable storage (test setup).
    pub fn stable_mut(&mut self, node: NodeId) -> &mut StableStore {
        &mut self.slot_mut(node).stable
    }

    /// Commit barrier across every **local** node's stable store: any
    /// pending mutations are made crash-durable now. The kernel already
    /// brackets every event in `begin_batch`/`commit`, so at a quiescent
    /// point this is a no-op safety net; a graceful shutdown calls it so a
    /// restart never depends on torn-tail discard. Returns how many stores
    /// actually had pending work.
    pub fn flush_stable(&mut self) -> u64 {
        let mut flushed = 0;
        for node in self.node_ids() {
            if self.is_remote(node) {
                continue;
            }
            if self.stable_mut(node).commit() {
                flushed += 1;
            }
        }
        flushed
    }

    /// Backend durability stats summed over every **local** node's stable
    /// store — recovery-cost reporting for supervised restarts.
    pub fn stable_totals(&self) -> crate::stable::BackendStats {
        let mut total = crate::stable::BackendStats::default();
        for node in self.node_ids() {
            if self.is_remote(node) {
                continue;
            }
            let s = self.stable(node).backend_stats();
            total.commits += s.commits;
            total.records += s.records;
            total.wal_bytes += s.wal_bytes;
            total.checkpoints += s.checkpoints;
            total.checkpoint_bytes += s.checkpoint_bytes;
            total.recoveries += s.recoveries;
            total.replayed_records += s.replayed_records;
            total.replayed_bytes += s.replayed_bytes;
            total.torn_bytes_discarded += s.torn_bytes_discarded;
        }
        total
    }

    /// Whether a node is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.slot(node).up
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// All node ids in order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.n_nodes as u32).map(NodeId).collect()
    }

    /// Downcasts a service for direct inspection or driving from tests.
    pub fn service_mut<T: Service>(&mut self, node: NodeId, name: &'static str) -> Option<&mut T> {
        let slot = self.slot_mut(node);
        let svc = slot.services.get_mut(name)?;
        let any: &mut dyn std::any::Any = svc.as_mut();
        any.downcast_mut::<T>()
    }

    /// Read-only access to a hosted service instance — the non-mutating
    /// sibling of [`World::service_mut`], for driver-side inspection
    /// (audits, test assertions) that must not require `&mut World`.
    pub fn service<T: Service>(&self, node: NodeId, name: &'static str) -> Option<&T> {
        let slot = self.slot(node);
        let svc = slot.services.get(name)?;
        let any: &dyn std::any::Any = svc.as_ref();
        any.downcast_ref::<T>()
    }

    /// The metrics registry. Recording takes `&self`, so read-only probe
    /// paths can count their own work.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Metrics access for higher-level counters recorded outside handlers.
    /// Kept for API continuity; [`World::metrics`] suffices now that
    /// recording takes `&self`.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Convenience snapshot of the metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The kernel trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The network (for link control). Changes are propagated to shard
    /// replicas before the next event is processed.
    pub fn net_mut(&mut self) -> &mut Network {
        self.net_dirty = true;
        &mut self.net
    }

    /// The network state.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// Derives an independent random stream (e.g. for failure planning)
    /// from the driver's stream.
    pub fn rng_fork(&mut self, tag: u64) -> SimRng {
        self.driver_rng.fork(tag)
    }

    /// Number of events waiting across all shard queues. Link state changes
    /// are replicated per shard and count once per replica.
    pub fn pending_events(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Number of shards the world was configured with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Enables critical-path profiling. While on, `run_until`/`run_for`
    /// execute the same conservative windows as the threaded engine but
    /// process shards one at a time under a timer, accumulating per-shard
    /// busy time and the critical path (max busy per window, summed) into
    /// [`World::shard_profile`]. This measures the parallel schedule's
    /// span exactly, independent of host core count; virtual-time results
    /// are identical to unprofiled runs.
    pub fn set_shard_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// The accumulated profile (see [`World::set_shard_profiling`]).
    pub fn shard_profile(&self) -> &ShardProfile {
        &self.profile
    }

    // ----- distributed execution seam ---------------------------------------

    /// Marks `node` as **remote**: owned by another process in a
    /// distributed deployment. The node keeps its id, its random stream,
    /// and its slot (so local nodes' schedules are unaffected), but events
    /// routed to it are diverted — with their deterministic keys — into the
    /// egress buffer ([`World::take_remote_egress`]) instead of a queue.
    ///
    /// Register no services on remote nodes; mark before [`World::start`].
    pub fn mark_remote(&mut self, node: NodeId) {
        let i = node.0 as usize;
        assert!(i < self.n_nodes, "mark_remote: unknown node {node}");
        self.remote[i] = true;
        for sh in &mut self.shards {
            sh.remote[i] = true;
        }
    }

    /// Whether `node` is marked remote.
    pub fn is_remote(&self, node: NodeId) -> bool {
        self.remote.get(node.0 as usize).copied().unwrap_or(false)
    }

    /// Drains every delivery diverted to remote nodes since the last call,
    /// in a deterministic order (driver injections first, then shard id
    /// order). The events carry their `(time, origin, seq)` keys; ship them
    /// to the owning process and re-insert with [`World::inject_remote`].
    pub fn take_remote_egress(&mut self) -> Vec<RemoteEvent> {
        let mut out = std::mem::take(&mut self.egress);
        for sh in &mut self.shards {
            out.append(&mut sh.egress);
        }
        out
    }

    /// Re-inserts a delivery diverted by a peer world's remote-egress seam.
    /// The destination must be a local (non-remote) node of this world; the
    /// event joins the queue under its original key, restoring the exact
    /// global order of the single-process simulation.
    ///
    /// # Panics
    ///
    /// Panics if the destination node is unknown or marked remote here.
    pub fn inject_remote(&mut self, ev: RemoteEvent) {
        let to = ev.to_address();
        let i = to.node.0 as usize;
        assert!(
            i < self.n_nodes && !self.remote[i],
            "inject_remote: node {} is not local to this world",
            to.node
        );
        let key: EventKey = (ev.at(), ev.origin, ev.seq);
        debug_assert!(key.0 >= self.time, "remote event injected into the past");
        let from = ev.from_address();
        let billed = ev.billed as usize;
        let dest = i % self.shards.len();
        self.shards[dest].queue.push(
            key,
            Event::Deliver {
                from,
                to,
                payload: ev.payload,
                billed,
            },
        );
    }

    /// Earliest pending event time across all queues, in microseconds —
    /// the local contribution to a distributed coordinator's global-minimum
    /// computation.
    pub fn local_min_us(&self) -> Option<u64> {
        self.shards
            .iter()
            .filter_map(|sh| sh.queue.peek_time())
            .map(|t| t.as_micros())
            .min()
    }

    /// Processes every queued event with `time < end_us` — one conservative
    /// window of a distributed lockstep run. The window end must come from
    /// the coordinator's global-minimum formula so no in-window event is
    /// still in flight between processes. The clock advances to
    /// `end_us - 1` (the last instant processed); the coordinator finalizes
    /// run boundaries with [`World::advance_clock_to`].
    ///
    /// # Panics
    ///
    /// Panics unless the world runs the sequential engine (`shards == 1`);
    /// distributed deployments parallelize across processes, not shards.
    pub fn run_window(&mut self, end_us: u64) {
        assert_eq!(
            self.shards.len(),
            1,
            "run_window requires the sequential engine (shards = 1)"
        );
        self.sync_replicas_if_dirty();
        self.shards[0].process_until(end_us);
        self.drain_outboxes();
        let processed_up_to = SimTime::from_micros(end_us.saturating_sub(1));
        if processed_up_to > self.time {
            self.time = processed_up_to;
        }
        self.sync();
    }

    /// Advances the clock to `us` microseconds without processing events
    /// (no-op if the clock is already past). Used by distributed runs to
    /// finalize a `run_until` boundary, and by a restarted process to
    /// resume at the coordinator's current time before [`World::start`]
    /// replays recovery.
    pub fn advance_clock_to(&mut self, us: u64) {
        let t = SimTime::from_micros(us);
        if t > self.time {
            self.time = t;
        }
        self.sync();
    }

    // ----- internals --------------------------------------------------------

    fn slot(&self, node: NodeId) -> &NodeSlot {
        let n = self.shards.len();
        &self.shards[node.0 as usize % n].slots[node.0 as usize / n]
    }

    fn slot_mut(&mut self, node: NodeId) -> &mut NodeSlot {
        let n = self.shards.len();
        &mut self.shards[node.0 as usize % n].slots[node.0 as usize / n]
    }

    fn next_driver_key(&mut self, at: SimTime) -> EventKey {
        let key = (at, DRIVER_ORIGIN, self.driver_seq);
        self.driver_seq += 1;
        key
    }

    /// Runs a driver-initiated action on one shard and files any trace
    /// records it produced under a fresh driver key.
    fn driver_call_on_shard(&mut self, s: usize, f: impl FnOnce(&mut Shard)) {
        let key = self.next_driver_key(self.time);
        let shard = &mut self.shards[s];
        f(shard);
        shard.drain_trace(key);
        self.drain_outboxes();
    }

    /// Moves cross-shard events deposited in outboxes into the destination
    /// queues (sequential paths; the threaded engine uses inboxes instead).
    fn drain_outboxes(&mut self) {
        for i in 0..self.shards.len() {
            if self.shards[i].outbox.is_empty() {
                continue;
            }
            let items = std::mem::take(&mut self.shards[i].outbox);
            for (dest, key, ev) in items {
                self.shards[dest].queue.push(key, ev);
            }
        }
    }

    /// Pops and processes the globally earliest event. The scan over shard
    /// queues makes this the exact merged order the windowed engines also
    /// produce.
    fn step_inner(&mut self) -> bool {
        let Some((s, _)) = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(i, sh)| sh.queue.peek_key().map(|k| (i, k)))
            .min_by_key(|&(i, k)| (k, i))
        else {
            return false;
        };
        let (key, ev) = self.shards[s].queue.pop().expect("peeked event vanished");
        debug_assert!(key.0 >= self.time, "event queue went backwards");
        self.time = key.0;
        self.shards[s].process_event(key, ev);
        self.drain_outboxes();
        true
    }

    /// Instrumented sequential-window engine: identical window schedule to
    /// the threaded engine, but shards run one at a time under a timer so
    /// per-shard busy time and the critical path can be measured exactly
    /// even on a single-core host.
    fn run_windows_profiled(&mut self, until: SimTime) {
        let until_us = until.as_micros();
        let lookahead_us = self.lookahead.as_micros();
        while let Some(m) = self
            .shards
            .iter()
            .filter_map(|sh| sh.queue.peek_time())
            .map(|t| t.as_micros())
            .min()
        {
            if m > until_us {
                break;
            }
            let end = m
                .saturating_add(lookahead_us)
                .min(until_us.saturating_add(1))
                .max(m + 1);
            self.profile.windows += 1;
            let mut window_max = 0u64;
            for i in 0..self.shards.len() {
                let t0 = Instant::now();
                self.shards[i].process_until(end);
                let busy = t0.elapsed().as_nanos() as u64;
                self.profile.busy_ns[i] += busy;
                window_max = window_max.max(busy);
            }
            self.profile.critical_ns += window_max;
            self.metrics.inc(keys::WINDOWS);
            self.drain_outboxes();
            let processed_up_to = SimTime::from_micros(end.saturating_sub(1));
            if processed_up_to > self.time {
                self.time = processed_up_to;
            }
        }
    }

    /// Parallel engine: one worker thread per shard, three barrier waits per
    /// window (publish local minima → leader fixes the window → process and
    /// deposit cross-shard events → make deposits visible).
    fn run_windows_threaded(&mut self, until: SimTime) {
        const DONE: u64 = u64::MAX;
        let n = self.shards.len();
        let until_us = until.as_micros();
        let lookahead_us = self.lookahead.as_micros();
        let barrier = Barrier::new(n);
        let window = AtomicU64::new(0);
        let next_min = AtomicU64::new(u64::MAX);
        let windows = AtomicU64::new(0);
        let inboxes: Vec<Mutex<Vec<(EventKey, Event)>>> =
            (0..n).map(|_| Mutex::new(Vec::new())).collect();
        std::thread::scope(|scope| {
            for shard in &mut self.shards {
                let barrier = &barrier;
                let window = &window;
                let next_min = &next_min;
                let windows = &windows;
                let inboxes = &inboxes;
                scope.spawn(move || loop {
                    // Drain events deposited for us in the previous window.
                    let items = std::mem::take(&mut *inboxes[shard.id].lock().expect("inbox"));
                    for (key, ev) in items {
                        shard.queue.push(key, ev);
                    }
                    let local = shard
                        .queue
                        .peek_time()
                        .map(|t| t.as_micros())
                        .unwrap_or(u64::MAX);
                    next_min.fetch_min(local, Ordering::AcqRel);
                    if barrier.wait().is_leader() {
                        let m = next_min.swap(u64::MAX, Ordering::AcqRel);
                        let w = if m == u64::MAX || m > until_us {
                            DONE
                        } else {
                            windows.fetch_add(1, Ordering::Relaxed);
                            m.saturating_add(lookahead_us)
                                .min(until_us.saturating_add(1))
                                .max(m + 1)
                        };
                        window.store(w, Ordering::Release);
                    }
                    barrier.wait();
                    let end = window.load(Ordering::Acquire);
                    if end == DONE {
                        break;
                    }
                    while let Some(key) = shard.queue.peek_key() {
                        if key.0.as_micros() >= end {
                            break;
                        }
                        let (key, ev) = shard.queue.pop().expect("peeked event vanished");
                        shard.process_event(key, ev);
                        for (dest, dkey, dev) in shard.outbox.drain(..) {
                            debug_assert!(
                                dkey.0.as_micros() >= end,
                                "cross-shard event due inside the current window"
                            );
                            inboxes[dest].lock().expect("inbox").push((dkey, dev));
                        }
                    }
                    // Make this window's deposits visible before anyone
                    // drains inboxes for the next one.
                    barrier.wait();
                });
            }
        });
        self.metrics
            .add(keys::WINDOWS, windows.load(Ordering::Relaxed));
    }

    fn sync_replicas_if_dirty(&mut self) {
        if self.net_dirty {
            for sh in &mut self.shards {
                sh.net = self.net.clone();
            }
            self.net_dirty = false;
        }
    }

    /// Folds shard-local state into the world-level views: metrics (shard
    /// id order; counter addition is commutative so totals are layout
    /// independent), trace records (stable merge by event key), and the
    /// canonical network (all replicas are identical — copy shard 0's).
    /// Runs at the end of every public mutating entry point, so `&self`
    /// accessors always see up-to-date global state.
    fn sync(&mut self) {
        self.sync_replicas_if_dirty();
        for sh in &self.shards {
            self.metrics.absorb(&sh.metrics);
        }
        if self.trace.enabled() {
            let mut recs: Vec<(SimTime, u64, u64, TraceRecord)> = Vec::new();
            for sh in &mut self.shards {
                self.trace.add_dropped(sh.trace.dropped());
                sh.trace.clear();
                recs.append(&mut sh.trace_buf);
            }
            recs.sort_by_key(|r| (r.0, r.1, r.2));
            for (_, _, _, rec) in recs {
                self.trace.push_record(rec);
            }
        } else {
            for sh in &mut self.shards {
                sh.trace_buf.clear();
            }
        }
        if let Some(sh) = self.shards.first() {
            self.net = sh.net.clone();
        }
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("time", &self.time)
            .field("nodes", &self.n_nodes)
            .field("shards", &self.shards.len())
            .field("pending_events", &self.pending_events())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every message back to the sender and counts deliveries.
    struct Echo {
        seen: u32,
    }

    impl Service for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Address, payload: &[u8]) {
            self.seen += 1;
            if from.node != NodeId::EXTERNAL && payload != b"stop" {
                ctx.send(from, b"stop".to_vec());
            }
        }
    }

    /// Sends one message to a peer when started.
    struct Starter {
        peer: Address,
    }

    impl Service for Starter {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: Address, _payload: &[u8]) {}
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(self.peer, b"hello".to_vec());
        }
    }

    fn two_node_world() -> (World, NodeId, NodeId) {
        let mut w = World::new(WorldConfig::with_seed(1));
        let a = w.add_node();
        let b = w.add_node();
        (w, a, b)
    }

    #[test]
    fn message_roundtrip() {
        let (mut w, a, b) = two_node_world();
        let echo_b = Address::new(b, "echo");
        w.add_service(a, "echo", || Box::new(Echo { seen: 0 }));
        w.add_service(a, "starter", move || Box::new(Starter { peer: echo_b }));
        w.add_service(b, "echo", || Box::new(Echo { seen: 0 }));
        w.start();
        w.run_to_quiescence(100);
        // starter(a) -> echo(b) -> reply lands back on starter(a).
        assert_eq!(w.service_mut::<Echo>(b, "echo").unwrap().seen, 1);
        assert_eq!(w.service_mut::<Echo>(a, "echo").unwrap().seen, 0);
        assert_eq!(w.metrics().counter(keys::MSGS_DELIVERED), 2);
    }

    #[test]
    fn post_injects_external_messages() {
        let (mut w, a, _) = two_node_world();
        w.add_service(a, "echo", || Box::new(Echo { seen: 0 }));
        w.start();
        w.post(Address::new(a, "echo"), b"x".to_vec());
        w.run_to_quiescence(10);
        assert_eq!(w.service_mut::<Echo>(a, "echo").unwrap().seen, 1);
    }

    #[test]
    fn crash_drops_in_flight_and_resets_state() {
        let (mut w, a, b) = two_node_world();
        w.add_service(a, "echo", || Box::new(Echo { seen: 0 }));
        w.add_service(b, "echo", || Box::new(Echo { seen: 0 }));
        w.start();
        w.post(Address::new(b, "echo"), b"x".to_vec());
        w.crash_now(b); // message still in flight
        w.run_to_quiescence(10);
        assert_eq!(w.metrics().counter(keys::MSGS_DROPPED_NODE_DOWN), 1);
        assert!(!w.is_up(b));
        w.recover_now(b);
        assert!(w.is_up(b));
        // State was rebuilt from the factory.
        assert_eq!(w.service_mut::<Echo>(b, "echo").unwrap().seen, 0);
        let _ = a;
    }

    #[test]
    fn link_down_drops_at_send_time() {
        let (mut w, a, b) = two_node_world();
        w.add_service(b, "echo", || Box::new(Echo { seen: 0 }));
        let target = Address::new(b, "echo");
        w.add_service(a, "starter", move || Box::new(Starter { peer: target }));
        w.net_mut().set_link(a, b, false);
        w.start();
        w.run_to_quiescence(10);
        assert_eq!(w.metrics().counter(keys::MSGS_DROPPED_LINK_DOWN), 1);
        assert_eq!(w.service_mut::<Echo>(b, "echo").unwrap().seen, 0);
    }

    /// Sets a timer on start; counts fires.
    struct Ticker {
        fires: u32,
        period: SimDuration,
    }

    impl Service for Ticker {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: Address, _payload: &[u8]) {}
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(self.period, 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
            self.fires += 1;
            if self.fires < 3 {
                ctx.set_timer(self.period, 1);
            }
        }
    }

    #[test]
    fn timers_fire_and_respect_crash_epochs() {
        let (mut w, a, _) = two_node_world();
        w.add_service(a, "tick", || {
            Box::new(Ticker {
                fires: 0,
                period: SimDuration::from_millis(10),
            })
        });
        w.start();
        w.run_for(SimDuration::from_millis(15));
        assert_eq!(w.service_mut::<Ticker>(a, "tick").unwrap().fires, 1);
        // Crash: pending timer (set at 10ms for 20ms) must not fire after recovery,
        // but on_start arms a fresh one.
        w.crash_for(a, SimDuration::from_millis(1));
        w.run_for(SimDuration::from_millis(100));
        let t = w.service_mut::<Ticker>(a, "tick").unwrap();
        assert_eq!(t.fires, 3, "fresh timers only, from the rebuilt service");
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let (mut w, _, _) = two_node_world();
        w.run_until(SimTime::from_micros(500));
        assert_eq!(w.now(), SimTime::from_micros(500));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> (MetricsSnapshot, Vec<crate::trace::TraceRecord>) {
            let mut cfg = WorldConfig::with_seed(seed);
            cfg.trace = true;
            let mut w = World::new(cfg);
            let a = w.add_node();
            let b = w.add_node();
            let echo_b = Address::new(b, "echo");
            w.add_service(a, "echo", || Box::new(Echo { seen: 0 }));
            w.add_service(a, "starter", move || Box::new(Starter { peer: echo_b }));
            w.add_service(b, "echo", || Box::new(Echo { seen: 0 }));
            w.start();
            w.crash_for(b, SimDuration::from_millis(3));
            w.run_to_quiescence(1000);
            (w.snapshot(), w.trace().records().to_vec())
        }
        let (m1, t1) = run(7);
        let (m2, t2) = run(7);
        assert_eq!(m1, m2);
        assert_eq!(t1, t2);
        let (_, t3) = run(8);
        assert_ne!(t1, t3, "different seeds should change jitter timings");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_service_name_panics() {
        let (mut w, a, _) = two_node_world();
        w.add_service(a, "echo", || Box::new(Echo { seen: 0 }));
        w.add_service(a, "echo", || Box::new(Echo { seen: 0 }));
    }

    // ----- sharded runtime ---------------------------------------------------

    /// Observable outcome of [`shard_scenario`]: metrics snapshot, trace,
    /// and a per-node stable-store dump.
    type ScenarioOutcome = (
        MetricsSnapshot,
        Vec<TraceRecord>,
        Vec<Vec<(String, Vec<u8>)>>,
    );

    /// Builds a busy little world: 6 nodes, echo + ping-pong + tickers, a
    /// mid-run crash and a link flap, returning its observable outcome.
    fn shard_scenario(shards: usize, threaded_runs: bool) -> ScenarioOutcome {
        let mut cfg = WorldConfig::with_seed(42);
        cfg.trace = true;
        cfg.shards = shards;
        let mut w = World::new(cfg);
        let nodes: Vec<NodeId> = (0..6).map(|_| w.add_node()).collect();
        for (i, &n) in nodes.iter().enumerate() {
            w.add_service(n, "echo", || Box::new(Echo { seen: 0 }));
            let peer = Address::new(nodes[(i + 1) % nodes.len()], "echo");
            w.add_service(n, "starter", move || Box::new(Starter { peer }));
            w.add_service(n, "tick", || {
                Box::new(Ticker {
                    fires: 0,
                    period: SimDuration::from_millis(7),
                })
            });
        }
        w.start();
        // Persist something per delivery so stable stores diverge if order does.
        w.schedule_crash(SimTime::from_micros(9000), nodes[3]);
        w.schedule_recover(SimTime::from_micros(14000), nodes[3]);
        w.schedule_link(SimTime::from_micros(4000), nodes[1], nodes[2], false);
        w.schedule_link(SimTime::from_micros(21000), nodes[1], nodes[2], true);
        for &n in &nodes {
            w.post(Address::new(n, "echo"), b"kick".to_vec());
        }
        if threaded_runs {
            // Several run_until calls so the windowed engine stops/starts.
            for _ in 0..10 {
                w.run_for(SimDuration::from_millis(5));
            }
        } else {
            w.run_until(SimTime::from_micros(50000));
        }
        let stables = nodes
            .iter()
            .map(|&n| {
                w.stable(n)
                    .iter()
                    .map(|(k, v)| (k.to_owned(), v.to_vec()))
                    .collect()
            })
            .collect();
        (w.snapshot(), w.trace().records().to_vec(), stables)
    }

    /// Counters that describe the execution engine rather than the
    /// simulated protocol; they may differ between engines.
    fn strip_engine_counters(m: &mut MetricsSnapshot) {
        m.counters.remove(keys::WINDOWS);
    }

    #[test]
    fn shard_counts_are_observationally_equivalent() {
        let (mut m1, t1, s1) = shard_scenario(1, false);
        for shards in [2, 4] {
            let (mut mn, tn, sn) = shard_scenario(shards, true);
            strip_engine_counters(&mut m1);
            strip_engine_counters(&mut mn);
            assert_eq!(m1, mn, "metrics diverged at shards={shards}");
            assert_eq!(t1, tn, "trace diverged at shards={shards}");
            assert_eq!(s1, sn, "stable stores diverged at shards={shards}");
        }
    }

    #[test]
    fn profiled_runs_match_threaded_and_populate_profile() {
        let (mut m_thr, t_thr, s_thr) = shard_scenario(3, true);
        let run_profiled = || {
            let mut cfg = WorldConfig::with_seed(42);
            cfg.trace = true;
            cfg.shards = 3;
            World::new(cfg)
        };
        // Re-run scenario manually with profiling on.
        let mut w = run_profiled();
        let nodes: Vec<NodeId> = (0..6).map(|_| w.add_node()).collect();
        for (i, &n) in nodes.iter().enumerate() {
            w.add_service(n, "echo", || Box::new(Echo { seen: 0 }));
            let peer = Address::new(nodes[(i + 1) % nodes.len()], "echo");
            w.add_service(n, "starter", move || Box::new(Starter { peer }));
            w.add_service(n, "tick", || {
                Box::new(Ticker {
                    fires: 0,
                    period: SimDuration::from_millis(7),
                })
            });
        }
        w.set_shard_profiling(true);
        w.start();
        w.schedule_crash(SimTime::from_micros(9000), nodes[3]);
        w.schedule_recover(SimTime::from_micros(14000), nodes[3]);
        w.schedule_link(SimTime::from_micros(4000), nodes[1], nodes[2], false);
        w.schedule_link(SimTime::from_micros(21000), nodes[1], nodes[2], true);
        for &n in &nodes {
            w.post(Address::new(n, "echo"), b"kick".to_vec());
        }
        for _ in 0..10 {
            w.run_for(SimDuration::from_millis(5));
        }
        let mut m_prof = w.snapshot();
        strip_engine_counters(&mut m_thr);
        strip_engine_counters(&mut m_prof);
        assert_eq!(m_thr, m_prof);
        assert_eq!(t_thr, w.trace().records());
        for (i, &n) in nodes.iter().enumerate() {
            let dump: Vec<(String, Vec<u8>)> = w
                .stable(n)
                .iter()
                .map(|(k, v)| (k.to_owned(), v.to_vec()))
                .collect();
            assert_eq!(s_thr[i], dump);
        }
        let p = w.shard_profile();
        assert!(p.windows > 0, "profiling should count windows");
        assert_eq!(p.busy_ns.len(), 3);
        assert!(p.critical_ns > 0);
        assert!(
            p.critical_ns <= p.busy_ns.iter().sum::<u64>(),
            "critical path cannot exceed total busy time"
        );
    }

    #[test]
    fn step_order_is_global_across_shards() {
        let mut cfg = WorldConfig::with_seed(5);
        cfg.shards = 3;
        let mut w = World::new(cfg);
        let nodes: Vec<NodeId> = (0..6).map(|_| w.add_node()).collect();
        for &n in &nodes {
            w.add_service(n, "echo", || Box::new(Echo { seen: 0 }));
        }
        w.start();
        for &n in &nodes {
            w.post(Address::new(n, "echo"), b"x".to_vec());
        }
        let mut last = SimTime::ZERO;
        while w.step() {
            assert!(w.now() >= last, "time went backwards across shards");
            last = w.now();
        }
        assert_eq!(w.metrics().counter(keys::MSGS_DELIVERED), 6);
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn zero_lookahead_rejects_multiple_shards() {
        let mut cfg = WorldConfig::with_seed(1);
        cfg.latency = LatencyModel::fixed(SimDuration::ZERO, SimDuration::ZERO);
        cfg.shards = 2;
        let _ = World::new(cfg);
    }

    #[test]
    fn auto_shards_resolve_from_parallelism() {
        let mut cfg = WorldConfig::with_seed(1);
        cfg.shards = 0;
        let w = World::new(cfg);
        assert!(w.shard_count() >= 1);

        // With a model that cannot guarantee lookahead, auto mode falls back
        // to sequential instead of panicking like an explicit request would.
        let mut cfg = WorldConfig::with_seed(1);
        cfg.latency = LatencyModel::fixed(SimDuration::ZERO, SimDuration::ZERO);
        cfg.shards = 0;
        assert_eq!(World::new(cfg).shard_count(), 1);
    }

    // ----- remote-egress seam ------------------------------------------------

    /// Ping-pongs with a peer, persisting every delivery, so a process
    /// split that reorders or loses anything shows up in stable dumps.
    struct Pinger {
        peer: Address,
        count: u32,
    }

    impl Service for Pinger {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Address, payload: &[u8]) {
            self.count += 1;
            ctx.stable_put(format!("seen/{:03}", self.count), payload.to_vec());
            if self.count < 5 {
                ctx.send(self.peer, vec![self.count as u8]);
            }
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(self.peer, b"go".to_vec());
        }
    }

    fn pinger_world(owned: Option<&[u32]>) -> World {
        let mut w = World::new(WorldConfig::with_seed(11));
        let nodes: Vec<NodeId> = (0..4).map(|_| w.add_node()).collect();
        for (i, &n) in nodes.iter().enumerate() {
            let local = match owned {
                Some(set) => set.contains(&n.0),
                None => true,
            };
            if local {
                let peer = Address::new(nodes[(i + 1) % nodes.len()], "ping");
                w.add_service(n, "ping", move || Box::new(Pinger { peer, count: 0 }));
            } else {
                w.mark_remote(n);
            }
        }
        w.start();
        w
    }

    /// Mirrors the coordinator of a distributed run: relay pending egress
    /// (from `start()` or the previous window), then run the next window of
    /// the global-minimum schedule.
    fn run_split_until(worlds: &mut [World], until_us: u64, lookahead_us: u64) {
        loop {
            let egress: Vec<RemoteEvent> = worlds
                .iter_mut()
                .flat_map(World::take_remote_egress)
                .collect();
            for ev in egress {
                let owner = worlds
                    .iter_mut()
                    .find(|w| !w.is_remote(NodeId(ev.to_node)))
                    .expect("every node has an owner");
                owner.inject_remote(ev);
            }
            let Some(m) = worlds.iter().filter_map(World::local_min_us).min() else {
                break;
            };
            if m > until_us {
                break;
            }
            let end = m
                .saturating_add(lookahead_us)
                .min(until_us.saturating_add(1))
                .max(m + 1);
            for w in worlds.iter_mut() {
                w.run_window(end);
            }
        }
        for w in worlds.iter_mut() {
            w.advance_clock_to(until_us);
        }
    }

    #[test]
    fn remote_split_matches_single_process_run() {
        let mut control = pinger_world(None);
        control.run_until(SimTime::from_micros(100_000));

        let lookahead = LatencyModel::lan().min_latency().as_micros();
        let mut halves = [pinger_world(Some(&[0, 2])), pinger_world(Some(&[1, 3]))];
        run_split_until(&mut halves, 100_000, lookahead);

        for n in 0..4u32 {
            let node = NodeId(n);
            let owner = halves
                .iter()
                .find(|w| !w.is_remote(node))
                .expect("owner exists");
            let dump = |w: &World| -> Vec<(String, Vec<u8>)> {
                w.stable(node)
                    .iter()
                    .map(|(k, v)| (k.to_owned(), v.to_vec()))
                    .collect()
            };
            assert_eq!(dump(&control), dump(owner), "stable diverged on {node}");
            assert_eq!(owner.now(), control.now());
        }
        // Counters split across the two processes must sum to the control's.
        let c = control.snapshot();
        let (a, b) = (halves[0].snapshot(), halves[1].snapshot());
        for key in [
            keys::MSGS_DELIVERED,
            keys::BYTES_SENT,
            keys::STABLE_WRITES,
            keys::STABLE_COMMITS,
            keys::EVENTS,
        ] {
            assert_eq!(
                c.counter(key),
                a.counter(key) + b.counter(key),
                "counter {key} diverged"
            );
        }
    }

    #[test]
    fn driver_post_to_remote_node_diverts_with_billing() {
        let mut w = pinger_world(Some(&[0, 2]));
        let before = w.snapshot().counter(keys::BYTES_SENT);
        w.post(Address::new(NodeId(1), "ping"), b"ext".to_vec());
        assert_eq!(w.snapshot().counter(keys::BYTES_SENT), before + 3);
        let egress = w.take_remote_egress();
        // Driver injections drain ahead of the shards' egress.
        let ev = egress.first().expect("post diverted");
        assert_eq!(ev.to_node, 1);
        assert_eq!(ev.origin, DRIVER_ORIGIN);
        assert_eq!(ev.payload, b"ext");
        assert_eq!(ev.from_node, NodeId::EXTERNAL.0);
    }

    #[test]
    #[should_panic(expected = "not local")]
    fn inject_remote_rejects_foreign_destination() {
        let mut w = pinger_world(Some(&[0, 2]));
        let ev = RemoteEvent {
            at_us: 10,
            origin: 0,
            seq: 0,
            from_node: 0,
            from_service: "ping".to_owned(),
            to_node: 1,
            to_service: "ping".to_owned(),
            payload: vec![],
            billed: 0,
        };
        w.inject_remote(ev);
    }
}
