//! The simulation kernel.
//!
//! [`World`] owns the clock, the event queue, all nodes, and the network,
//! and advances them deterministically: same seed and same setup ⇒ same
//! event order, same metrics, same trace.

use std::collections::BTreeSet;

use crate::ctx::{Command, Ctx};
use crate::event::{Event, EventQueue, TimerId};
use crate::metrics::{keys, Metrics, MetricsSnapshot};
use crate::net::{LatencyModel, Network};
use crate::node::{Address, NodeId, NodeSlot, Service};
use crate::rng::SimRng;
use crate::stable::StableStore;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceKind};

/// Static configuration of a [`World`].
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Seed for the single deterministic random stream.
    pub seed: u64,
    /// Inter-node message latency model.
    pub latency: LatencyModel,
    /// Delivery delay for messages between services on the same node.
    pub local_delay: SimDuration,
    /// Whether to record a kernel trace.
    pub trace: bool,
    /// Maximum number of trace records kept.
    pub trace_cap: usize,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0,
            latency: LatencyModel::lan(),
            local_delay: SimDuration::from_micros(10),
            trace: false,
            trace_cap: 100_000,
        }
    }
}

impl WorldConfig {
    /// Convenience constructor with just a seed.
    pub fn with_seed(seed: u64) -> Self {
        WorldConfig {
            seed,
            ..WorldConfig::default()
        }
    }
}

/// The deterministic discrete-event world.
pub struct World {
    time: SimTime,
    queue: EventQueue,
    nodes: Vec<NodeSlot>,
    net: Network,
    rng: SimRng,
    metrics: Metrics,
    trace: Trace,
    timer_seq: u64,
    cancelled: BTreeSet<TimerId>,
}

impl World {
    /// Creates an empty world.
    pub fn new(cfg: WorldConfig) -> Self {
        World {
            time: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes: Vec::new(),
            net: Network::new(cfg.latency, cfg.local_delay),
            rng: SimRng::seed_from(cfg.seed),
            metrics: Metrics::new(),
            trace: Trace::new(cfg.trace, cfg.trace_cap),
            timer_seq: 0,
            cancelled: BTreeSet::new(),
        }
    }

    // ----- topology -------------------------------------------------------

    /// Adds a node; ids are assigned densely starting at 0.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSlot::new(id));
        id
    }

    /// Registers a service on `node`. The factory is also used to rebuild
    /// the service after a crash. Call before [`World::start`].
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist or the name is already taken.
    pub fn add_service<F>(&mut self, node: NodeId, name: &'static str, factory: F)
    where
        F: Fn() -> Box<dyn Service> + 'static,
    {
        let slot = self.slot_mut(node);
        assert!(
            !slot.services.contains_key(name),
            "service {name} already registered on {node}"
        );
        slot.services.insert(name, factory());
        slot.factories.push((name, Box::new(factory)));
    }

    /// Invokes `on_start` on every service (nodes in id order, services in
    /// name order). Call once after wiring the topology.
    pub fn start(&mut self) {
        for i in 0..self.nodes.len() {
            let node = self.nodes[i].id;
            let names: Vec<&'static str> = self.nodes[i].services.keys().copied().collect();
            for name in names {
                self.with_service(node, name, |svc, ctx| svc.on_start(ctx));
            }
        }
    }

    // ----- time -----------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Processes the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.time, "event queue went backwards");
        self.time = at;
        self.metrics.inc(keys::EVENTS);
        match ev {
            Event::Deliver { from, to, payload } => self.handle_deliver(from, to, payload),
            Event::Timer {
                node,
                service,
                id,
                tag,
                epoch,
            } => self.handle_timer(node, service, id, tag, epoch),
            Event::NodeDown { node } => self.crash_now(node),
            Event::NodeUp { node } => self.recover_now(node),
            Event::LinkDown { a, b } => self.set_link_now(a, b, false),
            Event::LinkUp { a, b } => self.set_link_now(a, b, true),
        }
        true
    }

    /// Runs all events with `time <= until`, then advances the clock to
    /// `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(at) = self.queue.peek_time() {
            if at > until {
                break;
            }
            self.step();
        }
        if self.time < until {
            self.time = until;
        }
    }

    /// Runs for a span of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        let until = self.time + d;
        self.run_until(until);
    }

    /// Runs until the event queue drains or `max_events` were processed.
    /// Returns the number of events processed.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    // ----- failures -------------------------------------------------------

    /// Crashes `node` immediately: volatile state is lost, stable storage
    /// survives. No-op if already down.
    pub fn crash_now(&mut self, node: NodeId) {
        let at = self.time;
        let slot = self.slot_mut(node);
        if !slot.up {
            return;
        }
        slot.crash();
        self.metrics.inc(keys::NODE_CRASHES);
        self.trace
            .record(at, TraceKind::NodeCrashed { node: node.0 });
    }

    /// Recovers `node` immediately: services are rebuilt from factories and
    /// `on_start` runs on each. No-op if already up.
    pub fn recover_now(&mut self, node: NodeId) {
        let at = self.time;
        {
            let slot = self.slot_mut(node);
            if slot.up {
                return;
            }
            slot.rebuild();
        }
        self.metrics.inc(keys::NODE_RECOVERIES);
        self.trace
            .record(at, TraceKind::NodeRecovered { node: node.0 });
        let names: Vec<&'static str> = self.slot(node).services.keys().copied().collect();
        for name in names {
            self.with_service(node, name, |svc, ctx| svc.on_start(ctx));
        }
    }

    /// Crashes `node` now and schedules recovery after `downtime`.
    pub fn crash_for(&mut self, node: NodeId, downtime: SimDuration) {
        self.crash_now(node);
        let at = self.time + downtime;
        self.queue.push(at, Event::NodeUp { node });
    }

    /// Schedules a crash at absolute time `at` (clamped to now).
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        self.queue.push(at.max(self.time), Event::NodeDown { node });
    }

    /// Schedules a recovery at absolute time `at` (clamped to now).
    pub fn schedule_recover(&mut self, at: SimTime, node: NodeId) {
        self.queue.push(at.max(self.time), Event::NodeUp { node });
    }

    /// Schedules a link state change at absolute time `at`.
    pub fn schedule_link(&mut self, at: SimTime, a: NodeId, b: NodeId, up: bool) {
        let ev = if up {
            Event::LinkUp { a, b }
        } else {
            Event::LinkDown { a, b }
        };
        self.queue.push(at.max(self.time), ev);
    }

    fn set_link_now(&mut self, a: NodeId, b: NodeId, up: bool) {
        self.net.set_link(a, b, up);
        self.trace
            .record(self.time, TraceKind::LinkChanged { a: a.0, b: b.0, up });
    }

    // ----- injection & inspection ------------------------------------------

    /// Injects a message from the outside world (e.g. the agent owner).
    pub fn post(&mut self, to: Address, payload: Vec<u8>) {
        self.metrics.add(keys::BYTES_SENT, payload.len() as u64);
        self.route(Address::external(), to, payload);
    }

    /// Immutable access to a node's stable storage (test inspection).
    pub fn stable(&self, node: NodeId) -> &StableStore {
        &self.slot(node).stable
    }

    /// Mutable access to a node's stable storage (test setup).
    pub fn stable_mut(&mut self, node: NodeId) -> &mut StableStore {
        &mut self.slot_mut(node).stable
    }

    /// Whether a node is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.slot(node).up
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All node ids in order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|s| s.id).collect()
    }

    /// Downcasts a service for direct inspection or driving from tests.
    pub fn service_mut<T: Service>(&mut self, node: NodeId, name: &'static str) -> Option<&mut T> {
        let slot = self.slot_mut(node);
        let svc = slot.services.get_mut(name)?;
        let any: &mut dyn std::any::Any = svc.as_mut();
        any.downcast_mut::<T>()
    }

    /// Read-only access to a hosted service instance — the non-mutating
    /// sibling of [`World::service_mut`], for driver-side inspection
    /// (audits, test assertions) that must not require `&mut World`.
    pub fn service<T: Service>(&self, node: NodeId, name: &'static str) -> Option<&T> {
        let slot = self.slot(node);
        let svc = slot.services.get(name)?;
        let any: &dyn std::any::Any = svc.as_ref();
        any.downcast_ref::<T>()
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics (for higher-level counters recorded outside handlers).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Convenience snapshot of the metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The kernel trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The network (for link control).
    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// The network state.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// Derives an independent random stream (e.g. for failure planning).
    pub fn rng_fork(&mut self, tag: u64) -> SimRng {
        self.rng.fork(tag)
    }

    /// Number of events waiting in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    // ----- internals --------------------------------------------------------

    fn slot(&self, node: NodeId) -> &NodeSlot {
        &self.nodes[node.0 as usize]
    }

    fn slot_mut(&mut self, node: NodeId) -> &mut NodeSlot {
        &mut self.nodes[node.0 as usize]
    }

    fn with_service<F>(&mut self, node: NodeId, service: &'static str, f: F) -> bool
    where
        F: FnOnce(&mut Box<dyn Service>, &mut Ctx<'_>),
    {
        let mut commands = Vec::new();
        let found = {
            let slot = &mut self.nodes[node.0 as usize];
            match slot.services.remove(service) {
                Some(mut svc) => {
                    let mut ctx = Ctx {
                        now: self.time,
                        node: slot.id,
                        service,
                        epoch: slot.epoch,
                        stable: &mut slot.stable,
                        rng: &mut self.rng,
                        metrics: &mut self.metrics,
                        trace: &mut self.trace,
                        timer_seq: &mut self.timer_seq,
                        commands: &mut commands,
                    };
                    f(&mut svc, &mut ctx);
                    slot.services.insert(service, svc);
                    true
                }
                None => false,
            }
        };
        self.apply(commands);
        found
    }

    fn apply(&mut self, commands: Vec<Command>) {
        for cmd in commands {
            match cmd {
                Command::Send { from, to, payload } => self.route(from, to, payload),
                Command::SetTimer {
                    node,
                    service,
                    id,
                    tag,
                    epoch,
                    delay,
                } => {
                    let at = self.time + delay;
                    self.queue.push(
                        at,
                        Event::Timer {
                            node,
                            service,
                            id,
                            tag,
                            epoch,
                        },
                    );
                }
                Command::CancelTimer(id) => {
                    self.cancelled.insert(id);
                }
            }
        }
    }

    fn route(&mut self, from: Address, to: Address, payload: Vec<u8>) {
        match self
            .net
            .delivery_latency(from.node, to.node, payload.len(), &mut self.rng)
        {
            Some(latency) => {
                let at = self.time + latency;
                self.queue.push(at, Event::Deliver { from, to, payload });
            }
            None => {
                self.metrics.inc(keys::MSGS_DROPPED_LINK_DOWN);
                self.trace.record(
                    self.time,
                    TraceKind::MsgDroppedLinkDown {
                        from: from.node.0,
                        to: to.node.0,
                    },
                );
            }
        }
    }

    fn handle_deliver(&mut self, from: Address, to: Address, payload: Vec<u8>) {
        if to.node.0 as usize >= self.nodes.len() {
            return;
        }
        if !self.slot(to.node).up {
            self.metrics.inc(keys::MSGS_DROPPED_NODE_DOWN);
            self.trace
                .record(self.time, TraceKind::MsgDroppedNodeDown { node: to.node.0 });
            return;
        }
        if self.trace.enabled() {
            self.trace.record(
                self.time,
                TraceKind::MsgDelivered {
                    from: (from.node.0, from.service.to_owned()),
                    to: (to.node.0, to.service.to_owned()),
                    bytes: payload.len(),
                },
            );
        }
        let delivered = self.with_service(to.node, to.service, |svc, ctx| {
            svc.on_message(ctx, from, &payload)
        });
        if delivered {
            self.metrics.inc(keys::MSGS_DELIVERED);
        }
    }

    fn handle_timer(
        &mut self,
        node: NodeId,
        service: &'static str,
        id: TimerId,
        tag: u64,
        epoch: u64,
    ) {
        if self.cancelled.remove(&id) {
            return;
        }
        if node.0 as usize >= self.nodes.len() {
            return;
        }
        {
            let slot = self.slot(node);
            // Timers set before a crash must not fire into the rebuilt world.
            if !slot.up || slot.epoch != epoch {
                return;
            }
        }
        let fired = self.with_service(node, service, |svc, ctx| svc.on_timer(ctx, tag));
        if fired {
            self.metrics.inc(keys::TIMERS_FIRED);
            self.trace.record(
                self.time,
                TraceKind::TimerFired {
                    node: node.0,
                    service: service.to_owned(),
                    tag,
                },
            );
        }
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("time", &self.time)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every message back to the sender and counts deliveries.
    struct Echo {
        seen: u32,
    }

    impl Service for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Address, payload: &[u8]) {
            self.seen += 1;
            if from.node != NodeId::EXTERNAL && payload != b"stop" {
                ctx.send(from, b"stop".to_vec());
            }
        }
    }

    /// Sends one message to a peer when started.
    struct Starter {
        peer: Address,
    }

    impl Service for Starter {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: Address, _payload: &[u8]) {}
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(self.peer, b"hello".to_vec());
        }
    }

    fn two_node_world() -> (World, NodeId, NodeId) {
        let mut w = World::new(WorldConfig::with_seed(1));
        let a = w.add_node();
        let b = w.add_node();
        (w, a, b)
    }

    #[test]
    fn message_roundtrip() {
        let (mut w, a, b) = two_node_world();
        let echo_b = Address::new(b, "echo");
        w.add_service(a, "echo", || Box::new(Echo { seen: 0 }));
        w.add_service(a, "starter", move || Box::new(Starter { peer: echo_b }));
        w.add_service(b, "echo", || Box::new(Echo { seen: 0 }));
        w.start();
        w.run_to_quiescence(100);
        // starter(a) -> echo(b) -> reply lands back on starter(a).
        assert_eq!(w.service_mut::<Echo>(b, "echo").unwrap().seen, 1);
        assert_eq!(w.service_mut::<Echo>(a, "echo").unwrap().seen, 0);
        assert_eq!(w.metrics().counter(keys::MSGS_DELIVERED), 2);
    }

    #[test]
    fn post_injects_external_messages() {
        let (mut w, a, _) = two_node_world();
        w.add_service(a, "echo", || Box::new(Echo { seen: 0 }));
        w.start();
        w.post(Address::new(a, "echo"), b"x".to_vec());
        w.run_to_quiescence(10);
        assert_eq!(w.service_mut::<Echo>(a, "echo").unwrap().seen, 1);
    }

    #[test]
    fn crash_drops_in_flight_and_resets_state() {
        let (mut w, a, b) = two_node_world();
        w.add_service(a, "echo", || Box::new(Echo { seen: 0 }));
        w.add_service(b, "echo", || Box::new(Echo { seen: 0 }));
        w.start();
        w.post(Address::new(b, "echo"), b"x".to_vec());
        w.crash_now(b); // message still in flight
        w.run_to_quiescence(10);
        assert_eq!(w.metrics().counter(keys::MSGS_DROPPED_NODE_DOWN), 1);
        assert!(!w.is_up(b));
        w.recover_now(b);
        assert!(w.is_up(b));
        // State was rebuilt from the factory.
        assert_eq!(w.service_mut::<Echo>(b, "echo").unwrap().seen, 0);
    }

    #[test]
    fn link_down_drops_at_send_time() {
        let (mut w, a, b) = two_node_world();
        w.add_service(b, "echo", || Box::new(Echo { seen: 0 }));
        let target = Address::new(b, "echo");
        w.add_service(a, "starter", move || Box::new(Starter { peer: target }));
        w.net_mut().set_link(a, b, false);
        w.start();
        w.run_to_quiescence(10);
        assert_eq!(w.metrics().counter(keys::MSGS_DROPPED_LINK_DOWN), 1);
        assert_eq!(w.service_mut::<Echo>(b, "echo").unwrap().seen, 0);
    }

    /// Sets a timer on start; counts fires.
    struct Ticker {
        fires: u32,
        period: SimDuration,
    }

    impl Service for Ticker {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: Address, _payload: &[u8]) {}
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(self.period, 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
            self.fires += 1;
            if self.fires < 3 {
                ctx.set_timer(self.period, 1);
            }
        }
    }

    #[test]
    fn timers_fire_and_respect_crash_epochs() {
        let (mut w, a, _) = two_node_world();
        w.add_service(a, "tick", || {
            Box::new(Ticker {
                fires: 0,
                period: SimDuration::from_millis(10),
            })
        });
        w.start();
        w.run_for(SimDuration::from_millis(15));
        assert_eq!(w.service_mut::<Ticker>(a, "tick").unwrap().fires, 1);
        // Crash: pending timer (set at 10ms for 20ms) must not fire after recovery,
        // but on_start arms a fresh one.
        w.crash_for(a, SimDuration::from_millis(1));
        w.run_for(SimDuration::from_millis(100));
        let t = w.service_mut::<Ticker>(a, "tick").unwrap();
        assert_eq!(t.fires, 3, "fresh timers only, from the rebuilt service");
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let (mut w, _, _) = two_node_world();
        w.run_until(SimTime::from_micros(500));
        assert_eq!(w.now(), SimTime::from_micros(500));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> (MetricsSnapshot, Vec<crate::trace::TraceRecord>) {
            let mut cfg = WorldConfig::with_seed(seed);
            cfg.trace = true;
            let mut w = World::new(cfg);
            let a = w.add_node();
            let b = w.add_node();
            let echo_b = Address::new(b, "echo");
            w.add_service(a, "echo", || Box::new(Echo { seen: 0 }));
            w.add_service(a, "starter", move || Box::new(Starter { peer: echo_b }));
            w.add_service(b, "echo", || Box::new(Echo { seen: 0 }));
            w.start();
            w.crash_for(b, SimDuration::from_millis(3));
            w.run_to_quiescence(1000);
            (w.snapshot(), w.trace().records().to_vec())
        }
        let (m1, t1) = run(7);
        let (m2, t2) = run(7);
        assert_eq!(m1, m2);
        assert_eq!(t1, t2);
        let (_, t3) = run(8);
        assert_ne!(t1, t3, "different seeds should change jitter timings");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_service_name_panics() {
        let (mut w, a, _) = two_node_world();
        w.add_service(a, "echo", || Box::new(Echo { seen: 0 }));
        w.add_service(a, "echo", || Box::new(Echo { seen: 0 }));
    }
}
