//! Nodes, services, and addresses.
//!
//! A node hosts named *services* (message-driven state machines). Volatile
//! service state is destroyed by a crash and rebuilt from the registered
//! factory on recovery; only the node's [`StableStore`] survives — the same
//! failure model the paper's protocols are designed for.

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ctx::Ctx;
use crate::rng::SimRng;
use crate::stable::StableStore;

/// Identifier of a simulated node.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Pseudo-node used as the source address of externally injected
    /// messages (test drivers, agent owners).
    pub const EXTERNAL: NodeId = NodeId(u32::MAX);

    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == NodeId::EXTERNAL {
            f.write_str("N(ext)")
        } else {
            write!(f, "N{}", self.0)
        }
    }
}

/// Address of a service instance: a node plus a service name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Address {
    /// The hosting node.
    pub node: NodeId,
    /// The service name (a registered `&'static str`).
    pub service: &'static str,
}

impl Address {
    /// Constructs an address.
    pub const fn new(node: NodeId, service: &'static str) -> Self {
        Address { node, service }
    }

    /// The address external messages appear to come from.
    pub const fn external() -> Self {
        Address {
            node: NodeId::EXTERNAL,
            service: "external",
        }
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.node, self.service)
    }
}

/// A message-driven state machine hosted on a node.
///
/// Services must be `Any` so tests and drivers can downcast them via
/// [`crate::World::service_mut`], and `Send` so nodes can be partitioned
/// across worker-thread shards.
pub trait Service: Any + Send {
    /// Handles a message delivered to this service.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Address, payload: &[u8]);

    /// Handles a timer set through [`Ctx::set_timer`]. Timers set before the
    /// node's last crash never fire.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _tag: u64) {}

    /// Called when the node starts, and again after every recovery (with a
    /// freshly rebuilt service instance). Recovery logic goes here.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
}

/// Factory used to (re)build a service instance at start and after a crash.
pub type ServiceFactory = Box<dyn Fn() -> Box<dyn Service> + Send>;

pub(crate) struct NodeSlot {
    pub id: NodeId,
    pub up: bool,
    /// Incremented on every crash; timers carry the epoch they were set in.
    pub epoch: u64,
    pub services: BTreeMap<&'static str, Box<dyn Service>>,
    pub factories: Vec<(&'static str, ServiceFactory)>,
    pub stable: StableStore,
    /// Per-node deterministic RNG stream, derived from the world seed and
    /// the node id only — invariant under resharding.
    pub rng: SimRng,
    /// Per-node counter for event keys of events this node's callbacks
    /// create. Never reset (not even by a crash) so keys stay unique.
    pub event_seq: u64,
    /// Per-node counter for timer ids. Never reset.
    pub timer_seq: u64,
}

impl NodeSlot {
    pub fn new(id: NodeId, rng: SimRng, stable: StableStore) -> Self {
        NodeSlot {
            id,
            up: true,
            epoch: 0,
            services: BTreeMap::new(),
            factories: Vec::new(),
            stable,
            rng,
            event_seq: 0,
            timer_seq: 0,
        }
    }

    /// Takes the next per-origin event sequence number.
    pub fn next_event_seq(&mut self) -> u64 {
        let s = self.event_seq;
        self.event_seq += 1;
        s
    }

    /// Destroys volatile state (crash). Stable storage survives, but its
    /// backend loses anything not yet group-committed.
    pub fn crash(&mut self) {
        self.up = false;
        self.epoch += 1;
        self.services.clear();
        self.stable.crash_volatile();
    }

    /// Rebuilds services from factories (recovery). `on_start` is invoked by
    /// the kernel afterwards; the stable backend recovers first so services
    /// see the replayed store.
    pub fn rebuild(&mut self) {
        self.up = true;
        self.stable.recover();
        self.services.clear();
        for (name, factory) in &self.factories {
            self.services.insert(name, factory());
        }
    }
}

impl fmt::Debug for NodeSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeSlot")
            .field("id", &self.id)
            .field("up", &self.up)
            .field("epoch", &self.epoch)
            .field("services", &self.services.keys().collect::<Vec<_>>())
            .field("stable_entries", &self.stable.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Service for Nop {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: Address, _payload: &[u8]) {}
    }

    #[test]
    fn crash_clears_services_and_bumps_epoch() {
        let mut slot = NodeSlot::new(NodeId(1), SimRng::seed_from(0), StableStore::new());
        slot.factories.push(("svc", Box::new(|| Box::new(Nop))));
        slot.rebuild();
        assert!(slot.services.contains_key("svc"));
        slot.crash();
        assert!(!slot.up);
        assert_eq!(slot.epoch, 1);
        assert!(slot.services.is_empty());
        slot.rebuild();
        assert!(slot.up);
        assert!(slot.services.contains_key("svc"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "N3");
        assert_eq!(NodeId::EXTERNAL.to_string(), "N(ext)");
        assert_eq!(Address::new(NodeId(1), "tm").to_string(), "N1/tm");
    }
}
