//! Event trace for debugging, golden tests, and determinism checks.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// One traced kernel event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A message was handed to the network.
    MsgSent {
        /// Sending (node, service).
        from: (u32, String),
        /// Destination (node, service).
        to: (u32, String),
        /// Payload size in bytes.
        bytes: usize,
    },
    /// A message reached its destination service.
    MsgDelivered {
        /// Sending (node, service).
        from: (u32, String),
        /// Destination (node, service).
        to: (u32, String),
        /// Payload size in bytes.
        bytes: usize,
    },
    /// A message was dropped because the destination node was down.
    MsgDroppedNodeDown {
        /// Destination node.
        node: u32,
    },
    /// A message was dropped at send time because the link was down.
    MsgDroppedLinkDown {
        /// Sending node.
        from: u32,
        /// Destination node.
        to: u32,
    },
    /// A timer fired.
    TimerFired {
        /// Node the timer belongs to.
        node: u32,
        /// Owning service.
        service: String,
        /// Caller-chosen tag.
        tag: u64,
    },
    /// A node crashed, losing volatile state.
    NodeCrashed {
        /// The crashed node.
        node: u32,
    },
    /// A node recovered and its services were rebuilt.
    NodeRecovered {
        /// The recovered node.
        node: u32,
    },
    /// A link changed state.
    LinkChanged {
        /// One endpoint.
        a: u32,
        /// Other endpoint.
        b: u32,
        /// New state.
        up: bool,
    },
    /// Application-level marker emitted through [`crate::Ctx::trace`].
    Custom {
        /// Node that emitted the marker.
        node: u32,
        /// Short machine-readable label.
        label: String,
        /// Free-form detail.
        detail: String,
    },
}

/// A trace record with its virtual timestamp.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// Bounded in-memory event trace.
#[derive(Debug, Clone)]
pub struct Trace {
    enabled: bool,
    cap: usize,
    records: Vec<TraceRecord>,
    dropped: u64,
}

impl Trace {
    /// Creates a trace; `enabled = false` makes all recording free.
    pub fn new(enabled: bool, cap: usize) -> Self {
        Trace {
            enabled,
            cap,
            records: Vec::new(),
            dropped: 0,
        }
    }

    /// Whether recording is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn record(&mut self, at: SimTime, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        if self.records.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.records.push(TraceRecord { at, kind });
    }

    /// All records captured so far.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Drains all records, leaving the trace empty but enabled. Used by the
    /// sharded runtime to move per-shard records into the global merge
    /// buffer after each event.
    pub(crate) fn take_records(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }

    /// Appends an already-built record, subject to the cap. Used when
    /// folding shard-local records into the world trace.
    pub(crate) fn push_record(&mut self, rec: TraceRecord) {
        if !self.enabled {
            return;
        }
        if self.records.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.records.push(rec);
    }

    /// Adds externally counted drops (shard-local cap overflow).
    pub(crate) fn add_dropped(&mut self, n: u64) {
        self.dropped += n;
    }

    /// Number of records that did not fit under the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records whose label matches `label` (for `Custom` markers).
    pub fn custom_with_label(&self, label: &str) -> Vec<&TraceRecord> {
        self.records
            .iter()
            .filter(|r| matches!(&r.kind, TraceKind::Custom { label: l, .. } if l == label))
            .collect()
    }

    /// Clears all records.
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(false, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(false, 10);
        t.record(SimTime::ZERO, TraceKind::NodeCrashed { node: 1 });
        assert!(t.records().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn cap_is_enforced() {
        let mut t = Trace::new(true, 2);
        for i in 0..5 {
            t.record(
                SimTime::from_micros(i),
                TraceKind::NodeCrashed { node: i as u32 },
            );
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn custom_label_filter() {
        let mut t = Trace::new(true, 10);
        t.record(
            SimTime::ZERO,
            TraceKind::Custom {
                node: 0,
                label: "step".into(),
                detail: "i=1".into(),
            },
        );
        t.record(SimTime::ZERO, TraceKind::NodeCrashed { node: 0 });
        assert_eq!(t.custom_with_label("step").len(), 1);
        assert_eq!(t.custom_with_label("other").len(), 0);
    }

    #[test]
    fn records_serialize() {
        let r = TraceRecord {
            at: SimTime::from_micros(3),
            kind: TraceKind::LinkChanged {
                a: 1,
                b: 2,
                up: false,
            },
        };
        let bytes = mar_wire::to_bytes(&r).unwrap();
        let back: TraceRecord = mar_wire::from_slice(&bytes).unwrap();
        assert_eq!(back, r);
    }
}
