//! Network model: latency, message sizes, and link failures.
//!
//! The paper assumes a network with reliable transfer but allows *temporary*
//! network crashes (§4.3). Links here can be taken down and brought back up;
//! while a link is down, sends over it are dropped (and counted), and the
//! retry logic of the layers above provides reliability — exactly the
//! environment the rollback mechanism must tolerate.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::SimDuration;

/// Fixed per-message envelope overhead added to the payload size (addresses,
/// type tags, checksums of a realistic transport).
pub const MSG_OVERHEAD_BYTES: usize = 32;

/// Latency model for one message: `base + per_kb * kilobytes`, scaled by a
/// symmetric jitter factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed cost per message (propagation + handling).
    pub base: SimDuration,
    /// Additional cost per 1024 payload bytes (serialization + bandwidth).
    pub per_kb: SimDuration,
    /// Jitter fraction in `[0, 1)`: the final latency is scaled by a factor
    /// drawn uniformly from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl LatencyModel {
    /// A 1 ms / 0.1 ms-per-KB LAN-like model with 10% jitter.
    pub fn lan() -> Self {
        LatencyModel {
            base: SimDuration::from_millis(1),
            per_kb: SimDuration::from_micros(100),
            jitter: 0.10,
        }
    }

    /// A 40 ms / 1 ms-per-KB WAN-like model with 20% jitter.
    pub fn wan() -> Self {
        LatencyModel {
            base: SimDuration::from_millis(40),
            per_kb: SimDuration::from_millis(1),
            jitter: 0.20,
        }
    }

    /// Deterministic zero-jitter model, handy in unit tests.
    pub fn fixed(base: SimDuration, per_kb: SimDuration) -> Self {
        LatencyModel {
            base,
            per_kb,
            jitter: 0.0,
        }
    }

    /// Guaranteed lower bound on any sampled inter-node latency: the base
    /// cost scaled by the worst-case jitter factor. Every possible
    /// [`LatencyModel::sample`] result is `>=` this value (payload cost is
    /// non-negative and the jitter factor is at least `1 - jitter`), so the
    /// sharded runtime can use it as conservative lookahead: a message sent
    /// at time `t` to another node is never due before `t + min_latency()`.
    pub fn min_latency(&self) -> SimDuration {
        let worst = (1.0 - self.jitter).max(0.0);
        SimDuration::from_micros((self.base.as_micros() as f64 * worst).floor() as u64)
    }

    /// Samples the latency for a message of `bytes` payload bytes.
    pub fn sample(&self, bytes: usize, rng: &mut SimRng) -> SimDuration {
        let total_bytes = (bytes + MSG_OVERHEAD_BYTES) as u64;
        let kb_cost =
            SimDuration::from_micros(self.per_kb.as_micros().saturating_mul(total_bytes) / 1024);
        let raw = self.base + kb_cost;
        if self.jitter <= 0.0 {
            raw
        } else {
            let factor = 1.0 + self.jitter * (2.0 * rng.f64() - 1.0);
            raw.mul_f64(factor.max(0.0))
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::lan()
    }
}

/// Connectivity and latency state of the simulated network.
#[derive(Debug, Clone)]
pub struct Network {
    latency: LatencyModel,
    local_delay: SimDuration,
    down_links: BTreeSet<(NodeId, NodeId)>,
}

fn norm(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Network {
    /// Creates a fully connected network with the given latency model and
    /// intra-node (service-to-service) delivery delay.
    pub fn new(latency: LatencyModel, local_delay: SimDuration) -> Self {
        Network {
            latency,
            local_delay,
            down_links: BTreeSet::new(),
        }
    }

    /// The configured latency model.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Returns `true` if the (symmetric) link between `a` and `b` is up.
    /// A node's link to itself is always up.
    pub fn link_up(&self, a: NodeId, b: NodeId) -> bool {
        a == b || !self.down_links.contains(&norm(a, b))
    }

    /// Sets the symmetric link state between `a` and `b`.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, up: bool) {
        if a == b {
            return;
        }
        if up {
            self.down_links.remove(&norm(a, b));
        } else {
            self.down_links.insert(norm(a, b));
        }
    }

    /// Takes down every link between the two groups (a partition).
    pub fn partition(&mut self, side_a: &[NodeId], side_b: &[NodeId]) {
        for &a in side_a {
            for &b in side_b {
                self.set_link(a, b, false);
            }
        }
    }

    /// Brings all links back up.
    pub fn heal_all(&mut self) {
        self.down_links.clear();
    }

    /// Number of links currently down.
    pub fn down_link_count(&self) -> usize {
        self.down_links.len()
    }

    /// Latency for delivering `bytes` from `from` to `to`, or `None` if the
    /// link is down (the message is lost).
    pub fn delivery_latency(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        rng: &mut SimRng,
    ) -> Option<SimDuration> {
        if from == to {
            return Some(self.local_delay);
        }
        if !self.link_up(from, to) {
            return None;
        }
        Some(self.latency.sample(bytes, rng))
    }
}

impl Default for Network {
    fn default() -> Self {
        Network::new(LatencyModel::lan(), SimDuration::from_micros(10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_size() {
        let m = LatencyModel::fixed(SimDuration::from_millis(1), SimDuration::from_micros(100));
        let mut rng = SimRng::seed_from(1);
        let small = m.sample(100, &mut rng);
        let large = m.sample(100_000, &mut rng);
        assert!(large > small);
        // base(1000) + 100 * (100 + 32) / 1024 = 1012us
        assert_eq!(small.as_micros(), 1_012);
    }

    #[test]
    fn min_latency_bounds_all_samples() {
        let m = LatencyModel::lan();
        assert_eq!(m.min_latency().as_micros(), 900);
        let mut rng = SimRng::seed_from(9);
        for i in 0..500 {
            let s = m.sample(i * 37, &mut rng);
            assert!(s >= m.min_latency(), "sample {s:?} below lookahead bound");
        }
        // Zero-jitter model: bound is exactly the base.
        let f = LatencyModel::fixed(SimDuration::from_millis(2), SimDuration::ZERO);
        assert_eq!(f.min_latency(), SimDuration::from_millis(2));
    }

    #[test]
    fn jitter_bounds() {
        let m = LatencyModel {
            base: SimDuration::from_millis(10),
            per_kb: SimDuration::ZERO,
            jitter: 0.5,
        };
        let mut rng = SimRng::seed_from(2);
        for _ in 0..200 {
            let us = m.sample(0, &mut rng).as_micros();
            assert!(
                (5_000..=15_000).contains(&us),
                "latency {us}us out of bounds"
            );
        }
    }

    #[test]
    fn links_are_symmetric() {
        let mut net = Network::default();
        let (a, b) = (NodeId(1), NodeId(2));
        assert!(net.link_up(a, b));
        net.set_link(b, a, false);
        assert!(!net.link_up(a, b));
        assert!(!net.link_up(b, a));
        net.set_link(a, b, true);
        assert!(net.link_up(a, b));
    }

    #[test]
    fn self_link_never_down() {
        let mut net = Network::default();
        net.set_link(NodeId(1), NodeId(1), false);
        assert!(net.link_up(NodeId(1), NodeId(1)));
    }

    #[test]
    fn partition_and_heal() {
        let mut net = Network::default();
        let left = [NodeId(0), NodeId(1)];
        let right = [NodeId(2), NodeId(3)];
        net.partition(&left, &right);
        assert!(!net.link_up(NodeId(0), NodeId(3)));
        assert!(net.link_up(NodeId(0), NodeId(1)));
        assert_eq!(net.down_link_count(), 4);
        net.heal_all();
        assert!(net.link_up(NodeId(0), NodeId(3)));
    }

    #[test]
    fn delivery_latency_none_when_down() {
        let mut net = Network::default();
        let mut rng = SimRng::seed_from(3);
        net.set_link(NodeId(1), NodeId(2), false);
        assert!(net
            .delivery_latency(NodeId(1), NodeId(2), 10, &mut rng)
            .is_none());
        // Local delivery unaffected.
        assert!(net
            .delivery_latency(NodeId(1), NodeId(1), 10, &mut rng)
            .is_some());
    }
}
