//! Per-node stable storage.
//!
//! Stable storage survives node crashes — it holds agent input queues,
//! transaction decision records, and prepared writes. The store is a simple
//! ordered key-value map of byte strings with prefix scans (enough to build
//! queues and logs on top) plus write accounting for the experiments.

use std::collections::BTreeMap;

/// Crash-surviving key-value store of one node.
///
/// # Examples
///
/// ```
/// use mar_simnet::StableStore;
/// let mut s = StableStore::new();
/// s.put("q/00001", b"agent".to_vec());
/// assert_eq!(s.get("q/00001"), Some(&b"agent"[..]));
/// assert_eq!(s.first_with_prefix("q/"), Some(("q/00001".to_string(), b"agent".to_vec())));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StableStore {
    map: BTreeMap<String, Vec<u8>>,
    write_ops: u64,
    bytes_written: u64,
}

impl StableStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        StableStore::default()
    }

    /// Writes `value` under `key`, replacing any previous value.
    pub fn put(&mut self, key: impl Into<String>, value: Vec<u8>) {
        self.write_ops += 1;
        self.bytes_written += value.len() as u64;
        self.map.insert(key.into(), value);
    }

    /// Reads the value stored under `key`.
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.map.get(key).map(Vec::as_slice)
    }

    /// Removes `key`, returning the previous value if present.
    pub fn delete(&mut self, key: &str) -> Option<Vec<u8>> {
        let prev = self.map.remove(key);
        if prev.is_some() {
            self.write_ops += 1;
        }
        prev
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// All keys starting with `prefix`, in lexicographic order.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.map
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// The lexicographically first `(key, value)` pair under `prefix`.
    pub fn first_with_prefix(&self, prefix: &str) -> Option<(String, Vec<u8>)> {
        self.map
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .next()
    }

    /// Number of entries under `prefix`.
    pub fn count_with_prefix(&self, prefix: &str) -> usize {
        self.map
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .count()
    }

    /// Deletes every key under `prefix`, returning how many were removed.
    pub fn delete_prefix(&mut self, prefix: &str) -> usize {
        let keys = self.keys_with_prefix(prefix);
        let n = keys.len();
        for k in &keys {
            self.map.remove(k);
        }
        if n > 0 {
            self.write_ops += 1;
        }
        n
    }

    /// Number of entries in the store.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total write operations performed (including deletes).
    pub fn write_ops(&self) -> u64 {
        self.write_ops
    }

    /// Total bytes written by `put` calls.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Iterates over all `(key, value)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.map.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut s = StableStore::new();
        assert!(s.is_empty());
        s.put("a", vec![1]);
        assert!(s.contains("a"));
        assert_eq!(s.get("a"), Some(&[1u8][..]));
        assert_eq!(s.delete("a"), Some(vec![1]));
        assert_eq!(s.delete("a"), None);
        assert!(s.is_empty());
    }

    #[test]
    fn prefix_scans_ordered() {
        let mut s = StableStore::new();
        s.put("q/2", vec![2]);
        s.put("q/1", vec![1]);
        s.put("r/1", vec![9]);
        assert_eq!(s.keys_with_prefix("q/"), ["q/1", "q/2"]);
        assert_eq!(s.first_with_prefix("q/").unwrap().0, "q/1");
        assert_eq!(s.count_with_prefix("q/"), 2);
        assert_eq!(s.first_with_prefix("zz"), None);
    }

    #[test]
    fn delete_prefix_removes_only_matches() {
        let mut s = StableStore::new();
        s.put("q/1", vec![]);
        s.put("q/2", vec![]);
        s.put("x", vec![]);
        assert_eq!(s.delete_prefix("q/"), 2);
        assert_eq!(s.len(), 1);
        assert!(s.contains("x"));
    }

    #[test]
    fn write_accounting() {
        let mut s = StableStore::new();
        s.put("a", vec![0; 10]);
        s.put("b", vec![0; 5]);
        s.delete("a");
        assert_eq!(s.write_ops(), 3);
        assert_eq!(s.bytes_written(), 15);
    }

    #[test]
    fn prefix_is_not_confused_by_similar_keys() {
        let mut s = StableStore::new();
        s.put("ab", vec![]);
        s.put("abc", vec![]);
        s.put("abd", vec![]);
        assert_eq!(s.keys_with_prefix("abc"), ["abc"]);
    }
}
