//! Failure injection: pre-planned node crashes and link outages.
//!
//! The paper's correctness argument (§4.3) assumes *non-lasting* node and
//! network crashes: every crashed node eventually recovers and every link
//! eventually heals. [`FailurePlan::install`] pre-schedules such a failure
//! pattern deterministically from the world's seed, so experiments can sweep
//! failure rates while staying reproducible.

use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};
use crate::world::World;

/// A randomized (but deterministic) failure schedule.
#[derive(Debug, Clone)]
pub struct FailurePlan {
    /// Mean time between failures of each node (exponential). `None`
    /// disables node crashes.
    pub node_mtbf: Option<SimDuration>,
    /// Mean time to repair a crashed node (exponential).
    pub node_mttr: SimDuration,
    /// Mean time between failures of each sampled link. `None` disables
    /// link outages.
    pub link_mtbf: Option<SimDuration>,
    /// Mean time to heal a failed link (exponential).
    pub link_mttr: SimDuration,
    /// Horizon up to which failures are planned. Repairs scheduled past the
    /// horizon still run, so no failure is permanent.
    pub horizon: SimDuration,
    /// Nodes subject to failures; empty means "all current nodes".
    pub targets: Vec<NodeId>,
}

impl Default for FailurePlan {
    fn default() -> Self {
        FailurePlan {
            node_mtbf: Some(SimDuration::from_secs(60)),
            node_mttr: SimDuration::from_secs(2),
            link_mtbf: None,
            link_mttr: SimDuration::from_secs(1),
            horizon: SimDuration::from_secs(600),
            targets: Vec::new(),
        }
    }
}

impl FailurePlan {
    /// A plan with no failures at all (useful as a baseline).
    pub fn none() -> Self {
        FailurePlan {
            node_mtbf: None,
            link_mtbf: None,
            ..FailurePlan::default()
        }
    }

    /// Returns the number of scheduled (crash, outage) events after
    /// installing this plan into `world`.
    pub fn install(&self, world: &mut World) -> (u32, u32) {
        let mut rng = world.rng_fork(0xFA11_0BAD);
        let targets: Vec<NodeId> = if self.targets.is_empty() {
            world.node_ids()
        } else {
            self.targets.clone()
        };
        let mut crashes = 0;
        let mut outages = 0;

        if let Some(mtbf) = self.node_mtbf {
            for &node in &targets {
                let mut t = SimTime::ZERO;
                loop {
                    t += SimDuration::from_secs_f64(rng.exp(mtbf.as_secs_f64()));
                    if t.since(SimTime::ZERO) >= self.horizon {
                        break;
                    }
                    world.schedule_crash(t, node);
                    crashes += 1;
                    let repair =
                        SimDuration::from_secs_f64(rng.exp(self.node_mttr.as_secs_f64()).max(1e-6));
                    t += repair;
                    world.schedule_recover(t, node);
                }
            }
        }

        if let Some(mtbf) = self.link_mtbf {
            // Sample outages for each unordered pair of targets.
            for (i, &a) in targets.iter().enumerate() {
                for &b in targets.iter().skip(i + 1) {
                    let mut t = SimTime::ZERO;
                    loop {
                        t += SimDuration::from_secs_f64(rng.exp(mtbf.as_secs_f64()));
                        if t.since(SimTime::ZERO) >= self.horizon {
                            break;
                        }
                        world.schedule_link(t, a, b, false);
                        outages += 1;
                        let heal = SimDuration::from_secs_f64(
                            rng.exp(self.link_mttr.as_secs_f64()).max(1e-6),
                        );
                        t += heal;
                        world.schedule_link(t, a, b, true);
                    }
                }
            }
        }

        (crashes, outages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::keys;
    use crate::world::WorldConfig;

    fn world_with_nodes(n: u32, seed: u64) -> World {
        let mut w = World::new(WorldConfig::with_seed(seed));
        for _ in 0..n {
            w.add_node();
        }
        w
    }

    #[test]
    fn no_failures_plan_schedules_nothing() {
        let mut w = world_with_nodes(3, 1);
        let (c, o) = FailurePlan::none().install(&mut w);
        assert_eq!((c, o), (0, 0));
        assert_eq!(w.pending_events(), 0);
    }

    #[test]
    fn crashes_always_recover() {
        let mut w = world_with_nodes(4, 2);
        let plan = FailurePlan {
            node_mtbf: Some(SimDuration::from_secs(5)),
            node_mttr: SimDuration::from_millis(500),
            horizon: SimDuration::from_secs(60),
            ..FailurePlan::none()
        };
        let (crashes, _) = plan.install(&mut w);
        assert!(crashes > 0, "expected some crashes in 60s at mtbf 5s");
        w.run_to_quiescence(1_000_000);
        for n in w.node_ids() {
            assert!(
                w.is_up(n),
                "{n} should have recovered (non-lasting crashes)"
            );
        }
        assert_eq!(
            w.metrics().counter(keys::NODE_CRASHES),
            w.metrics().counter(keys::NODE_RECOVERIES)
        );
    }

    #[test]
    fn link_outages_heal() {
        let mut w = world_with_nodes(3, 3);
        let plan = FailurePlan {
            node_mtbf: None,
            link_mtbf: Some(SimDuration::from_secs(5)),
            link_mttr: SimDuration::from_millis(200),
            horizon: SimDuration::from_secs(60),
            ..FailurePlan::none()
        };
        let (_, outages) = plan.install(&mut w);
        assert!(outages > 0);
        w.run_to_quiescence(1_000_000);
        assert_eq!(w.net().down_link_count(), 0, "all links should heal");
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let mut w1 = world_with_nodes(3, 9);
        let mut w2 = world_with_nodes(3, 9);
        let p = FailurePlan::default();
        assert_eq!(p.install(&mut w1), p.install(&mut w2));
        assert_eq!(w1.pending_events(), w2.pending_events());
    }

    #[test]
    fn targets_limit_scope() {
        let mut w = world_with_nodes(5, 4);
        let plan = FailurePlan {
            node_mtbf: Some(SimDuration::from_secs(1)),
            node_mttr: SimDuration::from_millis(10),
            horizon: SimDuration::from_secs(30),
            targets: vec![NodeId(0)],
            ..FailurePlan::none()
        };
        plan.install(&mut w);
        w.run_to_quiescence(1_000_000);
        // Only node 0 was eligible; it must be back up, and crash count > 0.
        assert!(w.is_up(NodeId(0)));
        assert!(w.metrics().counter(keys::NODE_CRASHES) > 0);
    }
}
