//! Counters and histograms collected during a simulation run.
//!
//! Every experiment in EXPERIMENTS.md is computed from a [`MetricsSnapshot`],
//! so metric updates must be deterministic. Under the sharded runtime each
//! shard records into its own registry and the kernel folds them in shard
//! order at run boundaries, so totals are independent of thread timing.
//!
//! The registry itself uses interior mutability (atomic counters behind a
//! read-mostly lock), so recording needs only `&self`: read-only probe paths
//! such as [`crate::World::service`] and the platform driver can count their
//! own work without exclusive access to the world.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use serde::{Deserialize, Serialize};

/// Aggregate statistics for one observed quantity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest observation (`f64::NEG_INFINITY` when empty).
    pub max: f64,
}

impl Default for HistSummary {
    fn default() -> Self {
        HistSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl HistSummary {
    /// Arithmetic mean, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn merge(&mut self, other: &HistSummary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Metrics registry owned by the simulation world (one per shard plus the
/// world-level fold target). Recording takes `&self`.
#[derive(Default)]
pub struct Metrics {
    counters: RwLock<BTreeMap<String, AtomicU64>>,
    hists: Mutex<BTreeMap<String, HistSummary>>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `n` to the named counter.
    pub fn add(&self, name: &str, n: u64) {
        if n == 0 {
            return;
        }
        {
            // Fast path: the counter exists; no allocation, shared lock.
            let counters = self.counters.read().expect("metrics lock");
            if let Some(c) = counters.get(name) {
                c.fetch_add(n, Ordering::Relaxed);
                return;
            }
        }
        let mut counters = self.counters.write().expect("metrics lock");
        counters
            .entry(name.to_owned())
            .or_insert_with(|| AtomicU64::new(0))
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the named counter by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Records an observation in the named histogram.
    pub fn observe(&self, name: &str, v: f64) {
        self.hists
            .lock()
            .expect("metrics lock")
            .entry(name.to_owned())
            .or_default()
            .observe(v);
    }

    /// Current value of a counter (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .read()
            .expect("metrics lock")
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Current summary of a histogram, if any observation was made.
    pub fn hist(&self, name: &str) -> Option<HistSummary> {
        self.hists.lock().expect("metrics lock").get(name).copied()
    }

    /// Freezes the current state into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .expect("metrics lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            hists: self.hists.lock().expect("metrics lock").clone(),
        }
    }

    /// Resets all counters and histograms.
    pub fn clear(&self) {
        self.counters.write().expect("metrics lock").clear();
        self.hists.lock().expect("metrics lock").clear();
    }

    /// Moves every count and observation out of `other` into `self` (the
    /// deterministic shard fold: counter addition and histogram merging are
    /// commutative, and the kernel folds shards in id order).
    pub(crate) fn absorb(&self, other: &Metrics) {
        let drained: Vec<(String, u64)> = {
            let mut counters = other.counters.write().expect("metrics lock");
            let drained = counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .filter(|(_, v)| *v > 0)
                .collect();
            counters.clear();
            drained
        };
        for (k, v) in drained {
            self.add(&k, v);
        }
        let hists = std::mem::take(&mut *other.hists.lock().expect("metrics lock"));
        if !hists.is_empty() {
            let mut own = self.hists.lock().expect("metrics lock");
            for (k, h) in hists {
                own.entry(k).or_default().merge(&h);
            }
        }
    }
}

impl Clone for Metrics {
    fn clone(&self) -> Self {
        let snap = self.snapshot();
        let m = Metrics::new();
        for (k, v) in &snap.counters {
            m.add(k, *v);
        }
        *m.hists.lock().expect("metrics lock") = snap.hists;
        m
    }
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Metrics")
            .field(
                "counters",
                &self.counters.read().expect("metrics lock").len(),
            )
            .field("hists", &self.hists.lock().expect("metrics lock").len())
            .finish()
    }
}

/// Immutable, serializable copy of the metrics at some point in time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub hists: BTreeMap<String, HistSummary>,
}

impl MetricsSnapshot {
    /// Value of a counter (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Difference of each counter relative to an earlier snapshot.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> BTreeMap<String, i64> {
        let mut out = BTreeMap::new();
        for (k, v) in &self.counters {
            let before = earlier.counter(k) as i64;
            let d = *v as i64 - before;
            if d != 0 {
                out.insert(k.clone(), d);
            }
        }
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k:<48} {v}")?;
        }
        for (k, h) in &self.hists {
            writeln!(
                f,
                "{k:<48} n={} mean={:.2} min={:.2} max={:.2}",
                h.count,
                h.mean(),
                h.min,
                h.max
            )?;
        }
        Ok(())
    }
}

/// Well-known metric names used by the kernel; higher layers define theirs
/// next to the code that emits them.
pub mod keys {
    /// Messages successfully delivered.
    pub const MSGS_DELIVERED: &str = "net.msgs_delivered";
    /// Messages dropped because the destination node was down.
    pub const MSGS_DROPPED_NODE_DOWN: &str = "net.msgs_dropped_node_down";
    /// Messages dropped because the link was down.
    pub const MSGS_DROPPED_LINK_DOWN: &str = "net.msgs_dropped_link_down";
    /// Total payload bytes accepted for sending.
    pub const BYTES_SENT: &str = "net.bytes_sent";
    /// Stable-storage write operations.
    pub const STABLE_WRITES: &str = "stable.writes";
    /// Stable-storage bytes written.
    pub const STABLE_BYTES: &str = "stable.bytes_written";
    /// Stable-storage group-commit barriers that contained a mutation (one
    /// per service callback that wrote, independent of backend and shards).
    pub const STABLE_COMMITS: &str = "stable.commits";
    /// Node crash events.
    pub const NODE_CRASHES: &str = "failure.node_crashes";
    /// Node recovery events.
    pub const NODE_RECOVERIES: &str = "failure.node_recoveries";
    /// Timer events fired.
    pub const TIMERS_FIRED: &str = "kernel.timers_fired";
    /// Events processed by the kernel.
    pub const EVENTS: &str = "kernel.events";
    /// Windows executed by the sharded runtime (0 in sequential runs).
    pub const WINDOWS: &str = "kernel.windows";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.inc("a");
        m.add("a", 2);
        m.add("a", 0);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn recording_needs_only_a_shared_reference() {
        let m = Metrics::new();
        let r: &Metrics = &m;
        r.inc("probe");
        r.observe("h", 1.5);
        assert_eq!(r.counter("probe"), 1);
        assert_eq!(r.hist("h").unwrap().count, 1);
    }

    #[test]
    fn histogram_summary() {
        let m = Metrics::new();
        m.observe("h", 1.0);
        m.observe("h", 3.0);
        let h = m.hist("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.mean(), 2.0);
        assert_eq!((h.min, h.max), (1.0, 3.0));
    }

    #[test]
    fn absorb_moves_and_merges() {
        let a = Metrics::new();
        let b = Metrics::new();
        a.add("x", 1);
        b.add("x", 2);
        b.add("y", 5);
        b.observe("h", 2.0);
        a.observe("h", 4.0);
        a.absorb(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 5);
        let h = a.hist("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!((h.min, h.max), (2.0, 4.0));
        // `b` was drained.
        assert_eq!(b.counter("x"), 0);
        assert!(b.hist("h").is_none());
    }

    #[test]
    fn snapshot_delta() {
        let m = Metrics::new();
        m.add("x", 5);
        let before = m.snapshot();
        m.add("x", 2);
        m.add("y", 1);
        let after = m.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.get("x"), Some(&2));
        assert_eq!(d.get("y"), Some(&1));
    }

    #[test]
    fn snapshot_serializes() {
        let m = Metrics::new();
        m.inc("k");
        m.observe("h", 2.5);
        let snap = m.snapshot();
        let bytes = mar_wire::to_bytes(&snap).unwrap();
        let back: MetricsSnapshot = mar_wire::from_slice(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn display_contains_names() {
        let m = Metrics::new();
        m.inc("some.counter");
        let text = m.snapshot().to_string();
        assert!(text.contains("some.counter"));
    }
}
