//! The context handed to service callbacks.
//!
//! A [`Ctx`] gives a service synchronous access to its node's stable storage
//! and deterministic randomness, and buffers outgoing effects (messages,
//! timers) which the kernel applies after the callback returns.

use crate::event::TimerId;
use crate::metrics::{keys, Metrics};
use crate::node::{Address, NodeId};
use crate::rng::SimRng;
use crate::stable::StableStore;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceKind};

#[derive(Debug)]
pub(crate) enum Command {
    Send {
        from: Address,
        to: Address,
        payload: Vec<u8>,
        /// Logical size the message is billed at (latency, byte counters,
        /// trace). Equals `payload.len()` except for reference-compressed
        /// payloads, which are billed at their rehydrated size so that
        /// volatile-cache state never shifts the simulated schedule.
        billed: usize,
    },
    SetTimer {
        node: NodeId,
        service: &'static str,
        id: TimerId,
        tag: u64,
        epoch: u64,
        delay: SimDuration,
    },
    CancelTimer(TimerId),
}

/// Execution context of a service callback.
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) service: &'static str,
    pub(crate) epoch: u64,
    pub(crate) stable: &'a mut StableStore,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) metrics: &'a Metrics,
    pub(crate) trace: &'a mut Trace,
    pub(crate) timer_seq: &'a mut u64,
    pub(crate) commands: &'a mut Vec<Command>,
}

impl Ctx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this service runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This service's own address.
    pub fn self_address(&self) -> Address {
        Address::new(self.node, self.service)
    }

    /// Deterministic random number generator (a per-node stream, so draws
    /// are independent of how nodes are partitioned into shards).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Metrics registry for custom counters.
    pub fn metrics(&self) -> &Metrics {
        self.metrics
    }

    /// Sends `payload` to `to`. Delivery is asynchronous; the message is
    /// dropped (with a metric) if the link or destination node is down.
    pub fn send(&mut self, to: Address, payload: Vec<u8>) {
        let billed = payload.len();
        self.send_billed(to, payload, billed);
    }

    /// Like [`Ctx::send`], but bills the message — network latency,
    /// `net.bytes_sent`, and both trace records — at `billed` bytes instead
    /// of `payload.len()`.
    ///
    /// This is the hook for content-addressed compression: a sender that
    /// replaces a payload section with a cache reference passes the
    /// *rehydrated* size here, so the simulated schedule, byte counters,
    /// and traces stay identical whether or not the (volatile) cache was
    /// warm. The real savings are reported through dedicated metrics by the
    /// caller.
    pub fn send_billed(&mut self, to: Address, payload: Vec<u8>, billed: usize) {
        let from = self.self_address();
        if self.trace.enabled() {
            self.trace.record(
                self.now,
                TraceKind::MsgSent {
                    from: (from.node.0, from.service.to_owned()),
                    to: (to.node.0, to.service.to_owned()),
                    bytes: billed,
                },
            );
        }
        self.metrics.add(keys::BYTES_SENT, billed as u64);
        self.commands.push(Command::Send {
            from,
            to,
            payload,
            billed,
        });
    }

    /// Sends a message to another service on the same node.
    pub fn send_local(&mut self, service: &'static str, payload: Vec<u8>) {
        self.send(Address::new(self.node, service), payload);
    }

    /// Schedules `on_timer(tag)` after `delay`. The timer dies if the node
    /// crashes before it fires.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        // Timer ids are scoped to the owning node so they are unique (and
        // stable) regardless of the shard layout.
        let id = TimerId(((self.node.0 as u64) << 40) | *self.timer_seq);
        *self.timer_seq += 1;
        self.commands.push(Command::SetTimer {
            node: self.node,
            service: self.service,
            id,
            tag,
            epoch: self.epoch,
            delay,
        });
        id
    }

    /// Cancels a previously set timer (no-op if it already fired).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.commands.push(Command::CancelTimer(id));
    }

    /// Writes to this node's stable storage (crash-surviving), recording
    /// write metrics.
    pub fn stable_put(&mut self, key: impl Into<String>, value: Vec<u8>) {
        self.metrics.inc(keys::STABLE_WRITES);
        self.metrics.add(keys::STABLE_BYTES, value.len() as u64);
        self.stable.put(key, value);
    }

    /// Reads from stable storage.
    pub fn stable_get(&self, key: &str) -> Option<&[u8]> {
        self.stable.get(key)
    }

    /// Deletes a stable key, returning the previous value.
    pub fn stable_delete(&mut self, key: &str) -> Option<Vec<u8>> {
        self.metrics.inc(keys::STABLE_WRITES);
        self.stable.delete(key)
    }

    /// Direct access to the stable store for scans.
    pub fn stable(&mut self) -> &mut StableStore {
        self.stable
    }

    /// Emits an application-level trace marker.
    pub fn trace(&mut self, label: &'static str, detail: impl Into<String>) {
        if self.trace.enabled() {
            self.trace.record(
                self.now,
                TraceKind::Custom {
                    node: self.node.0,
                    label: label.to_owned(),
                    detail: detail.into(),
                },
            );
        }
    }
}
