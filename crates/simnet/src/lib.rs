//! # mar-simnet
//!
//! A deterministic discrete-event simulator for distributed systems: the
//! substrate the mobile-agent platform runs on.
//!
//! The paper's mechanisms are protocol-level — what gets logged, which
//! transactions run where, how many transfers and bytes a rollback costs,
//! and how the system behaves under *non-lasting* node and network crashes.
//! This kernel reproduces exactly those quantities:
//!
//! * [`World`] — sharded deterministic event kernel with virtual [`SimTime`];
//!   total event order ⇒ bit-for-bit reproducible runs.
//! * [`Service`] — message-driven state machines hosted on nodes; volatile
//!   state dies with the node, and is rebuilt from a factory on recovery.
//! * [`StableStore`] — per-node crash-surviving key-value storage (agent
//!   input queues, transaction decision records) behind a pluggable
//!   [`StableBackend`]: the reference in-memory map, or a log-structured
//!   WAL with group commit, checkpoints, and torn-tail recovery
//!   ([`stable::wal`]). Select one via [`WorldConfig::stable`].
//! * [`Network`] / [`LatencyModel`] — size-dependent latencies, link
//!   outages, partitions.
//! * [`FailurePlan`] — deterministic crash/outage schedules.
//! * [`Metrics`] / [`Trace`] — the raw material of every experiment table.
//!
//! # Examples
//!
//! ```
//! use mar_simnet::{Address, Ctx, Service, SimDuration, World, WorldConfig};
//!
//! struct Hello;
//! impl Service for Hello {
//!     fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Address, payload: &[u8]) {
//!         ctx.stable_put("greeting", payload.to_vec());
//!     }
//! }
//!
//! let mut world = World::new(WorldConfig::with_seed(42));
//! let node = world.add_node();
//! world.add_service(node, "hello", || Box::new(Hello));
//! world.start();
//! world.post(Address::new(node, "hello"), b"hi".to_vec());
//! world.run_for(SimDuration::from_secs(1));
//! assert_eq!(world.stable(node).get("greeting"), Some(&b"hi"[..]));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ctx;
mod event;
mod failure;
mod metrics;
mod net;
mod node;
mod remote;
mod rng;
pub mod stable;
mod time;
mod trace;
mod world;

pub use ctx::Ctx;
pub use event::TimerId;
pub use failure::FailurePlan;
pub use metrics::{keys as metric_keys, HistSummary, Metrics, MetricsSnapshot};
pub use net::{LatencyModel, Network, MSG_OVERHEAD_BYTES};
pub use node::{Address, NodeId, Service, ServiceFactory};
pub use remote::{intern_service_name, RemoteEvent};
pub use rng::SimRng;
pub use stable::{BackendStats, MemBackend, StableBackend, StableFactory, StableStore};
pub use stable::{WalBackend, WalConfig};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceKind, TraceRecord};
pub use world::{ShardProfile, World, WorldConfig};
