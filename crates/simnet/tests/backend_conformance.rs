//! Backend conformance suite: one shared test body instantiated against
//! every stable backend, so adding a backend means adding one
//! `conformance_suite!` line — the contract itself is written once.
//!
//! The contract (see [`mar_simnet::StableBackend`]):
//!
//! * the view reflects every mutation, committed or not;
//! * prefix scans are ordered and exact;
//! * write accounting counts puts and effective deletes, per key;
//! * `commit` reports batch occupancy (a no-op delete is not a mutation);
//! * a crash reverts to the last committed state; recovery is idempotent.

use mar_simnet::{StableStore, WalConfig};

/// Full ordered dump of a store (the byte-identity currency of the
/// crash-injection and shard-equivalence suites).
fn dump(s: &StableStore) -> Vec<(String, Vec<u8>)> {
    s.iter().map(|(k, v)| (k.to_owned(), v.to_vec())).collect()
}

macro_rules! conformance_suite {
    ($backend:ident, $make:expr) => {
        mod $backend {
            use super::dump;
            // `WalConfig` is used by the wal arms only.
            #[allow(unused_imports)]
            use mar_simnet::{StableStore, WalConfig};

            fn store() -> StableStore {
                $make
            }

            #[test]
            fn put_get_delete_roundtrip() {
                let mut s = store();
                assert!(s.is_empty());
                s.put("a", vec![1]);
                assert!(s.contains("a"));
                assert_eq!(s.get("a"), Some(&[1u8][..]));
                s.put("a", vec![2]);
                assert_eq!(s.get("a"), Some(&[2u8][..]), "put replaces");
                assert_eq!(s.delete("a"), Some(vec![2]));
                assert_eq!(s.delete("a"), None);
                assert!(s.is_empty());
            }

            #[test]
            fn prefix_scans_are_ordered_and_exact() {
                let mut s = store();
                s.put("q/2", vec![2]);
                s.put("q/1", vec![1]);
                s.put("q/10", vec![10]);
                s.put("r/1", vec![9]);
                s.put("q", vec![0]);
                assert_eq!(s.keys_with_prefix("q/"), ["q/1", "q/10", "q/2"]);
                assert_eq!(s.first_with_prefix("q/"), Some(("q/1", &[1u8][..])));
                assert_eq!(s.count_with_prefix("q/"), 3);
                assert_eq!(s.first_with_prefix("zz"), None);
                // Similar keys do not leak into the prefix.
                assert_eq!(s.keys_with_prefix("q/1"), ["q/1", "q/10"]);
            }

            #[test]
            fn accounting_counts_every_mutation_per_key() {
                let mut s = store();
                s.put("q/1", vec![0; 10]);
                s.put("q/2", vec![0; 5]);
                s.put("x", vec![0; 3]);
                assert_eq!((s.write_ops(), s.bytes_written()), (3, 18));
                s.delete("missing"); // not a write
                assert_eq!(s.write_ops(), 3);
                assert_eq!(s.delete_prefix("q/"), 2);
                assert_eq!(s.write_ops(), 5, "delete_prefix counts per key");
                assert_eq!(s.delete_prefix("q/"), 0);
                assert_eq!(s.write_ops(), 5);
            }

            #[test]
            fn commit_reports_batch_occupancy() {
                let mut s = store();
                s.begin_batch();
                assert!(!s.commit(), "empty batch");
                s.begin_batch();
                s.delete("missing");
                assert!(!s.commit(), "no-op delete is not a mutation");
                s.begin_batch();
                s.put("k", vec![1]);
                assert!(s.commit());
                assert_eq!(s.backend_stats().commits, 1);
            }

            #[test]
            fn crash_reverts_to_last_committed_state() {
                let mut s = store();
                s.begin_batch();
                s.put("a", vec![1]);
                s.put("b", vec![2]);
                assert!(s.commit());
                s.begin_batch();
                s.put("b", vec![20]);
                s.put("c", vec![3]);
                s.delete("a");
                // No commit: the crash must undo all three mutations.
                s.crash_volatile();
                s.recover();
                assert_eq!(
                    dump(&s),
                    vec![("a".to_owned(), vec![1]), ("b".to_owned(), vec![2])]
                );
            }

            #[test]
            fn autocommitted_writes_survive_crashes() {
                // Mutations outside a batch (driver/test writes) are
                // durable immediately.
                let mut s = store();
                s.put("a", vec![1]);
                s.delete("a");
                s.put("b", vec![2]);
                s.crash_volatile();
                s.recover();
                assert_eq!(dump(&s), vec![("b".to_owned(), vec![2])]);
            }

            #[test]
            fn recovery_is_idempotent() {
                let mut s = store();
                for i in 0..30 {
                    s.put(format!("k/{i:02}"), vec![i as u8; 16]);
                }
                s.delete_prefix("k/1");
                s.crash_volatile();
                s.recover();
                let once = dump(&s);
                s.recover();
                assert_eq!(dump(&s), once);
                s.crash_volatile();
                s.recover();
                s.recover();
                assert_eq!(dump(&s), once);
            }
        }
    };
}

conformance_suite!(reference, StableStore::new());
conformance_suite!(wal_default, StableStore::wal(WalConfig::default()));
// A tiny checkpoint threshold forces the checkpoint/log split constantly,
// so the same contract is exercised across log rollovers.
conformance_suite!(
    wal_tiny_checkpoint,
    StableStore::wal(WalConfig {
        checkpoint_bytes: 48,
        path: None
    })
);

/// The same mutation script produces byte-identical dumps and identical
/// commit/record counts on every backend — the property the platform-level
/// fingerprint tests rely on.
#[test]
fn backends_agree_on_a_mixed_script() {
    let mut stores = [
        StableStore::new(),
        StableStore::wal(WalConfig::default()),
        StableStore::wal(WalConfig {
            checkpoint_bytes: 48,
            path: None,
        }),
    ];
    for s in &mut stores {
        for round in 0..8u8 {
            s.begin_batch();
            for i in 0..6u8 {
                s.put(format!("q/{:02}/{round}", i), vec![round; 1 + i as usize]);
            }
            s.delete(&format!("q/{:02}/{}", round % 6, round.saturating_sub(1)));
            s.commit();
            if round % 3 == 2 {
                s.crash_volatile();
                s.recover();
            }
        }
        s.delete_prefix("q/00");
    }
    let [a, b, c] = stores;
    assert_eq!(dump(&a), dump(&b));
    assert_eq!(dump(&a), dump(&c));
    assert_eq!(
        (a.write_ops(), a.bytes_written()),
        (b.write_ops(), b.bytes_written())
    );
    assert_eq!(
        (a.write_ops(), a.bytes_written()),
        (c.write_ops(), c.bytes_written())
    );
    assert_eq!(a.backend_stats().commits, b.backend_stats().commits);
    assert_eq!(a.backend_stats().records, b.backend_stats().records);
    assert_eq!(a.backend_stats().commits, c.backend_stats().commits);
}
