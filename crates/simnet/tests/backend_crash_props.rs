//! Trait-boundary crash-injection proptests: random mutation scripts with
//! commit barriers, crashes, and torn-WAL suffixes run simultaneously
//! against the reference backend (the executable durability model) and the
//! WAL backend. After *every* operation the two views must be
//! byte-identical, and the backend-independent counters (commits, records)
//! must agree.
//!
//! The torn-tail operation models the paper's failure window: a node dies
//! while a committed batch is being flushed, leaving a partially framed
//! record at the end of the durable log. The reference model never saw the
//! torn record (it was lost mid-write), so recovery discarding it is
//! exactly what makes the two backends agree.

use proptest::prelude::*;

use mar_simnet::stable::wal::encode_put_frame;
use mar_simnet::{StableStore, WalBackend, WalConfig};

/// One scripted operation, applied to both stores in lockstep.
#[derive(Debug, Clone)]
enum Op {
    /// Put `key(k)` with a value of `len` bytes (filled with `fill`).
    Put { k: u8, len: u8, fill: u8 },
    /// Delete `key(k)` (may be a no-op).
    Delete { k: u8 },
    /// Delete everything under `prefix(p)`.
    DeletePrefix { p: u8 },
    /// Group-commit barrier.
    Commit,
    /// Crash both nodes and recover: uncommitted mutations are lost.
    CrashRecover,
    /// Crash with a torn durable tail on the WAL: a partial put frame for
    /// `key(k)` cut after `cut % frame_len` bytes is appended as if the
    /// flush was interrupted. The reference model never saw it.
    CrashTorn { k: u8, len: u8, cut: u16 },
}

/// Small key space with two prefix families so `DeletePrefix` bites.
fn key(k: u8) -> String {
    format!("{}/{:02}", if k % 2 == 0 { "q" } else { "log" }, k % 12)
}

fn prefix(p: u8) -> &'static str {
    if p % 2 == 0 {
        "q/"
    } else {
        "log/"
    }
}

fn dump(s: &StableStore) -> Vec<(String, Vec<u8>)> {
    s.iter().map(|(k, v)| (k.to_owned(), v.to_vec())).collect()
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(k, len, fill)| Op::Put { k, len, fill }),
        2 => any::<u8>().prop_map(|k| Op::Delete { k }),
        1 => any::<u8>().prop_map(|p| Op::DeletePrefix { p }),
        3 => Just(Op::Commit),
        1 => Just(Op::CrashRecover),
        1 => (any::<u8>(), any::<u8>(), any::<u16>())
            .prop_map(|(k, len, cut)| Op::CrashTorn { k, len, cut }),
    ]
}

/// Applies `ops` to a reference store and a WAL store in lockstep,
/// asserting view equivalence after every single operation.
fn run_script(ops: &[Op], wal_cfg: WalConfig) {
    let mut reference = StableStore::new();
    let mut wal = StableStore::wal(wal_cfg);
    reference.begin_batch();
    wal.begin_batch();

    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Put { k, len, fill } => {
                let value = vec![*fill; *len as usize];
                reference.put(key(*k), value.clone());
                wal.put(key(*k), value);
            }
            Op::Delete { k } => {
                let a = reference.delete(&key(*k));
                let b = wal.delete(&key(*k));
                assert_eq!(a, b, "delete disagreement at op {i}");
            }
            Op::DeletePrefix { p } => {
                let a = reference.delete_prefix(prefix(*p));
                let b = wal.delete_prefix(prefix(*p));
                assert_eq!(a, b, "delete_prefix disagreement at op {i}");
            }
            Op::Commit => {
                let a = reference.commit();
                let b = wal.commit();
                assert_eq!(a, b, "commit occupancy disagreement at op {i}");
                reference.begin_batch();
                wal.begin_batch();
            }
            Op::CrashRecover => {
                reference.crash_volatile();
                wal.crash_volatile();
                reference.recover();
                wal.recover();
                reference.begin_batch();
                wal.begin_batch();
            }
            Op::CrashTorn { k, len, cut } => {
                // Build a valid put frame and tear it strictly before its
                // end: a complete frame would be legitimately durable on
                // the WAL side but unknown to the reference model.
                let mut frame = Vec::new();
                encode_put_frame(&mut frame, &key(*k), &vec![0xAB; *len as usize]);
                let cut = (*cut as usize) % frame.len();
                wal.backend_mut()
                    .as_any_mut()
                    .downcast_mut::<WalBackend>()
                    .expect("wal store holds a WalBackend")
                    .inject_torn_tail(&frame[..cut]);
                reference.crash_volatile();
                wal.crash_volatile();
                reference.recover();
                wal.recover();
                reference.begin_batch();
                wal.begin_batch();
            }
        }
        assert_eq!(
            dump(&reference),
            dump(&wal),
            "views diverged after op {i}: {op:?}"
        );
        assert_eq!(
            (reference.write_ops(), reference.bytes_written()),
            (wal.write_ops(), wal.bytes_written()),
            "accounting diverged after op {i}"
        );
    }

    // Backend-independent counters agree at the end of the script.
    let (r, w) = (reference.backend_stats(), wal.backend_stats());
    assert_eq!(r.commits, w.commits, "commit counts diverged");
    assert_eq!(r.records, w.records, "record counts diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random scripts on the default WAL tuning.
    #[test]
    fn wal_matches_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        run_script(&ops, WalConfig::default());
    }

    /// The same property with a tiny checkpoint threshold, so scripts
    /// constantly roll the log over into checkpoints.
    #[test]
    fn wal_matches_reference_model_across_checkpoints(
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        run_script(&ops, WalConfig { checkpoint_bytes: 96, path: None });
    }
}

/// Pinned regression script: torn tails at both cut extremes, a delete-only
/// batch, and a checkpoint rollover — reproduces without proptest shrinking.
#[test]
fn pinned_torn_tail_script() {
    let ops = vec![
        Op::Put {
            k: 0,
            len: 40,
            fill: 1,
        },
        Op::Put {
            k: 2,
            len: 40,
            fill: 2,
        },
        Op::Commit,
        Op::CrashTorn {
            k: 4,
            len: 10,
            cut: 0,
        },
        Op::Put {
            k: 1,
            len: 8,
            fill: 3,
        },
        Op::Commit,
        Op::CrashTorn {
            k: 1,
            len: 30,
            cut: u16::MAX,
        },
        Op::Delete { k: 1 },
        Op::Commit,
        Op::DeletePrefix { p: 0 },
        Op::Commit,
        Op::CrashRecover,
    ];
    run_script(
        &ops,
        WalConfig {
            checkpoint_bytes: 96,
            path: None,
        },
    );
}
