//! Error type for encoding and decoding.

use std::fmt;

/// Error produced while encoding or decoding the wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A custom message produced through serde's error hooks.
    Message(String),
    /// Input ended before a complete value was decoded.
    UnexpectedEof,
    /// An unknown or out-of-place type tag was encountered.
    BadTag(u8),
    /// A varint ran over its maximum width.
    VarintOverflow,
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// A char code point was invalid.
    InvalidChar(u32),
    /// The type is not representable in the wire format (e.g. `i128`).
    Unsupported(&'static str),
    /// Trailing bytes remained after decoding a complete value.
    TrailingBytes(usize),
    /// A declared length exceeds the remaining input.
    LengthOverflow(u64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Message(m) => f.write_str(m),
            WireError::UnexpectedEof => f.write_str("unexpected end of input"),
            WireError::BadTag(t) => write!(f, "invalid type tag 0x{t:02x}"),
            WireError::VarintOverflow => f.write_str("varint exceeds 64 bits"),
            WireError::InvalidUtf8 => f.write_str("string is not valid utf-8"),
            WireError::InvalidChar(c) => write!(f, "invalid char code point {c}"),
            WireError::Unsupported(what) => write!(f, "unsupported type: {what}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            WireError::LengthOverflow(n) => write!(f, "declared length {n} exceeds input"),
        }
    }
}

impl std::error::Error for WireError {}

impl serde::ser::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

impl serde::de::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

/// Convenience alias for results of wire operations.
pub type WireResult<T> = Result<T, WireError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        assert_eq!(
            WireError::UnexpectedEof.to_string(),
            "unexpected end of input"
        );
        assert_eq!(WireError::BadTag(0xff).to_string(), "invalid type tag 0xff");
        assert_eq!(
            WireError::TrailingBytes(3).to_string(),
            "3 trailing bytes after value"
        );
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<WireError>();
    }
}
