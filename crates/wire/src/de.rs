//! Serde deserializer for the compact binary wire format.

use serde::de::{self, DeserializeSeed, IntoDeserializer, Visitor};
use serde::Deserialize;

use crate::error::{WireError, WireResult};
use crate::ser::{
    TAG_BYTES, TAG_CHAR, TAG_F32, TAG_F64, TAG_FALSE, TAG_I64, TAG_MAP, TAG_NEWTYPE_VARIANT,
    TAG_NULL, TAG_SEQ, TAG_SOME, TAG_STR, TAG_STRUCT_VARIANT, TAG_TRUE, TAG_TUPLE_VARIANT, TAG_U64,
    TAG_UNIT_VARIANT,
};
use crate::varint::{get_ivarint, get_uvarint};

/// Decodes a value of type `T` from `bytes`, requiring the whole input to be
/// consumed.
///
/// # Errors
///
/// Returns [`WireError::TrailingBytes`] if input remains after the value, and
/// decoding errors for malformed input.
///
/// # Examples
///
/// ```
/// let bytes = mar_wire::to_bytes(&vec![1u32, 2, 3]).unwrap();
/// let v: Vec<u32> = mar_wire::from_slice(&bytes).unwrap();
/// assert_eq!(v, [1, 2, 3]);
/// ```
pub fn from_slice<'de, T: Deserialize<'de>>(bytes: &'de [u8]) -> WireResult<T> {
    let mut de = BinDeserializer::new(bytes);
    let value = T::deserialize(&mut de)?;
    let rest = de.remaining();
    if rest != 0 {
        return Err(WireError::TrailingBytes(rest));
    }
    Ok(value)
}

/// Decodes a value from the front of `bytes`, returning the value and the
/// number of bytes consumed. Useful for streams of concatenated values.
///
/// # Errors
///
/// Decoding errors for malformed input.
pub fn from_slice_prefix<'de, T: Deserialize<'de>>(bytes: &'de [u8]) -> WireResult<(T, usize)> {
    let mut de = BinDeserializer::new(bytes);
    let value = T::deserialize(&mut de)?;
    Ok((value, de.pos))
}

/// Streaming binary deserializer. Usually used through [`from_slice`].
#[derive(Debug)]
pub struct BinDeserializer<'de> {
    buf: &'de [u8],
    pos: usize,
}

impl<'de> BinDeserializer<'de> {
    /// Creates a deserializer reading from `buf`.
    pub fn new(buf: &'de [u8]) -> Self {
        BinDeserializer { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn peek_tag(&self) -> WireResult<u8> {
        self.buf
            .get(self.pos)
            .copied()
            .ok_or(WireError::UnexpectedEof)
    }

    fn take_tag(&mut self) -> WireResult<u8> {
        let t = self.peek_tag()?;
        self.pos += 1;
        Ok(t)
    }

    fn take_bytes(&mut self, n: usize) -> WireResult<&'de [u8]> {
        if self.remaining() < n {
            return Err(WireError::LengthOverflow(n as u64));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_uvarint(&mut self) -> WireResult<u64> {
        get_uvarint(self.buf, &mut self.pos)
    }

    fn take_ivarint(&mut self) -> WireResult<i64> {
        get_ivarint(self.buf, &mut self.pos)
    }

    fn take_len(&mut self) -> WireResult<usize> {
        let n = self.take_uvarint()?;
        if n > self.remaining() as u64 {
            // Every element needs at least one byte, so a length beyond the
            // remaining byte count is necessarily corrupt.
            return Err(WireError::LengthOverflow(n));
        }
        Ok(n as usize)
    }

    fn take_str(&mut self) -> WireResult<&'de str> {
        let n = self.take_len()?;
        std::str::from_utf8(self.take_bytes(n)?).map_err(|_| WireError::InvalidUtf8)
    }

    fn take_f32(&mut self) -> WireResult<f32> {
        let b = self.take_bytes(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn take_f64(&mut self) -> WireResult<f64> {
        let b = self.take_bytes(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn take_integer_u64(&mut self) -> WireResult<u64> {
        match self.take_tag()? {
            TAG_U64 => self.take_uvarint(),
            TAG_I64 => {
                let v = self.take_ivarint()?;
                u64::try_from(v).map_err(|_| {
                    de::Error::custom(format!("negative value {v} where unsigned expected"))
                })
            }
            t => Err(WireError::BadTag(t)),
        }
    }

    fn take_integer_i64(&mut self) -> WireResult<i64> {
        match self.take_tag()? {
            TAG_I64 => self.take_ivarint(),
            TAG_U64 => {
                let v = self.take_uvarint()?;
                i64::try_from(v)
                    .map_err(|_| de::Error::custom(format!("value {v} exceeds i64 range")))
            }
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Skips exactly one encoded value (used by `deserialize_ignored_any`).
    fn skip_value(&mut self) -> WireResult<()> {
        match self.take_tag()? {
            TAG_NULL | TAG_TRUE | TAG_FALSE => Ok(()),
            TAG_I64 => self.take_ivarint().map(drop),
            TAG_U64 | TAG_CHAR => self.take_uvarint().map(drop),
            TAG_F32 => self.take_bytes(4).map(drop),
            TAG_F64 => self.take_bytes(8).map(drop),
            TAG_STR | TAG_BYTES => {
                let n = self.take_len()?;
                self.take_bytes(n).map(drop)
            }
            TAG_SOME => self.skip_value(),
            TAG_SEQ => {
                let n = self.take_len()?;
                for _ in 0..n {
                    self.skip_value()?;
                }
                Ok(())
            }
            TAG_MAP => {
                let n = self.take_len()?;
                for _ in 0..n {
                    self.skip_value()?;
                    self.skip_value()?;
                }
                Ok(())
            }
            TAG_UNIT_VARIANT => self.take_uvarint().map(drop),
            TAG_NEWTYPE_VARIANT => {
                self.take_uvarint()?;
                self.skip_value()
            }
            TAG_TUPLE_VARIANT | TAG_STRUCT_VARIANT => {
                self.take_uvarint()?;
                let n = self.take_len()?;
                for _ in 0..n {
                    self.skip_value()?;
                }
                Ok(())
            }
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl<'de> de::Deserializer<'de> for &mut BinDeserializer<'de> {
    type Error = WireError;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        match self.take_tag()? {
            TAG_NULL => visitor.visit_unit(),
            TAG_TRUE => visitor.visit_bool(true),
            TAG_FALSE => visitor.visit_bool(false),
            TAG_I64 => visitor.visit_i64(self.take_ivarint()?),
            TAG_U64 => visitor.visit_u64(self.take_uvarint()?),
            TAG_F32 => visitor.visit_f32(self.take_f32()?),
            TAG_F64 => visitor.visit_f64(self.take_f64()?),
            TAG_CHAR => {
                let c = self.take_uvarint()?;
                let c32 = u32::try_from(c).map_err(|_| WireError::InvalidChar(u32::MAX))?;
                visitor.visit_char(char::from_u32(c32).ok_or(WireError::InvalidChar(c32))?)
            }
            TAG_STR => visitor.visit_borrowed_str(self.take_str()?),
            TAG_BYTES => {
                let n = self.take_len()?;
                visitor.visit_borrowed_bytes(self.take_bytes(n)?)
            }
            TAG_SOME => visitor.visit_some(self),
            TAG_SEQ => {
                let n = self.take_len()?;
                visitor.visit_seq(CountedSeq { de: self, left: n })
            }
            TAG_MAP => {
                let n = self.take_len()?;
                visitor.visit_map(CountedMap { de: self, left: n })
            }
            t @ (TAG_UNIT_VARIANT | TAG_NEWTYPE_VARIANT | TAG_TUPLE_VARIANT
            | TAG_STRUCT_VARIANT) => {
                // Variants are not self-describing (the enum type is needed);
                // `deserialize_enum` must be used instead.
                Err(WireError::BadTag(t))
            }
            t => Err(WireError::BadTag(t)),
        }
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        match self.take_tag()? {
            TAG_TRUE => visitor.visit_bool(true),
            TAG_FALSE => visitor.visit_bool(false),
            t => Err(WireError::BadTag(t)),
        }
    }

    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_i64(self.take_integer_i64()?)
    }
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_i64(self.take_integer_i64()?)
    }
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_i64(self.take_integer_i64()?)
    }
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_i64(self.take_integer_i64()?)
    }

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_u64(self.take_integer_u64()?)
    }
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_u64(self.take_integer_u64()?)
    }
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_u64(self.take_integer_u64()?)
    }
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_u64(self.take_integer_u64()?)
    }

    fn deserialize_i128<V: Visitor<'de>>(self, _: V) -> WireResult<V::Value> {
        Err(WireError::Unsupported("i128"))
    }
    fn deserialize_u128<V: Visitor<'de>>(self, _: V) -> WireResult<V::Value> {
        Err(WireError::Unsupported("u128"))
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        match self.take_tag()? {
            TAG_F32 => visitor.visit_f32(self.take_f32()?),
            TAG_F64 => visitor.visit_f64(self.take_f64()?),
            t => Err(WireError::BadTag(t)),
        }
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        match self.take_tag()? {
            TAG_F64 => visitor.visit_f64(self.take_f64()?),
            TAG_F32 => visitor.visit_f32(self.take_f32()?),
            TAG_I64 => visitor.visit_i64(self.take_ivarint()?),
            TAG_U64 => visitor.visit_u64(self.take_uvarint()?),
            t => Err(WireError::BadTag(t)),
        }
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        match self.take_tag()? {
            TAG_CHAR => {
                let c = self.take_uvarint()?;
                let c32 = u32::try_from(c).map_err(|_| WireError::InvalidChar(u32::MAX))?;
                visitor.visit_char(char::from_u32(c32).ok_or(WireError::InvalidChar(c32))?)
            }
            t => Err(WireError::BadTag(t)),
        }
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        match self.take_tag()? {
            TAG_STR => visitor.visit_borrowed_str(self.take_str()?),
            t => Err(WireError::BadTag(t)),
        }
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        match self.take_tag()? {
            TAG_BYTES => {
                let n = self.take_len()?;
                visitor.visit_borrowed_bytes(self.take_bytes(n)?)
            }
            TAG_STR => visitor.visit_borrowed_str(self.take_str()?),
            TAG_SEQ => {
                let n = self.take_len()?;
                visitor.visit_seq(CountedSeq { de: self, left: n })
            }
            t => Err(WireError::BadTag(t)),
        }
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        match self.peek_tag()? {
            TAG_NULL => {
                self.pos += 1;
                visitor.visit_none()
            }
            TAG_SOME => {
                self.pos += 1;
                visitor.visit_some(self)
            }
            t => Err(WireError::BadTag(t)),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        match self.take_tag()? {
            TAG_NULL => visitor.visit_unit(),
            t => Err(WireError::BadTag(t)),
        }
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> WireResult<V::Value> {
        self.deserialize_unit(visitor)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> WireResult<V::Value> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        match self.take_tag()? {
            TAG_SEQ => {
                let n = self.take_len()?;
                visitor.visit_seq(CountedSeq { de: self, left: n })
            }
            t => Err(WireError::BadTag(t)),
        }
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, _len: usize, visitor: V) -> WireResult<V::Value> {
        self.deserialize_seq(visitor)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> WireResult<V::Value> {
        self.deserialize_seq(visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        match self.take_tag()? {
            TAG_MAP => {
                let n = self.take_len()?;
                visitor.visit_map(CountedMap { de: self, left: n })
            }
            t => Err(WireError::BadTag(t)),
        }
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> WireResult<V::Value> {
        // Structs are encoded as value sequences in declaration order.
        self.deserialize_seq(visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> WireResult<V::Value> {
        let tag = self.take_tag()?;
        match tag {
            TAG_UNIT_VARIANT | TAG_NEWTYPE_VARIANT | TAG_TUPLE_VARIANT | TAG_STRUCT_VARIANT => {
                let index = self.take_uvarint()?;
                let index = u32::try_from(index).map_err(|_| WireError::LengthOverflow(index))?;
                visitor.visit_enum(EnumAcc {
                    de: self,
                    tag,
                    index,
                })
            }
            t => Err(WireError::BadTag(t)),
        }
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        // Identifiers only appear for map-encoded structs, which this format
        // never produces; accept a string for forward compatibility.
        self.deserialize_str(visitor)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        self.skip_value()?;
        visitor.visit_unit()
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct CountedSeq<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    left: usize,
}

impl<'de> de::SeqAccess<'de> for CountedSeq<'_, 'de> {
    type Error = WireError;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> WireResult<Option<T::Value>> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct CountedMap<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    left: usize,
}

impl<'de> de::MapAccess<'de> for CountedMap<'_, 'de> {
    type Error = WireError;

    fn next_key_seed<K: DeserializeSeed<'de>>(&mut self, seed: K) -> WireResult<Option<K::Value>> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> WireResult<V::Value> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct EnumAcc<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    tag: u8,
    index: u32,
}

impl<'de> de::EnumAccess<'de> for EnumAcc<'_, 'de> {
    type Error = WireError;
    type Variant = Self;

    fn variant_seed<V: DeserializeSeed<'de>>(self, seed: V) -> WireResult<(V::Value, Self)> {
        let index = self.index;
        let v = seed.deserialize(index.into_deserializer())?;
        Ok((v, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumAcc<'_, 'de> {
    type Error = WireError;

    fn unit_variant(self) -> WireResult<()> {
        if self.tag == TAG_UNIT_VARIANT {
            Ok(())
        } else {
            Err(WireError::BadTag(self.tag))
        }
    }

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> WireResult<T::Value> {
        if self.tag == TAG_NEWTYPE_VARIANT {
            seed.deserialize(self.de)
        } else {
            Err(WireError::BadTag(self.tag))
        }
    }

    fn tuple_variant<V: Visitor<'de>>(self, _len: usize, visitor: V) -> WireResult<V::Value> {
        if self.tag == TAG_TUPLE_VARIANT {
            let n = self.de.take_len()?;
            visitor.visit_seq(CountedSeq {
                de: self.de,
                left: n,
            })
        } else {
            Err(WireError::BadTag(self.tag))
        }
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> WireResult<V::Value> {
        if self.tag == TAG_STRUCT_VARIANT {
            let n = self.de.take_len()?;
            visitor.visit_seq(CountedSeq {
                de: self.de,
                left: n,
            })
        } else {
            Err(WireError::BadTag(self.tag))
        }
    }
}

// ----- raw structural scanning -----------------------------------------------

/// Reads the header of a sequence (or struct/tuple — they share the `SEQ`
/// framing) at the start of `bytes`, returning `(element_count,
/// header_len)` without touching any element.
///
/// Together with [`skip_value`] this lets callers slice out the encoding of
/// individual fields — the lazy-decode path of agent records keeps the
/// rollback-log section as raw bytes this way.
///
/// # Errors
///
/// [`WireError::BadTag`] when the value is not a sequence, plus the usual
/// truncation errors.
pub fn read_seq_header(bytes: &[u8]) -> WireResult<(u64, usize)> {
    let tag = *bytes.first().ok_or(WireError::UnexpectedEof)?;
    if tag != TAG_SEQ {
        return Err(WireError::BadTag(tag));
    }
    let mut pos = 1usize;
    let n = get_uvarint(bytes, &mut pos)?;
    if n > (bytes.len() - pos) as u64 {
        // Every element takes at least one byte.
        return Err(WireError::LengthOverflow(n));
    }
    Ok((n, pos))
}

/// Returns the encoded length of the single value at the start of `bytes`,
/// walking its structure without building anything — no allocation, no
/// UTF-8 validation, no value construction. This is the cheapest possible
/// full validation of the framing: tags are checked, every declared length
/// is bounds-checked, and truncated input is an error.
///
/// Iterative (explicit work counter instead of recursion), so adversarially
/// nested input cannot overflow the stack.
///
/// # Errors
///
/// [`WireError::BadTag`] / truncation errors describing the first framing
/// violation.
pub fn skip_value(bytes: &[u8]) -> WireResult<usize> {
    let mut pos = 0usize;
    // Number of complete values still to skip.
    let mut pending: u64 = 1;
    while pending > 0 {
        pending -= 1;
        let tag = *bytes.get(pos).ok_or(WireError::UnexpectedEof)?;
        pos += 1;
        match tag {
            TAG_NULL | TAG_TRUE | TAG_FALSE => {}
            TAG_I64 => {
                get_ivarint(bytes, &mut pos)?;
            }
            TAG_U64 | TAG_CHAR | TAG_UNIT_VARIANT => {
                get_uvarint(bytes, &mut pos)?;
            }
            TAG_F32 => {
                if bytes.len() - pos < 4 {
                    return Err(WireError::UnexpectedEof);
                }
                pos += 4;
            }
            TAG_F64 => {
                if bytes.len() - pos < 8 {
                    return Err(WireError::UnexpectedEof);
                }
                pos += 8;
            }
            TAG_STR | TAG_BYTES => {
                let n = get_uvarint(bytes, &mut pos)?;
                if n > (bytes.len() - pos) as u64 {
                    return Err(WireError::LengthOverflow(n));
                }
                pos += n as usize;
            }
            TAG_SOME => pending += 1,
            TAG_NEWTYPE_VARIANT => {
                get_uvarint(bytes, &mut pos)?;
                pending += 1;
            }
            TAG_SEQ => {
                let n = get_uvarint(bytes, &mut pos)?;
                if n > (bytes.len() - pos) as u64 {
                    return Err(WireError::LengthOverflow(n));
                }
                pending += n;
            }
            TAG_MAP => {
                let n = get_uvarint(bytes, &mut pos)?;
                if n > (bytes.len() - pos) as u64 {
                    return Err(WireError::LengthOverflow(n));
                }
                // A key and a value per entry; entries need ≥ 2 bytes, so
                // the bound above keeps `pending` within 2 × input size.
                pending += 2 * n;
            }
            TAG_TUPLE_VARIANT | TAG_STRUCT_VARIANT => {
                get_uvarint(bytes, &mut pos)?;
                let n = get_uvarint(bytes, &mut pos)?;
                if n > (bytes.len() - pos) as u64 {
                    return Err(WireError::LengthOverflow(n));
                }
                pending += n;
            }
            other => return Err(WireError::BadTag(other)),
        }
    }
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ser::to_bytes;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Sample {
        Unit,
        New(u32),
        Tup(u8, i64),
        Struct { a: String, b: Option<bool> },
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Nested {
        name: String,
        tags: Vec<Sample>,
        data: std::collections::BTreeMap<String, u64>,
        blob: Vec<u8>,
    }

    fn roundtrip<T: Serialize + for<'de> Deserialize<'de> + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v).unwrap();
        let back: T = from_slice(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn enum_variants_roundtrip() {
        roundtrip(Sample::Unit);
        roundtrip(Sample::New(7));
        roundtrip(Sample::Tup(1, -9));
        roundtrip(Sample::Struct {
            a: "x".into(),
            b: Some(false),
        });
        roundtrip(Sample::Struct {
            a: String::new(),
            b: None,
        });
    }

    #[test]
    fn nested_struct_roundtrips() {
        let v = Nested {
            name: "agent-1".into(),
            tags: vec![Sample::Unit, Sample::New(2)],
            data: [("k".to_string(), 9u64)].into_iter().collect(),
            blob: vec![0, 255, 3],
        };
        roundtrip(v);
    }

    #[test]
    fn option_roundtrips() {
        roundtrip::<Option<u8>>(None);
        roundtrip(Some(3u8));
        roundtrip(Some(Some(-1i8)));
        roundtrip::<Option<Option<i8>>>(Some(None));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&1u8).unwrap();
        bytes.push(0);
        assert_eq!(from_slice::<u8>(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn prefix_decoding_reports_consumed() {
        let mut bytes = to_bytes(&"ab").unwrap();
        let n = bytes.len();
        bytes.extend(to_bytes(&7u8).unwrap());
        let (s, used): (String, usize) = from_slice_prefix(&bytes).unwrap();
        assert_eq!((s.as_str(), used), ("ab", n));
        let (v, _): (u8, usize) = from_slice_prefix(&bytes[used..]).unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn corrupt_length_detected() {
        // A sequence claiming 1000 elements in a 3-byte buffer.
        let bytes = [crate::ser::TAG_SEQ, 0xe8, 0x07];
        assert!(matches!(
            from_slice::<Vec<u8>>(&bytes),
            Err(WireError::LengthOverflow(1000))
        ));
    }

    #[test]
    fn wrong_tag_reports_bad_tag() {
        let bytes = to_bytes(&true).unwrap();
        assert!(matches!(
            from_slice::<String>(&bytes),
            Err(WireError::BadTag(_))
        ));
    }

    #[test]
    fn ignored_any_skips_complex_values() {
        #[derive(Debug, PartialEq, Serialize)]
        struct Wide {
            a: u8,
            b: Vec<String>,
            c: u8,
        }
        // Decode as a tuple that ignores the middle field.
        #[derive(Debug, PartialEq, Deserialize)]
        struct Narrow(u8, serde::de::IgnoredAny, u8);
        let bytes = to_bytes(&Wide {
            a: 1,
            b: vec!["x".into(), "y".into()],
            c: 2,
        })
        .unwrap();
        let narrow: Narrow = from_slice(&bytes).unwrap();
        assert_eq!((narrow.0, narrow.2), (1, 2));
    }

    #[test]
    fn borrowed_str_zero_copy() {
        let bytes = to_bytes(&"borrowed").unwrap();
        let s: &str = from_slice(&bytes).unwrap();
        assert_eq!(s, "borrowed");
    }

    #[test]
    fn char_roundtrip_and_invalid() {
        roundtrip('µ');
        roundtrip('\u{10FFFF}');
        // 0xD800 is a surrogate, invalid as char.
        let bytes = vec![crate::ser::TAG_CHAR, 0x80, 0xb0, 0x03];
        assert!(matches!(
            from_slice::<char>(&bytes),
            Err(WireError::InvalidChar(0xd800))
        ));
    }
}
