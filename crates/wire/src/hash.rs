//! Stable content hashing for encoded wire payloads.
//!
//! The itinerary interning protocol (and any future content-addressed
//! payload) needs a hash that is a *wire-format commitment*: the same
//! encoded bytes must map to the same 64-bit value on every node, every
//! platform, and every release, because the hash itself is shipped in
//! messages and compared across processes. That rules out `std`'s
//! `DefaultHasher` (unspecified, randomly seeded) and anything
//! pointer-width dependent.
//!
//! [`content_hash64`] is FNV-1a with the canonical 64-bit offset basis and
//! prime. It is *not* cryptographic — collision resistance is the
//! birthday bound of 64 bits — which is the right trade-off here: the hash
//! keys a cache of immutable payloads produced by this codec, not an
//! authentication boundary, and a miss or collision degrades to shipping
//! the inline form.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Stable 64-bit FNV-1a hash of an encoded payload.
///
/// The value is a pure function of the bytes: independent of platform,
/// process, and release, so it can be shipped on the wire as a
/// content address for the encoding it was computed over.
///
/// # Examples
///
/// ```
/// use mar_wire::content_hash64;
/// assert_eq!(content_hash64(b""), 0xcbf29ce484222325);
/// assert_ne!(content_hash64(b"a"), content_hash64(b"b"));
/// ```
#[must_use]
pub fn content_hash64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published FNV-1a test vectors: the hash is a wire commitment, so
    /// these values may never change.
    #[test]
    fn matches_reference_vectors() {
        assert_eq!(content_hash64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(content_hash64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn prefix_and_extension_change_the_hash() {
        let base = content_hash64(b"itinerary");
        assert_ne!(base, content_hash64(b"itinerary\0"));
        assert_ne!(base, content_hash64(b"\0itinerary"));
        assert_ne!(base, content_hash64(b"itinerarY"));
    }
}
