//! Length-delimited framing over byte streams.
//!
//! A frame is an unsigned LEB128 varint length (the same encoding every
//! other varint in this codec uses — [`crate::varint`]) followed by that
//! many payload bytes. The reader is written for real sockets: it consumes
//! the length prefix one byte at a time (so a frame split across any number
//! of partial reads is reassembled correctly), bounds-checks the decoded
//! length **before** allocating, and distinguishes a clean end of stream
//! (EOF exactly at a frame boundary) from a connection dying mid-frame.

use std::io::{self, Read, Write};

/// Hard ceiling a reader will accept for a single frame's payload, in
/// bytes. Writers check it too, so a peer that observes this limit can
/// never produce a frame the other side rejects. 16 MiB comfortably holds
/// the largest agent-record messages while keeping a malicious or corrupt
/// length prefix from triggering a giant allocation.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Writes one length-prefixed frame. Does **not** flush — callers batch
/// frames and flush once per send burst.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidInput`] if `payload` exceeds
/// [`MAX_FRAME_BYTES`]; otherwise whatever the underlying writer reports.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_BYTES", payload.len()),
        ));
    }
    let mut header = Vec::with_capacity(10);
    crate::varint::put_uvarint(&mut header, payload.len() as u64);
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame, or `None` on a clean end of stream
/// (EOF before the first length byte).
///
/// # Errors
///
/// * [`io::ErrorKind::UnexpectedEof`] — the stream died mid-frame (inside
///   the length prefix or the payload).
/// * [`io::ErrorKind::InvalidData`] — the length prefix overflows 64 bits
///   or exceeds [`MAX_FRAME_BYTES`]; the connection is unrecoverable
///   because the payload boundary is unknown.
/// * Anything else the underlying reader reports.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let len = match read_len(r)? {
        Some(len) => len,
        None => return Ok(None),
    };
    if len > MAX_FRAME_BYTES as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_BYTES"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Reads the LEB128 length prefix byte by byte: partial reads can split a
/// frame anywhere, so nothing beyond the current byte is consumed. `None`
/// means EOF arrived before the first byte — a clean close.
fn read_len(r: &mut impl Read) -> io::Result<Option<u64>> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && first => return Ok(None),
            Err(e) => return Err(e),
        }
        first = false;
        let byte = byte[0];
        if shift == 63 && byte > 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame length varint overflows u64",
            ));
        }
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(Some(result));
        }
        shift += 7;
        if shift > 63 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame length varint overflows u64",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that hands out its buffer in single-byte reads, modelling
    /// the worst possible packetisation of a TCP stream.
    struct OneByteReads<'a> {
        data: &'a [u8],
        pos: usize,
    }

    impl Read for OneByteReads<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frames_roundtrip() {
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![7], vec![0xAB; 300], vec![1, 2, 3]];
        let mut stream = Vec::new();
        for p in &payloads {
            write_frame(&mut stream, p).unwrap();
        }
        let mut r = &stream[..];
        for p in &payloads {
            assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&p[..]));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn roundtrip_survives_single_byte_reads() {
        let mut stream = Vec::new();
        write_frame(&mut stream, &[9u8; 200]).unwrap();
        write_frame(&mut stream, b"tail").unwrap();
        let mut r = OneByteReads {
            data: &stream,
            pos: 0,
        };
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![9u8; 200]);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"tail");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn eof_mid_payload_is_an_error() {
        let mut stream = Vec::new();
        write_frame(&mut stream, &[1, 2, 3, 4]).unwrap();
        stream.truncate(stream.len() - 2);
        let mut r = &stream[..];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn eof_mid_length_prefix_is_an_error() {
        // A continuation byte with nothing after it.
        let stream = [0x80u8];
        let mut r = &stream[..];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut stream = Vec::new();
        crate::varint::put_uvarint(&mut stream, (MAX_FRAME_BYTES as u64) + 1);
        let mut r = &stream[..];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn varint_overflow_is_rejected() {
        let stream = [0xffu8; 11];
        let mut r = &stream[..];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_writes_are_refused() {
        // Assert on the error without allocating 16 MiB: a zero-length
        // slice can't trip it, so fake the length with a custom payload.
        let big = vec![0u8; MAX_FRAME_BYTES + 1];
        let mut out = Vec::new();
        let err = write_frame(&mut out, &big).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(out.is_empty());
    }
}
