//! A byte buffer with compact wire framing.
//!
//! Serde serializes `Vec<u8>` element-wise — `TAG_SEQ` plus one tagged
//! varint *per byte* — which roughly triples the wire size and costs a
//! serializer dispatch per byte on both ends. For opaque payloads that
//! embed already-encoded values (agent records inside 2PC work items,
//! report copies, stable outbox entries), that turns every O(1) hand-off
//! into an O(payload) re-transcode.
//!
//! [`Bytes`] is a drop-in owned buffer that serializes with the format's
//! native `TAG_BYTES` framing: a length prefix and one memcpy.

use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::ops::{Deref, DerefMut};

/// An owned byte buffer serialized as a single `TAG_BYTES` value (length
/// prefix + raw bytes) instead of serde's element-wise `Vec<u8>` sequence.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Wraps a buffer.
    pub fn new(v: Vec<u8>) -> Self {
        Bytes(v)
    }

    /// Unwraps into the inner buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.0
    }

    /// The buffer length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for an empty buffer.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} bytes]", self.0.len())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.0
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for Bytes {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Serialize for Bytes {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(&self.0)
    }
}

impl<'de> Deserialize<'de> for Bytes {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> serde::de::Visitor<'de> for V {
            type Value = Bytes;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a byte buffer")
            }

            fn visit_bytes<E: serde::de::Error>(self, v: &[u8]) -> Result<Bytes, E> {
                Ok(Bytes(v.to_vec()))
            }

            fn visit_byte_buf<E: serde::de::Error>(self, v: Vec<u8>) -> Result<Bytes, E> {
                Ok(Bytes(v))
            }
        }
        de.deserialize_byte_buf(V)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_slice, to_bytes};

    #[test]
    fn roundtrips_compactly() {
        let b = Bytes::from(vec![0u8, 1, 2, 250, 255]);
        let wire = to_bytes(&b).unwrap();
        // TAG_BYTES + varint(5) + 5 raw bytes.
        assert_eq!(wire.len(), 2 + 5);
        let back: Bytes = from_slice(&wire).unwrap();
        assert_eq!(back, b);
        // The element-wise Vec<u8> encoding is strictly larger.
        assert!(to_bytes(&b.to_vec()).unwrap().len() > wire.len());
    }

    #[test]
    fn deref_and_conversions() {
        let mut b = Bytes::from(&[1u8, 2][..]);
        assert_eq!(&b[..], &[1, 2]);
        b[0] = 9;
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        let v: Vec<u8> = b.clone().into();
        assert_eq!(v, vec![9, 2]);
        assert_eq!(Bytes::new(v.clone()).into_vec(), v);
        assert_eq!(format!("{b}"), "[2 bytes]");
    }
}
