//! A dynamic, self-describing value type.
//!
//! [`Value`] is the lingua franca of the platform: agent private data
//! (strongly and weakly reversible objects), compensating-operation
//! parameters, and resource operation arguments are all `Value`s. Using a
//! dynamic type sidesteps the problem of serializing arbitrary Rust state
//! across an agent migration while staying faithful to the paper's model,
//! where the private data space is a bag of serializable objects.
//!
//! Maps are ordered (`BTreeMap`) so that encodings — and therefore the byte
//! counts reported by the experiments — are deterministic.

use std::collections::BTreeMap;
use std::fmt;

use serde::de::{MapAccess, SeqAccess, Visitor};
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// A dynamic value: the unit of agent data and operation parameters.
///
/// # Examples
///
/// ```
/// use mar_wire::Value;
///
/// let v = Value::map([("amount", Value::from(250i64)), ("cur", Value::from("USD"))]);
/// assert_eq!(v.get("amount").and_then(Value::as_i64), Some(250));
/// ```
#[derive(Debug, Clone, PartialEq, PartialOrd, Default)]
pub enum Value {
    /// The absence of a value.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed 64-bit integer.
    I64(i64),
    /// An unsigned 64-bit integer.
    U64(u64),
    /// A 64-bit float.
    F64(f64),
    /// A UTF-8 string.
    Str(String),
    /// An opaque byte string.
    Bytes(Vec<u8>),
    /// An ordered list of values.
    List(Vec<Value>),
    /// A string-keyed, ordered map of values.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Builds a [`Value::Map`] from `(key, value)` pairs.
    ///
    /// ```
    /// use mar_wire::Value;
    /// let m = Value::map([("k", Value::from(1i64))]);
    /// assert!(m.is_map());
    /// ```
    pub fn map<K, I>(pairs: I) -> Value
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, Value)>,
    {
        Value::Map(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a [`Value::List`] from an iterator of values.
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::List(items.into_iter().collect())
    }

    /// Returns `true` if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns `true` if this is a [`Value::Map`].
    pub fn is_map(&self) -> bool {
        matches!(self, Value::Map(_))
    }

    /// Returns `true` if this is a [`Value::List`].
    pub fn is_list(&self) -> bool {
        matches!(self, Value::List(_))
    }

    /// Returns the boolean if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as an `i64` if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Returns the value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Returns the value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the string slice if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the byte slice if this is a [`Value::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the list slice if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the map if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns a mutable map if this is a [`Value::Map`].
    pub fn as_map_mut(&mut self) -> Option<&mut BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns a mutable list if this is a [`Value::List`].
    pub fn as_list_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Map lookup; returns `None` for non-maps or missing keys.
    ///
    /// ```
    /// use mar_wire::Value;
    /// let m = Value::map([("a", Value::from(true))]);
    /// assert_eq!(m.get("a").and_then(Value::as_bool), Some(true));
    /// assert!(m.get("b").is_none());
    /// ```
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// Mutable map lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.as_map_mut().and_then(|m| m.get_mut(key))
    }

    /// Inserts into a map value, turning `Null` into an empty map first.
    ///
    /// Returns the previous value for the key, if any.
    ///
    /// # Panics
    ///
    /// Panics if `self` is neither `Null` nor a `Map`.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        if self.is_null() {
            *self = Value::Map(BTreeMap::new());
        }
        match self {
            Value::Map(m) => m.insert(key.into(), value),
            other => panic!("Value::insert on non-map value {other:?}"),
        }
    }

    /// Structural equality that treats numerically equal integers as equal
    /// across `I64`/`U64` and compares floats by bit pattern (so `NaN == NaN`
    /// for state-comparison purposes).
    pub fn semantically_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
            (Value::I64(a), Value::U64(b)) | (Value::U64(b), Value::I64(a)) => {
                u64::try_from(*a).map(|a| a == *b).unwrap_or(false)
            }
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.semantically_eq(y))
            }
            (Value::Map(a), Value::Map(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|((ka, va), (kb, vb))| ka == kb && va.semantically_eq(vb))
            }
            (a, b) => a == b,
        }
    }

    /// A deep size estimate in bytes of the in-memory representation,
    /// used by log-size accounting when an exact encoding is not needed.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::I64(_) | Value::U64(_) | Value::F64(_) => 9,
            Value::Str(s) => 5 + s.len(),
            Value::Bytes(b) => 5 + b.len(),
            Value::List(l) => 5 + l.iter().map(Value::approx_size).sum::<usize>(),
            Value::Map(m) => {
                5 + m
                    .iter()
                    .map(|(k, v)| 5 + k.len() + v.approx_size())
                    .sum::<usize>()
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "b[{} bytes]", b.len()),
            Value::List(l) => {
                f.write_str("[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Map(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{k:?}: {v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

macro_rules! impl_from {
    ($($ty:ty => $variant:ident ($conv:expr)),* $(,)?) => {
        $(impl From<$ty> for Value {
            fn from(v: $ty) -> Value { Value::$variant($conv(v)) }
        })*
    };
}

impl_from! {
    bool => Bool(|v| v),
    i8 => I64(|v| v as i64),
    i16 => I64(|v| v as i64),
    i32 => I64(|v| v as i64),
    i64 => I64(|v| v),
    u8 => U64(|v| v as u64),
    u16 => U64(|v| v as u64),
    u32 => U64(|v| v as u64),
    u64 => U64(|v| v),
    f32 => F64(|v| v as f64),
    f64 => F64(|v| v),
    String => Str(|v| v),
    Vec<u8> => Bytes(|v| v),
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

impl<T: Into<Value>> FromIterator<T> for Value {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Value {
        Value::List(iter.into_iter().map(Into::into).collect())
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::Null => serializer.serialize_unit(),
            Value::Bool(b) => serializer.serialize_bool(*b),
            Value::I64(v) => serializer.serialize_i64(*v),
            Value::U64(v) => serializer.serialize_u64(*v),
            Value::F64(v) => serializer.serialize_f64(*v),
            Value::Str(s) => serializer.serialize_str(s),
            Value::Bytes(b) => serializer.serialize_bytes(b),
            Value::List(l) => l.serialize(serializer),
            Value::Map(m) => m.serialize(serializer),
        }
    }
}

struct ValueVisitor;

impl<'de> Visitor<'de> for ValueVisitor {
    type Value = Value;

    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("any wire value")
    }

    fn visit_bool<E>(self, v: bool) -> Result<Value, E> {
        Ok(Value::Bool(v))
    }
    fn visit_i64<E>(self, v: i64) -> Result<Value, E> {
        Ok(Value::I64(v))
    }
    fn visit_u64<E>(self, v: u64) -> Result<Value, E> {
        Ok(Value::U64(v))
    }
    fn visit_f64<E>(self, v: f64) -> Result<Value, E> {
        Ok(Value::F64(v))
    }
    fn visit_str<E>(self, v: &str) -> Result<Value, E> {
        Ok(Value::Str(v.to_owned()))
    }
    fn visit_string<E>(self, v: String) -> Result<Value, E> {
        Ok(Value::Str(v))
    }
    fn visit_bytes<E>(self, v: &[u8]) -> Result<Value, E> {
        Ok(Value::Bytes(v.to_vec()))
    }
    fn visit_byte_buf<E>(self, v: Vec<u8>) -> Result<Value, E> {
        Ok(Value::Bytes(v))
    }
    fn visit_unit<E>(self) -> Result<Value, E> {
        Ok(Value::Null)
    }
    fn visit_none<E>(self) -> Result<Value, E> {
        Ok(Value::Null)
    }

    fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Value, D::Error> {
        d.deserialize_any(ValueVisitor)
    }

    fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Value, A::Error> {
        let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(1024));
        while let Some(v) = seq.next_element()? {
            out.push(v);
        }
        Ok(Value::List(out))
    }

    fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Value, A::Error> {
        let mut out = BTreeMap::new();
        while let Some((k, v)) = map.next_entry::<String, Value>()? {
            out.insert(k, v);
        }
        Ok(Value::Map(out))
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Value, D::Error> {
        deserializer.deserialize_any(ValueVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_builder_and_get() {
        let v = Value::map([("a", Value::from(1i64)), ("b", Value::from("x"))]);
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert!(v.get("c").is_none());
    }

    #[test]
    fn insert_into_null_promotes_to_map() {
        let mut v = Value::Null;
        v.insert("k", Value::from(2u64));
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(2));
    }

    #[test]
    #[should_panic(expected = "non-map")]
    fn insert_into_list_panics() {
        let mut v = Value::list([Value::Null]);
        v.insert("k", Value::Null);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::I64(-1).as_u64(), None);
        assert_eq!(Value::U64(7).as_i64(), Some(7));
        assert_eq!(Value::U64(u64::MAX).as_i64(), None);
        assert_eq!(Value::I64(3).as_f64(), Some(3.0));
    }

    #[test]
    fn semantic_equality_across_int_variants() {
        assert!(Value::I64(5).semantically_eq(&Value::U64(5)));
        assert!(!Value::I64(-5).semantically_eq(&Value::U64(5)));
        assert!(Value::F64(f64::NAN).semantically_eq(&Value::F64(f64::NAN)));
        let a = Value::list([Value::I64(1), Value::U64(2)]);
        let b = Value::list([Value::U64(1), Value::I64(2)]);
        assert!(a.semantically_eq(&b));
    }

    #[test]
    fn display_is_compact() {
        let v = Value::map([("x", Value::list([Value::from(1i64), Value::Null]))]);
        assert_eq!(v.to_string(), "{\"x\": [1, null]}");
    }

    #[test]
    fn approx_size_monotone_in_content() {
        let small = Value::from("ab");
        let big = Value::from("abcdef");
        assert!(big.approx_size() > small.approx_size());
    }

    #[test]
    fn from_iterator_collects_list() {
        let v: Value = (0i64..3).collect();
        assert_eq!(v.as_list().map(|l| l.len()), Some(3));
    }
}
