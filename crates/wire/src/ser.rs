//! Serde serializer producing the compact binary wire format.
//!
//! The format is self-describing: every value starts with a one-byte type
//! tag. Integers use LEB128 varints (zigzag for signed), sequences and maps
//! are length-prefixed, structs are encoded as field-value sequences (field
//! names are omitted; order is the declaration order), and enum variants are
//! encoded by index.

use serde::ser::{self, Serialize};

use crate::error::{WireError, WireResult};
use crate::varint::{put_ivarint, put_uvarint};

pub(crate) const TAG_NULL: u8 = 0x00;
pub(crate) const TAG_TRUE: u8 = 0x01;
pub(crate) const TAG_FALSE: u8 = 0x02;
pub(crate) const TAG_I64: u8 = 0x03;
pub(crate) const TAG_U64: u8 = 0x04;
pub(crate) const TAG_F32: u8 = 0x05;
pub(crate) const TAG_F64: u8 = 0x06;
pub(crate) const TAG_CHAR: u8 = 0x07;
pub(crate) const TAG_STR: u8 = 0x08;
pub(crate) const TAG_BYTES: u8 = 0x09;
pub(crate) const TAG_SOME: u8 = 0x0a;
pub(crate) const TAG_SEQ: u8 = 0x0b;
pub(crate) const TAG_MAP: u8 = 0x0c;
pub(crate) const TAG_UNIT_VARIANT: u8 = 0x0d;
pub(crate) const TAG_NEWTYPE_VARIANT: u8 = 0x0e;
pub(crate) const TAG_TUPLE_VARIANT: u8 = 0x0f;
pub(crate) const TAG_STRUCT_VARIANT: u8 = 0x10;

/// Encodes `value` into a fresh byte vector.
///
/// # Errors
///
/// Returns [`WireError::Unsupported`] for types outside the wire data model
/// (`i128`/`u128`) and propagates custom serialization errors.
///
/// # Examples
///
/// ```
/// let bytes = mar_wire::to_bytes(&(1u8, "hi")).unwrap();
/// let back: (u8, String) = mar_wire::from_slice(&bytes).unwrap();
/// assert_eq!(back, (1, "hi".to_owned()));
/// ```
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> WireResult<Vec<u8>> {
    let mut ser = BinSerializer::new();
    value.serialize(&mut ser)?;
    Ok(ser.into_bytes())
}

/// Returns the number of bytes [`to_bytes`] would produce for `value`.
///
/// # Errors
///
/// Same conditions as [`to_bytes`].
pub fn encoded_size<T: Serialize + ?Sized>(value: &T) -> WireResult<usize> {
    // A counting writer would avoid the allocation, but encoding sizes are
    // only computed at savepoint/log boundaries where the cost is immaterial.
    Ok(to_bytes(value)?.len())
}

/// Streaming binary serializer. Usually used through [`to_bytes`].
#[derive(Debug, Default)]
pub struct BinSerializer {
    out: Vec<u8>,
}

impl BinSerializer {
    /// Creates an empty serializer.
    pub fn new() -> Self {
        BinSerializer { out: Vec::new() }
    }

    /// Creates an empty serializer with `cap` bytes of reserved output.
    pub fn with_capacity(cap: usize) -> Self {
        BinSerializer {
            out: Vec::with_capacity(cap),
        }
    }

    /// Consumes the serializer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    // ----- splice API -------------------------------------------------------
    //
    // Incremental encoders (`mar-core`'s resident-record splice path) build
    // a value out of already-encoded fragments plus freshly serialized
    // parts. These methods expose exactly the framing the serde impls above
    // emit, so a hand-assembled value is byte-identical to a `to_bytes` of
    // the equivalent in-memory value.

    /// Writes the header of a struct/tuple with `fields` fields — identical
    /// to what serializing a struct of that arity emits. The caller must
    /// follow with exactly `fields` values ([`BinSerializer::value`] or
    /// [`BinSerializer::raw_value_bytes`]).
    pub fn begin_struct(&mut self, fields: usize) {
        self.begin_seq(fields);
    }

    /// Writes the header of a sequence with `len` elements (structs, tuples
    /// and sequences share the `TAG_SEQ` framing).
    pub fn begin_seq(&mut self, len: usize) {
        self.out.push(TAG_SEQ);
        put_uvarint(&mut self.out, len as u64);
    }

    /// Appends already-encoded wire bytes verbatim: the encoding of zero or
    /// more complete values, e.g. a retained run of sequence elements. The
    /// caller is responsible for the bytes being valid at this position.
    pub fn raw_value_bytes(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    /// Serializes one value into the output at the current position.
    ///
    /// # Errors
    ///
    /// Same conditions as [`to_bytes`].
    pub fn value<T: Serialize + ?Sized>(&mut self, v: &T) -> WireResult<()> {
        v.serialize(self)
    }

    fn put_str(&mut self, s: &str) {
        self.out.push(TAG_STR);
        put_uvarint(&mut self.out, s.len() as u64);
        self.out.extend_from_slice(s.as_bytes());
    }
}

impl<'a> ser::Serializer for &'a mut BinSerializer {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = SeqSer<'a>;
    type SerializeTuple = SeqSer<'a>;
    type SerializeTupleStruct = SeqSer<'a>;
    type SerializeTupleVariant = SeqSer<'a>;
    type SerializeMap = MapSer<'a>;
    type SerializeStruct = SeqSer<'a>;
    type SerializeStructVariant = SeqSer<'a>;

    fn serialize_bool(self, v: bool) -> WireResult<()> {
        self.out.push(if v { TAG_TRUE } else { TAG_FALSE });
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> WireResult<()> {
        self.serialize_i64(v.into())
    }
    fn serialize_i16(self, v: i16) -> WireResult<()> {
        self.serialize_i64(v.into())
    }
    fn serialize_i32(self, v: i32) -> WireResult<()> {
        self.serialize_i64(v.into())
    }

    fn serialize_i64(self, v: i64) -> WireResult<()> {
        self.out.push(TAG_I64);
        put_ivarint(&mut self.out, v);
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> WireResult<()> {
        self.serialize_u64(v.into())
    }
    fn serialize_u16(self, v: u16) -> WireResult<()> {
        self.serialize_u64(v.into())
    }
    fn serialize_u32(self, v: u32) -> WireResult<()> {
        self.serialize_u64(v.into())
    }

    fn serialize_u64(self, v: u64) -> WireResult<()> {
        self.out.push(TAG_U64);
        put_uvarint(&mut self.out, v);
        Ok(())
    }

    fn serialize_i128(self, _: i128) -> WireResult<()> {
        Err(WireError::Unsupported("i128"))
    }
    fn serialize_u128(self, _: u128) -> WireResult<()> {
        Err(WireError::Unsupported("u128"))
    }

    fn serialize_f32(self, v: f32) -> WireResult<()> {
        self.out.push(TAG_F32);
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> WireResult<()> {
        self.out.push(TAG_F64);
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> WireResult<()> {
        self.out.push(TAG_CHAR);
        put_uvarint(&mut self.out, v as u64);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> WireResult<()> {
        self.put_str(v);
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> WireResult<()> {
        self.out.push(TAG_BYTES);
        put_uvarint(&mut self.out, v.len() as u64);
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> WireResult<()> {
        self.out.push(TAG_NULL);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> WireResult<()> {
        self.out.push(TAG_SOME);
        value.serialize(self)
    }

    fn serialize_unit(self) -> WireResult<()> {
        self.out.push(TAG_NULL);
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> WireResult<()> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> WireResult<()> {
        self.out.push(TAG_UNIT_VARIANT);
        put_uvarint(&mut self.out, variant_index.into());
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> WireResult<()> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> WireResult<()> {
        self.out.push(TAG_NEWTYPE_VARIANT);
        put_uvarint(&mut self.out, variant_index.into());
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> WireResult<SeqSer<'a>> {
        match len {
            Some(n) => {
                self.out.push(TAG_SEQ);
                put_uvarint(&mut self.out, n as u64);
                Ok(SeqSer::Direct(self))
            }
            None => Ok(SeqSer::Buffered {
                parent: self,
                buf: BinSerializer::new(),
                count: 0,
            }),
        }
    }

    fn serialize_tuple(self, len: usize) -> WireResult<SeqSer<'a>> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(self, _name: &'static str, len: usize) -> WireResult<SeqSer<'a>> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        len: usize,
    ) -> WireResult<SeqSer<'a>> {
        self.out.push(TAG_TUPLE_VARIANT);
        put_uvarint(&mut self.out, variant_index.into());
        put_uvarint(&mut self.out, len as u64);
        Ok(SeqSer::Direct(self))
    }

    fn serialize_map(self, len: Option<usize>) -> WireResult<MapSer<'a>> {
        match len {
            Some(n) => {
                self.out.push(TAG_MAP);
                put_uvarint(&mut self.out, n as u64);
                Ok(MapSer::Direct(self))
            }
            None => Ok(MapSer::Buffered {
                parent: self,
                buf: BinSerializer::new(),
                count: 0,
            }),
        }
    }

    fn serialize_struct(self, _name: &'static str, len: usize) -> WireResult<SeqSer<'a>> {
        self.serialize_seq(Some(len))
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        len: usize,
    ) -> WireResult<SeqSer<'a>> {
        self.out.push(TAG_STRUCT_VARIANT);
        put_uvarint(&mut self.out, variant_index.into());
        put_uvarint(&mut self.out, len as u64);
        Ok(SeqSer::Direct(self))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Sequence/tuple/struct serializer. Buffers when the length is unknown up
/// front so the length prefix can be written first.
#[derive(Debug)]
pub enum SeqSer<'a> {
    /// Length was known; elements stream straight into the output.
    Direct(&'a mut BinSerializer),
    /// Length unknown; elements are buffered and flushed on `end`.
    Buffered {
        /// The serializer the buffered elements are flushed to.
        parent: &'a mut BinSerializer,
        /// Holds the encoded elements.
        buf: BinSerializer,
        /// Number of elements buffered so far.
        count: u64,
    },
}

impl SeqSer<'_> {
    fn element<T: Serialize + ?Sized>(&mut self, value: &T) -> WireResult<()> {
        match self {
            SeqSer::Direct(ser) => value.serialize(&mut **ser),
            SeqSer::Buffered { buf, count, .. } => {
                value.serialize(&mut *buf)?;
                *count += 1;
                Ok(())
            }
        }
    }

    fn finish(self) -> WireResult<()> {
        if let SeqSer::Buffered { parent, buf, count } = self {
            parent.out.push(TAG_SEQ);
            put_uvarint(&mut parent.out, count);
            parent.out.extend_from_slice(&buf.out);
        }
        Ok(())
    }
}

impl ser::SerializeSeq for SeqSer<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> WireResult<()> {
        self.element(value)
    }

    fn end(self) -> WireResult<()> {
        self.finish()
    }
}

impl ser::SerializeTuple for SeqSer<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> WireResult<()> {
        self.element(value)
    }

    fn end(self) -> WireResult<()> {
        self.finish()
    }
}

impl ser::SerializeTupleStruct for SeqSer<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> WireResult<()> {
        self.element(value)
    }

    fn end(self) -> WireResult<()> {
        self.finish()
    }
}

impl ser::SerializeTupleVariant for SeqSer<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> WireResult<()> {
        self.element(value)
    }

    fn end(self) -> WireResult<()> {
        self.finish()
    }
}

impl ser::SerializeStruct for SeqSer<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> WireResult<()> {
        self.element(value)
    }

    fn end(self) -> WireResult<()> {
        self.finish()
    }
}

impl ser::SerializeStructVariant for SeqSer<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> WireResult<()> {
        self.element(value)
    }

    fn end(self) -> WireResult<()> {
        self.finish()
    }
}

/// Map serializer; see [`SeqSer`] for the buffering rationale.
#[derive(Debug)]
pub enum MapSer<'a> {
    /// Length was known up front.
    Direct(&'a mut BinSerializer),
    /// Length unknown; entries buffered until `end`.
    Buffered {
        /// The serializer the buffered entries are flushed to.
        parent: &'a mut BinSerializer,
        /// Holds the encoded entries.
        buf: BinSerializer,
        /// Number of entries buffered so far.
        count: u64,
    },
}

impl ser::SerializeMap for MapSer<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> WireResult<()> {
        match self {
            MapSer::Direct(ser) => key.serialize(&mut **ser),
            MapSer::Buffered { buf, count, .. } => {
                key.serialize(&mut *buf)?;
                *count += 1;
                Ok(())
            }
        }
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> WireResult<()> {
        match self {
            MapSer::Direct(ser) => value.serialize(&mut **ser),
            MapSer::Buffered { buf, .. } => value.serialize(&mut *buf),
        }
    }

    fn end(self) -> WireResult<()> {
        if let MapSer::Buffered { parent, buf, count } = self {
            parent.out.push(TAG_MAP);
            put_uvarint(&mut parent.out, count);
            parent.out.extend_from_slice(&buf.out);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_have_expected_tags() {
        assert_eq!(to_bytes(&true).unwrap(), vec![TAG_TRUE]);
        assert_eq!(to_bytes(&false).unwrap(), vec![TAG_FALSE]);
        assert_eq!(to_bytes(&()).unwrap(), vec![TAG_NULL]);
        assert_eq!(to_bytes(&0u64).unwrap(), vec![TAG_U64, 0]);
        assert_eq!(to_bytes(&-1i32).unwrap(), vec![TAG_I64, 1]);
    }

    #[test]
    fn string_layout() {
        assert_eq!(to_bytes("ab").unwrap(), vec![TAG_STR, 2, b'a', b'b']);
    }

    #[test]
    fn unknown_length_iterator_buffers() {
        struct Stream;
        impl Serialize for Stream {
            fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                use serde::ser::SerializeSeq;
                let mut seq = s.serialize_seq(None)?;
                for i in 0..3u64 {
                    seq.serialize_element(&i)?;
                }
                seq.end()
            }
        }
        let direct = to_bytes(&vec![0u64, 1, 2]).unwrap();
        let streamed = to_bytes(&Stream).unwrap();
        assert_eq!(direct, streamed);
    }

    #[test]
    fn i128_is_unsupported() {
        assert_eq!(to_bytes(&1i128), Err(WireError::Unsupported("i128")));
    }

    #[test]
    fn encoded_size_matches_bytes() {
        let v = ("hello", vec![1u8, 2, 3], Some(42u32));
        assert_eq!(encoded_size(&v).unwrap(), to_bytes(&v).unwrap().len());
    }
}
