//! # mar-wire
//!
//! Dynamic values and a compact, self-describing binary serde codec.
//!
//! Mobile agents migrate by value: their private data space, their rollback
//! log, and the parameters of every compensating operation have to be turned
//! into bytes, shipped, and revived on another node. This crate provides the
//! two pieces that make that possible:
//!
//! * [`Value`] — a dynamic value type used for agent data and operation
//!   parameters (the paper's "private data space" objects), and
//! * [`to_bytes`] / [`from_slice`] — a compact binary serde format used for
//!   every message and stable-storage record in the system, so that the
//!   transfer sizes reported by the experiments are real encoded sizes.
//!
//! # Examples
//!
//! ```
//! use mar_wire::{to_bytes, from_slice, Value};
//!
//! let wallet = Value::map([
//!     ("currency", Value::from("USD")),
//!     ("coins", Value::list([Value::from(5u64), Value::from(10u64)])),
//! ]);
//! let bytes = to_bytes(&wallet).unwrap();
//! let back: Value = from_slice(&bytes).unwrap();
//! assert!(back.semantically_eq(&wallet));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bytes;
mod de;
mod error;
pub mod frame;
mod hash;
mod ser;
mod value;
pub mod varint;

pub use bytes::Bytes;
pub use de::{from_slice, from_slice_prefix, read_seq_header, skip_value, BinDeserializer};
pub use error::{WireError, WireResult};
pub use hash::content_hash64;
pub use ser::{encoded_size, to_bytes, BinSerializer};
pub use value::Value;

/// Converts any serializable value into a [`Value`] by transcoding.
///
/// Structs become lists of field values (the wire format omits field names),
/// maps become [`Value::Map`]s.
///
/// # Errors
///
/// Propagates encoding errors, e.g. [`WireError::Unsupported`] for `i128`.
///
/// # Examples
///
/// ```
/// use mar_wire::{to_value, Value};
/// let v = to_value(&(1u8, "x")).unwrap();
/// assert_eq!(v.as_list().map(|l| l.len()), Some(2));
/// ```
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> WireResult<Value> {
    from_slice(&to_bytes(value)?)
}

/// Converts a [`Value`] back into a concrete type by transcoding.
///
/// # Errors
///
/// Fails if the value's shape does not match `T`.
pub fn from_value<T: serde::de::DeserializeOwned>(value: &Value) -> WireResult<T> {
    from_slice(&to_bytes(value)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn value_strategy() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::I64),
            any::<u64>().prop_map(Value::U64),
            any::<f64>().prop_map(Value::F64),
            ".{0,24}".prop_map(Value::Str),
            proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
        ];
        leaf.prop_recursive(4, 64, 8, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::List),
                proptest::collection::btree_map(".{0,8}", inner, 0..6).prop_map(Value::Map),
            ]
        })
    }

    proptest! {
        #[test]
        fn value_roundtrips(v in value_strategy()) {
            let bytes = to_bytes(&v).unwrap();
            let back: Value = from_slice(&bytes).unwrap();
            prop_assert!(back.semantically_eq(&v), "{v} != {back}");
        }

        #[test]
        fn skip_value_consumes_exactly_one_encoding(v in value_strategy()) {
            let mut bytes = to_bytes(&v).unwrap();
            let own_len = bytes.len();
            bytes.extend(to_bytes(&0u8).unwrap());
            prop_assert_eq!(skip_value(&bytes).unwrap(), own_len);
        }

        #[test]
        fn skip_value_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = skip_value(&bytes);
        }

        #[test]
        fn spliced_seq_equals_direct_encoding(vs in proptest::collection::vec(value_strategy(), 0..5)) {
            // Assemble Vec<Value> out of individually encoded elements via
            // the splice API; must be byte-identical to the direct encoding.
            let direct = to_bytes(&vs).unwrap();
            let mut ser = BinSerializer::new();
            ser.begin_seq(vs.len());
            for v in &vs {
                ser.raw_value_bytes(&to_bytes(v).unwrap());
            }
            prop_assert_eq!(ser.into_bytes(), direct);
        }

        #[test]
        fn encoded_size_is_exact(v in value_strategy()) {
            prop_assert_eq!(encoded_size(&v).unwrap(), to_bytes(&v).unwrap().len());
        }

        #[test]
        fn decoding_random_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = from_slice::<Value>(&bytes);
        }
    }

    #[test]
    fn seq_header_and_skip_slice_out_struct_fields() {
        #[derive(serde::Serialize)]
        struct S {
            a: u32,
            b: Vec<String>,
            c: bool,
        }
        let s = S {
            a: 9,
            b: vec!["x".into(), "yy".into()],
            c: true,
        };
        let bytes = to_bytes(&s).unwrap();
        let (fields, mut off) = read_seq_header(&bytes).unwrap();
        assert_eq!(fields, 3);
        // Field a.
        let a_len = skip_value(&bytes[off..]).unwrap();
        assert_eq!(to_bytes(&9u32).unwrap(), bytes[off..off + a_len]);
        off += a_len;
        // Field b, sliced without decoding.
        let b_len = skip_value(&bytes[off..]).unwrap();
        assert_eq!(
            to_bytes(&vec!["x".to_owned(), "yy".to_owned()]).unwrap(),
            bytes[off..off + b_len]
        );
        off += b_len;
        // Field c ends the value exactly.
        off += skip_value(&bytes[off..]).unwrap();
        assert_eq!(off, bytes.len());
    }

    #[test]
    fn read_seq_header_rejects_non_seq_and_overflow() {
        assert!(matches!(
            read_seq_header(&to_bytes(&1u8).unwrap()),
            Err(WireError::BadTag(_))
        ));
        assert!(matches!(
            read_seq_header(&[]),
            Err(WireError::UnexpectedEof)
        ));
        // A 1000-element sequence in 3 bytes.
        assert!(matches!(
            read_seq_header(&[0x0b, 0xe8, 0x07]),
            Err(WireError::LengthOverflow(1000))
        ));
    }

    #[test]
    fn skip_value_rejects_truncation() {
        let bytes = to_bytes(&"hello").unwrap();
        assert!(skip_value(&bytes[..bytes.len() - 1]).is_err());
        assert!(matches!(skip_value(&[]), Err(WireError::UnexpectedEof)));
    }

    #[test]
    fn to_value_roundtrip() {
        let m: BTreeMap<String, u32> = [("a".to_string(), 1u32)].into_iter().collect();
        let v = to_value(&m).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        let back: BTreeMap<String, u32> = from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
