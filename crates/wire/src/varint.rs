//! LEB128 variable-length integers with zigzag encoding for signed values.

use crate::error::{WireError, WireResult};

/// Appends `v` to `out` as an unsigned LEB128 varint (1–10 bytes).
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` to `out` zigzag-encoded.
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, zigzag(v));
}

/// Maps a signed value to an unsigned one with small absolute values staying
/// small: 0, -1, 1, -2 → 0, 1, 2, 3.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Reads an unsigned varint from `buf` starting at `*pos`, advancing `*pos`.
///
/// # Errors
///
/// Returns [`WireError::UnexpectedEof`] if the buffer ends mid-varint and
/// [`WireError::VarintOverflow`] if more than 64 bits are encoded.
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> WireResult<u64> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(WireError::UnexpectedEof)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(WireError::VarintOverflow);
        }
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
        if shift > 63 {
            return Err(WireError::VarintOverflow);
        }
    }
}

/// Reads a zigzag-encoded signed varint.
///
/// # Errors
///
/// Same conditions as [`get_uvarint`].
pub fn get_ivarint(buf: &[u8], pos: &mut usize) -> WireResult<i64> {
    Ok(unzigzag(get_uvarint(buf, pos)?))
}

/// Number of bytes [`put_uvarint`] would emit for `v`.
pub fn uvarint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

/// Number of bytes [`put_ivarint`] would emit for `v`.
pub fn ivarint_len(v: i64) -> usize {
    uvarint_len(zigzag(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_are_one_byte() {
        for v in 0..128u64 {
            let mut out = Vec::new();
            put_uvarint(&mut out, v);
            assert_eq!(out.len(), 1);
        }
    }

    #[test]
    fn zigzag_pairs() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
        assert_eq!(unzigzag(u64::MAX), i64::MIN);
    }

    #[test]
    fn eof_mid_varint() {
        let buf = [0x80u8, 0x80];
        let mut pos = 0;
        assert_eq!(get_uvarint(&buf, &mut pos), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn overflow_detected() {
        // 11 continuation bytes is always an overflow.
        let buf = [0xffu8; 11];
        let mut pos = 0;
        assert_eq!(get_uvarint(&buf, &mut pos), Err(WireError::VarintOverflow));
    }

    #[test]
    fn max_u64_roundtrip() {
        let mut out = Vec::new();
        put_uvarint(&mut out, u64::MAX);
        assert_eq!(out.len(), 10);
        let mut pos = 0;
        assert_eq!(get_uvarint(&out, &mut pos).unwrap(), u64::MAX);
        assert_eq!(pos, out.len());
    }

    proptest! {
        #[test]
        fn roundtrip_unsigned(v: u64) {
            let mut out = Vec::new();
            put_uvarint(&mut out, v);
            prop_assert_eq!(out.len(), uvarint_len(v));
            let mut pos = 0;
            prop_assert_eq!(get_uvarint(&out, &mut pos).unwrap(), v);
            prop_assert_eq!(pos, out.len());
        }

        #[test]
        fn roundtrip_signed(v: i64) {
            let mut out = Vec::new();
            put_ivarint(&mut out, v);
            prop_assert_eq!(out.len(), ivarint_len(v));
            let mut pos = 0;
            prop_assert_eq!(get_ivarint(&out, &mut pos).unwrap(), v);
        }

        #[test]
        fn zigzag_roundtrip(v: i64) {
            prop_assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
