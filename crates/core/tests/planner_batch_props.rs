//! Property tests for the batching planner layer (`plan_batch`):
//! batched and unbatched rollback of the *same* record must be
//! observationally equivalent, with the single-round planner
//! (`compensation_round`) as the executable specification.
//!
//! For random well-formed agent histories (built through the real savepoint
//! bookkeeping, both logging modes) and both rollback modes:
//!
//! * the fused steps, flattened across batches, equal the unbatched
//!   `RoundPlan`s field for field — same steps, same compensating
//!   operations in the same (newest-first) order, same local/remote split;
//! * the final `RestorePlan`s are identical, and the two records end in
//!   the identical stable state (byte-identical serialization);
//! * the batch partition matches an *independent* oracle: maximal
//!   same-destination runs computed directly from the original log's EOS
//!   sequence, so fusion is maximal and never crosses a destination change,
//!   a mixed step (optimized mode), or the target savepoint.

use proptest::prelude::*;

use mar_core::comp::{CompOp, EntryKind};
use mar_core::log::LogEntry;
use mar_core::{
    compensation_round, plan_batch, plan_single, AfterRound, AgentId, AgentRecord, DataSpace,
    LoggingMode, RollbackMode, RoundPlan, SavepointId,
};
use mar_itinerary::samples;
use mar_wire::Value;

/// One event of a generated agent history.
#[derive(Debug, Clone)]
enum HistOp {
    /// Commit a step on `node` with `nops` compensating operations; if
    /// `sro_write` is set, the step also wrote an SRO key first.
    Step {
        node: u32,
        nops: u8,
        sro_write: Option<u8>,
    },
    /// Enter a (uniquely named) sub-itinerary: automatic savepoint.
    EnterSub,
    /// Constitute an explicit savepoint.
    ExplicitSp,
}

fn ops_strategy() -> impl Strategy<Value = Vec<HistOp>> {
    proptest::collection::vec(
        prop_oneof![
            // Few nodes on purpose: consecutive same-node steps (fusable
            // runs) must be common, not a corner case.
            6 => (1u32..3, 0u8..4, any::<bool>(), 0u8..6).prop_map(|(node, nops, write, k)| {
                HistOp::Step { node, nops, sro_write: write.then_some(k) }
            }),
            2 => Just(HistOp::EnterSub),
            2 => Just(HistOp::ExplicitSp),
        ],
        1..24,
    )
}

/// Replays a history into a fresh record through the real bookkeeping.
fn build_record(mode: LoggingMode, rollback: RollbackMode, ops: &[HistOp]) -> AgentRecord {
    let mut data = DataSpace::new();
    data.set_sro("blob", Value::Bytes(vec![0xA5; 64]));
    let mut rec = AgentRecord::new(AgentId(7), "prop", 0, data, samples::fig6(), mode, rollback);
    let mut sub_seq = 0u64;
    let mut mutation = 0i64;
    for op in ops {
        let cursor = rec.cursor.clone();
        match op {
            HistOp::Step {
                node,
                nops,
                sro_write,
            } => {
                if let Some(k) = sro_write {
                    mutation += 1;
                    rec.data
                        .set_sro(format!("k{}", k % 3), Value::from(mutation));
                }
                let seq = rec.step_seq;
                let ops = (0..*nops).map(|i| {
                    let kind = match i % 3 {
                        0 => EntryKind::Resource,
                        1 => EntryKind::Agent,
                        _ => EntryKind::Mixed,
                    };
                    (kind, CompOp::new("undo", Value::from(i64::from(i))))
                });
                rec.log
                    .append_step(*node, seq, &format!("m{seq}"), ops, vec![]);
                rec.step_seq += 1;
                rec.table.on_step_committed();
            }
            HistOp::EnterSub => {
                sub_seq += 1;
                rec.table.on_enter_sub(
                    &format!("S{sub_seq}"),
                    &mut rec.data,
                    &cursor,
                    &mut rec.log,
                    mode,
                );
            }
            HistOp::ExplicitSp => {
                rec.table
                    .explicit_savepoint(&mut rec.data, &cursor, &mut rec.log, mode);
            }
        }
    }
    rec.log.validate().expect("generated log is well-formed");
    rec
}

/// Independent fusion oracle: the `(node, mixed)` projection of the EOS
/// entries above `target`, newest first, partitioned into maximal runs by
/// the documented rule — computed from the log's plain entry iterator,
/// without the planner or the cursor.
fn expected_runs(rec: &AgentRecord, target: SavepointId) -> Vec<Vec<(u32, bool)>> {
    let mut units: Vec<(u32, bool)> = Vec::new();
    let mut above = false;
    for entry in rec.log.iter() {
        match entry {
            LogEntry::Savepoint(sp) if sp.id == target => above = true,
            LogEntry::EndOfStep(eos) if above => units.push((eos.node, eos.has_mixed)),
            _ => {}
        }
    }
    units.reverse(); // newest-first, the rollback direction
    let mut runs: Vec<Vec<(u32, bool)>> = Vec::new();
    for unit in units {
        let extends = runs.last().is_some_and(|run| {
            let (node, mixed) = run[0];
            match rec.rollback_mode {
                RollbackMode::Basic => node == unit.0,
                RollbackMode::Optimized => !mixed && !unit.1 && node == unit.0,
            }
        });
        if extends {
            runs.last_mut().expect("just checked").push(unit);
        } else {
            runs.push(vec![unit]);
        }
    }
    runs
}

/// Drives the unbatched planner to completion.
fn run_unbatched(rec: &mut AgentRecord, target: SavepointId) -> Vec<RoundPlan> {
    let mut rounds = Vec::new();
    loop {
        let round = compensation_round(rec, target).expect("unbatched round plans");
        let done = matches!(round.after, AfterRound::Reached(_));
        rounds.push(round);
        if done {
            return rounds;
        }
        assert!(rounds.len() < 200, "unbatched rollback did not terminate");
    }
}

fn check(mode: LoggingMode, rollback: RollbackMode, ops: &[HistOp]) {
    let rec = build_record(mode, rollback, ops);
    let targets: Vec<SavepointId> = rec.log.savepoint_ids().collect();
    for target in targets {
        let runs = expected_runs(&rec, target);

        let mut unbatched = rec.clone();
        let rounds = run_unbatched(&mut unbatched, target);

        let mut batched = rec.clone();
        let mut batches = Vec::new();
        loop {
            let batch = plan_batch(&mut batched, target).expect("batch plans");
            let done = matches!(batch.after, AfterRound::Reached(_));
            batches.push(batch);
            if done {
                break;
            }
            assert!(batches.len() < 200, "batched rollback did not terminate");
        }

        // Partition: exactly the oracle's maximal runs (modulo the op-less
        // savepoints-only round both planners emit when nothing is left).
        let step_counts: Vec<usize> = batches
            .iter()
            .map(mar_core::BatchPlan::rounds_fused)
            .filter(|n| *n > 0)
            .collect();
        let expected_counts: Vec<usize> = runs.iter().map(Vec::len).collect();
        assert_eq!(
            step_counts, expected_counts,
            "batch partition diverged from the fusion oracle (target {target})"
        );
        assert!(batches.len() <= rounds.len(), "batching never adds rounds");

        // Step-for-step equivalence against the single-round spec: same
        // steps, same ops, same order, same local/remote split.
        let fused: Vec<&mar_core::FusedStep> =
            batches.iter().flat_map(|b| b.steps.iter()).collect();
        let real_rounds: Vec<&RoundPlan> = rounds.iter().filter(|r| !r.method.is_empty()).collect();
        assert_eq!(fused.len(), real_rounds.len());
        for (step, round) in fused.iter().zip(&real_rounds) {
            assert!(
                step.matches_round(round),
                "fused step {step:?} != round {round:?}"
            );
        }

        // Identical final restore.
        let (AfterRound::Reached(a), AfterRound::Reached(b)) = (
            &rounds.last().expect("at least one round").after,
            &batches.last().expect("at least one batch").after,
        ) else {
            panic!("both planners must reach the target");
        };
        assert_eq!(a, b, "restore plans diverged (target {target})");

        // Identical final stable state: popped-down log, shadow, data —
        // the whole record, byte for byte.
        assert_eq!(
            unbatched.to_bytes().unwrap(),
            batched.to_bytes().unwrap(),
            "final records diverged (target {target})"
        );

        // `plan_single` is the unbatched planner in the batch interface.
        let mut single = rec.clone();
        let mut single_steps = 0usize;
        loop {
            let batch = plan_single(&mut single, target).expect("single plans");
            assert!(batch.rounds_fused() <= 1);
            single_steps += batch.rounds_fused();
            if matches!(batch.after, AfterRound::Reached(_)) {
                break;
            }
        }
        assert_eq!(single_steps, real_rounds.len());
        assert_eq!(single.to_bytes().unwrap(), batched.to_bytes().unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_equals_unbatched_state_basic(ops in ops_strategy()) {
        check(LoggingMode::State, RollbackMode::Basic, &ops);
    }

    #[test]
    fn batched_equals_unbatched_state_optimized(ops in ops_strategy()) {
        check(LoggingMode::State, RollbackMode::Optimized, &ops);
    }

    #[test]
    fn batched_equals_unbatched_transition_basic(ops in ops_strategy()) {
        check(LoggingMode::Transition, RollbackMode::Basic, &ops);
    }

    #[test]
    fn batched_equals_unbatched_transition_optimized(ops in ops_strategy()) {
        check(LoggingMode::Transition, RollbackMode::Optimized, &ops);
    }
}
