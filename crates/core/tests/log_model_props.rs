//! Model-based property test for the segment-indexed rollback log.
//!
//! [`NaiveLog`] (the original flat-vector implementation, kept as the
//! executable specification) and the production [`RollbackLog`] are driven
//! with identical random operation sequences — pushes of every entry and
//! payload kind, pops, savepoint-walk pops, mid-log savepoint removals,
//! compaction passes, and clears. After **every** operation the two must be
//! observationally
//! equivalent: same queries, same byte accounting, same shadow effects, and
//! byte-identical serialization (the migration-compatibility guarantee).

use proptest::prelude::*;

use mar_core::comp::{CompOp, EntryKind};
use mar_core::log::reference::NaiveLog;
use mar_core::log::{
    BosEntry, EosEntry, LogEntry, LogStats, OpEntry, RollbackLog, SpEntry, SroPayload,
};
use mar_core::{DataSpace, ObjectMap, SavepointId, SavepointTable, SroDelta};
use mar_itinerary::{samples, Cursor};
use mar_wire::Value;

/// Abstract operations; indices are resolved against the live log state at
/// execution time so generated sequences stay meaningful.
#[derive(Debug, Clone)]
enum Op {
    /// Push a BOS / n OEs / EOS frame.
    PushStep { node: u32, nops: u8 },
    /// Push a savepoint entry with the given payload shape.
    PushSavepoint(PayloadKind),
    /// Pop the newest entry.
    Pop,
    /// Pop the newest entry only if it is a savepoint (planner walk).
    PopTopSavepoint,
    /// Remove the (pick mod live)-th live savepoint, or a known-absent id
    /// when none are live.
    RemoveSavepoint { pick: u8 },
    /// Compact both logs (with or without a shadow for the delta pass) and
    /// require identical reports.
    Compact { with_shadow: bool },
    /// Discard the whole log.
    Clear,
}

/// Payload shape for generated savepoint entries.
#[derive(Debug, Clone)]
enum PayloadKind {
    /// Full image with `keys` entries.
    Full { keys: u8 },
    /// Backward delta touching `keys` entries.
    Delta { keys: u8 },
    /// Marker referencing the (pick mod live)-th live savepoint
    /// (degrades to a small full image when no savepoint is live).
    Ref { pick: u8 },
}

fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
    let payload = prop_oneof![
        (0u8..4).prop_map(|keys| PayloadKind::Full { keys }),
        (0u8..4).prop_map(|keys| PayloadKind::Delta { keys }),
        (0u8..8).prop_map(|pick| PayloadKind::Ref { pick }),
    ];
    proptest::collection::vec(
        prop_oneof![
            4 => (1u32..4, 0u8..3).prop_map(|(node, nops)| Op::PushStep { node, nops }),
            4 => payload.prop_map(Op::PushSavepoint),
            2 => Just(Op::Pop),
            2 => Just(Op::PopTopSavepoint),
            3 => (0u8..8).prop_map(|pick| Op::RemoveSavepoint { pick }),
            2 => any::<bool>().prop_map(|with_shadow| Op::Compact { with_shadow }),
            1 => Just(Op::Clear),
        ],
        1..40,
    )
}

/// Drives both implementations and checks equivalence after every step.
struct Harness {
    log: RollbackLog,
    naive: NaiveLog,
    log_data: DataSpace,
    naive_data: DataSpace,
    cursor: Cursor,
    next_sp: u64,
    step_seq: u64,
    mutation: i64,
}

impl Harness {
    fn new() -> Harness {
        let main = samples::fig6();
        let cursor = Cursor::new(&main);
        let mut log_data = DataSpace::new();
        log_data.set_sro("v", Value::from(0i64));
        log_data.enable_shadow();
        let naive_data = log_data.clone();
        Harness {
            log: RollbackLog::new(),
            naive: NaiveLog::new(),
            log_data,
            naive_data,
            cursor,
            next_sp: 0,
            step_seq: 0,
            mutation: 0,
        }
    }

    fn small_map(&mut self, keys: u8) -> ObjectMap {
        (0..keys)
            .map(|k| {
                self.mutation += 1;
                (format!("k{k}"), Value::from(self.mutation))
            })
            .collect()
    }

    fn live_savepoints(&self) -> Vec<SavepointId> {
        self.log.savepoint_ids().collect()
    }

    fn push_both(&mut self, entry: LogEntry) {
        self.log.push(entry.clone());
        self.naive.push(entry);
    }

    fn sp_entry(&mut self, sro: SroPayload) -> LogEntry {
        let id = SavepointId(self.next_sp);
        self.next_sp += 1;
        LogEntry::Savepoint(SpEntry {
            id,
            sub_id: None,
            explicit: true,
            cursor: self.cursor.clone(),
            table: SavepointTable::new(),
            sro,
        })
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::PushStep { node, nops } => {
                let seq = self.step_seq;
                self.step_seq += 1;
                self.push_both(LogEntry::BeginOfStep(BosEntry {
                    node: *node,
                    step_seq: seq,
                    method: format!("m{seq}"),
                }));
                let mut has_mixed = false;
                for i in 0..*nops {
                    let kind = match i % 3 {
                        0 => EntryKind::Resource,
                        1 => EntryKind::Agent,
                        _ => EntryKind::Mixed,
                    };
                    has_mixed |= kind == EntryKind::Mixed;
                    self.push_both(LogEntry::Operation(OpEntry {
                        kind,
                        op: CompOp::new("undo", Value::from(i as i64)),
                        step_seq: seq,
                    }));
                }
                self.push_both(LogEntry::EndOfStep(EosEntry {
                    node: *node,
                    step_seq: seq,
                    method: format!("m{seq}"),
                    has_mixed,
                    alt_nodes: vec![],
                }));
            }
            Op::PushSavepoint(payload) => {
                let live = self.live_savepoints();
                let sro = match payload {
                    PayloadKind::Full { keys } => SroPayload::Full(self.small_map(*keys)),
                    PayloadKind::Delta { keys } => {
                        let changed = self.small_map(*keys);
                        SroPayload::Delta(SroDelta {
                            changed,
                            removed: Default::default(),
                        })
                    }
                    PayloadKind::Ref { pick } => {
                        if live.is_empty() {
                            SroPayload::Full(self.small_map(1))
                        } else {
                            SroPayload::Ref(live[*pick as usize % live.len()])
                        }
                    }
                };
                let entry = self.sp_entry(sro);
                self.push_both(entry);
            }
            Op::Pop => {
                let a = self.log.pop();
                let b = self.naive.pop();
                assert_eq!(a, b, "pop must return the same entry");
            }
            Op::PopTopSavepoint => {
                let expected = match self.naive.last() {
                    Some(LogEntry::Savepoint(sp)) => Some(sp.clone()),
                    _ => None,
                };
                assert_eq!(
                    self.log.top_savepoint().cloned(),
                    expected,
                    "top_savepoint must mirror the model's last entry"
                );
                let popped = self.log.pop_top_savepoint();
                assert_eq!(popped, expected);
                if popped.is_some() {
                    self.naive.pop();
                }
            }
            Op::RemoveSavepoint { pick } => {
                let live = self.live_savepoints();
                let id = if live.is_empty() {
                    SavepointId(self.next_sp + 999)
                } else {
                    live[*pick as usize % live.len()]
                };
                let a = self
                    .log
                    .remove_savepoint(id, &mut self.log_data)
                    .expect("segment removal");
                let b = self
                    .naive
                    .remove_savepoint(id, &mut self.naive_data)
                    .expect("model removal");
                assert_eq!(a, b, "removal outcome for {id}");
            }
            Op::Compact { with_shadow } => {
                // Both implementations must take identical actions — the
                // reports agree, the entry sequences stay equal (checked by
                // check_equivalent after every op), and compaction never
                // grows the log.
                let shadow = with_shadow
                    .then(|| self.log_data.shadow().cloned())
                    .flatten();
                let a = self.log.compact(shadow.as_ref());
                let b = self.naive.compact(shadow.as_ref());
                assert_eq!(a, b, "compaction reports diverged");
                // With the small ids this harness generates, no rewrite can
                // grow a payload.
                assert!(a.bytes_after <= a.bytes_before);
            }
            Op::Clear => {
                self.log.clear();
                self.naive.clear();
            }
        }
    }

    /// Expected stats, recounted from the model's entries with the shared
    /// bucketing rule.
    fn model_stats(&self) -> LogStats {
        let s = LogStats::of_entries(self.naive.iter());
        // The model's size counter uses the same saturating arithmetic as
        // the production log, so totals must agree with the recount too.
        assert_eq!(s.total_bytes, self.naive.size_bytes());
        s
    }

    fn check_equivalent(&self) {
        assert_eq!(self.log.len(), self.naive.len());
        assert_eq!(self.log.is_empty(), self.naive.is_empty());
        assert_eq!(self.log.size_bytes(), self.naive.size_bytes());
        assert_eq!(self.log.last(), self.naive.last());
        assert_eq!(
            self.log.last_data_savepoint(),
            self.naive.last_data_savepoint()
        );
        assert_eq!(self.log.last_eos(), self.naive.last_eos());
        assert!(
            self.log.iter().eq(self.naive.iter()),
            "entry sequences diverged"
        );
        // Savepoint index agrees with the model's scans, probed from both
        // directions: everything the model finds, the index finds, and the
        // index holds nothing extra.
        let mut model_live = 0;
        for e in self.naive.iter() {
            if let LogEntry::Savepoint(sp) = e {
                model_live += 1;
                assert_eq!(
                    self.log.find_savepoint(sp.id),
                    self.naive.find_savepoint(sp.id)
                );
                assert!(self.log.contains_savepoint(sp.id));
            }
        }
        assert_eq!(self.log.savepoint_ids().count(), model_live);
        assert_eq!(self.log.segment_count(), model_live);
        assert!(!self.log.contains_savepoint(SavepointId(self.next_sp + 999)));
        // Incremental statistics equal a brute-force recount.
        assert_eq!(self.log.stats(), self.model_stats());
        // Shadow effects of delta removals are identical.
        assert_eq!(self.log_data, self.naive_data);
        // Migration compatibility: serialized bytes are identical, and the
        // production log round-trips through them.
        let seg_bytes = mar_wire::to_bytes(&self.log).expect("segment log encodes");
        let model_bytes = mar_wire::to_bytes(&self.naive).expect("model encodes");
        assert_eq!(seg_bytes, model_bytes, "wire formats diverged");
        let back: RollbackLog = mar_wire::from_slice(&seg_bytes).expect("decodes");
        assert_eq!(back, self.log);
    }
}

fn run(ops: Vec<Op>) {
    let mut h = Harness::new();
    for op in &ops {
        h.apply(op);
        h.check_equivalent();
    }
    // A decoded copy must keep behaving like the original: pop everything
    // off both and watch the accounting drain to zero.
    let bytes = mar_wire::to_bytes(&h.log).unwrap();
    let mut back: RollbackLog = mar_wire::from_slice(&bytes).unwrap();
    assert_eq!(back.stats(), h.log.stats());
    while let Some(e) = back.pop() {
        assert_eq!(Some(e), h.naive.pop());
    }
    assert_eq!(back.size_bytes(), 0);
    assert!(back.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn segment_log_is_observationally_equivalent_to_model(ops in op_strategy()) {
        run(ops);
    }
}
