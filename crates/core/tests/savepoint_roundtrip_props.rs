//! Property tests over randomized execution histories: for any nesting of
//! sub-itineraries, any interleaving of steps, and any legal rollback
//! target, the planner must restore exactly the SRO state that was live
//! when the target savepoint was constituted — under both logging modes
//! and both rollback mechanisms.

use proptest::prelude::*;

use mar_core::comp::{CompOp, EntryKind};
use mar_core::log::{BosEntry, EosEntry, LogEntry, LoggingMode, OpEntry};
use mar_core::{
    compensation_round, start_rollback, AfterRound, AgentId, AgentRecord, DataSpace, ObjectMap,
    RollbackMode, RollbackScope, SavepointId, StartPlan,
};
use mar_itinerary::samples;
use mar_wire::Value;

/// One event of a synthetic execution history.
#[derive(Debug, Clone)]
enum Ev {
    /// Enter a sub-itinerary (auto savepoint).
    Enter,
    /// Leave the innermost sub (savepoint GC; never the last frame).
    Leave,
    /// Commit a step on the given node, mutating SRO key `k{idx}`.
    Step { node: u32, sro_key: u8 },
    /// Request an explicit savepoint.
    Explicit,
}

fn ev_strategy() -> impl Strategy<Value = Vec<Ev>> {
    proptest::collection::vec(
        prop_oneof![
            2 => Just(Ev::Enter),
            1 => Just(Ev::Leave),
            5 => (1u32..4, 0u8..6).prop_map(|(node, sro_key)| Ev::Step { node, sro_key }),
            1 => Just(Ev::Explicit),
        ],
        1..24,
    )
}

struct Sim {
    rec: AgentRecord,
    /// Ground truth: SRO state captured at every savepoint.
    truth: Vec<(SavepointId, ObjectMap)>,
    sub_seq: u32,
    mutation: i64,
}

impl Sim {
    fn new(logging: LoggingMode, mode: RollbackMode) -> Sim {
        let mut data = DataSpace::new();
        for k in 0..6u8 {
            data.set_sro(format!("k{k}"), Value::from(0i64));
        }
        let rec = AgentRecord::new(
            AgentId(1),
            "prop",
            0,
            data,
            samples::fig6(), // placeholder tree; the planner never reads it
            logging,
            mode,
        );
        Sim {
            rec,
            truth: Vec::new(),
            sub_seq: 0,
            mutation: 1,
        }
    }

    fn apply(&mut self, ev: &Ev) {
        match ev {
            Ev::Enter => {
                self.sub_seq += 1;
                let cursor = self.rec.cursor.clone();
                let mode = self.rec.logging_mode;
                let id = self.rec.table.on_enter_sub(
                    &format!("sub{}", self.sub_seq),
                    &mut self.rec.data,
                    &cursor,
                    &mut self.rec.log,
                    mode,
                );
                self.truth.push((id, self.rec.data.sro_image()));
            }
            Ev::Leave => {
                // Keep at least one frame so a rollback target always exists.
                if self.rec.table.stack().len() > 1 {
                    let frame = self.rec.table.stack().last().unwrap().clone();
                    self.rec
                        .table
                        .on_leave_sub(&frame.sub_id, false, &mut self.rec.data, &mut self.rec.log)
                        .expect("leave innermost");
                    // Its savepoints are no longer legal targets.
                    self.truth
                        .retain(|(id, _)| *id != frame.auto && !frame.explicit.contains(id));
                }
            }
            Ev::Step { node, sro_key } => {
                if self.rec.table.stack().is_empty() {
                    return; // steps only happen inside sub-itineraries
                }
                let seq = self.rec.step_seq;
                self.mutation += 1;
                self.rec
                    .data
                    .set_sro(format!("k{sro_key}"), Value::from(self.mutation));
                self.rec.log.push(LogEntry::BeginOfStep(BosEntry {
                    node: *node,
                    step_seq: seq,
                    method: format!("m{seq}"),
                }));
                self.rec.log.push(LogEntry::Operation(OpEntry {
                    kind: EntryKind::Agent,
                    op: CompOp::new(
                        "wro.add_i64",
                        Value::map([("key", Value::from("c")), ("delta", Value::from(-1i64))]),
                    ),
                    step_seq: seq,
                }));
                self.rec.log.push(LogEntry::EndOfStep(EosEntry {
                    node: *node,
                    step_seq: seq,
                    method: format!("m{seq}"),
                    has_mixed: false,
                    alt_nodes: vec![],
                }));
                self.rec.step_seq += 1;
                self.rec.table.on_step_committed();
            }
            Ev::Explicit => {
                if self.rec.table.stack().is_empty() {
                    return;
                }
                let cursor = self.rec.cursor.clone();
                let mode = self.rec.logging_mode;
                let id = self.rec.table.explicit_savepoint(
                    &mut self.rec.data,
                    &cursor,
                    &mut self.rec.log,
                    mode,
                );
                self.truth.push((id, self.rec.data.sro_image()));
            }
        }
    }

    /// Rolls a clone back to `target` and returns the restored SRO image.
    fn rollback(&self, target: SavepointId) -> ObjectMap {
        let mut rec = self.rec.clone();
        match start_rollback(&rec, target).expect("start") {
            StartPlan::AlreadyAtTarget(plan) => {
                rec.apply_restore(*plan);
                return rec.data.sro_image();
            }
            StartPlan::Go(_) => {}
        }
        for _ in 0..200 {
            let round = compensation_round(&mut rec, target).expect("round");
            if let AfterRound::Reached(plan) = round.after {
                rec.apply_restore(*plan);
                return rec.data.sro_image();
            }
        }
        panic!("rollback did not terminate");
    }
}

fn check(events: Vec<Ev>, logging: LoggingMode, mode: RollbackMode) {
    let mut sim = Sim::new(logging, mode);
    for ev in &events {
        sim.apply(ev);
        sim.rec
            .log
            .validate()
            .expect("log grammar holds at all times");
    }
    // Every still-targetable savepoint must restore its exact SRO image.
    for (id, expected) in &sim.truth {
        // Only savepoints of *active* subs are legal targets.
        if sim
            .rec
            .table
            .resolve(RollbackScope::ToSavepoint(*id))
            .is_err()
        {
            continue;
        }
        let restored = sim.rollback(*id);
        assert_eq!(
            &restored, expected,
            "savepoint {id} under {logging:?}/{mode:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn state_logging_basic(events in ev_strategy()) {
        check(events, LoggingMode::State, RollbackMode::Basic);
    }

    #[test]
    fn state_logging_optimized(events in ev_strategy()) {
        check(events, LoggingMode::State, RollbackMode::Optimized);
    }

    #[test]
    fn transition_logging_basic(events in ev_strategy()) {
        check(events, LoggingMode::Transition, RollbackMode::Basic);
    }

    #[test]
    fn transition_logging_optimized(events in ev_strategy()) {
        check(events, LoggingMode::Transition, RollbackMode::Optimized);
    }
}
