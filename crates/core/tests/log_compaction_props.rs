//! Property tests for rollback-log compaction (`RollbackLog::compact`).
//!
//! Random but *well-formed* agent histories are built through the real
//! bookkeeping (`SavepointTable` + `RollbackLog::append_step`) under both
//! logging modes, then compacted at the end — like the platform does before
//! a migration. The compacted record must be **observationally equivalent**
//! to the uncompacted one:
//!
//! * identical savepoint set, with only payloads rewritten;
//! * identical rollback: for every live savepoint, the full planner run
//!   (`compensation_round` until `Reached`) produces identical `RoundPlan`s
//!   and an identical final `RestorePlan` — same compensating operations,
//!   same destinations, same restored SRO state;
//! * wire compatible: the compacted log serializes to a flat layout the
//!   unchanged readers (the segment log *and* the flat `NaiveLog`, the
//!   pre-refactor reader) still decode, and it never grew;
//! * idempotent: compacting twice changes nothing.

use proptest::prelude::*;

use mar_core::comp::{CompOp, EntryKind};
use mar_core::log::reference::NaiveLog;
use mar_core::log::LogStats;
use mar_core::{
    compensation_round, AfterRound, AgentId, AgentRecord, DataSpace, LoggingMode, RollbackLog,
    RollbackMode,
};
use mar_itinerary::samples;
use mar_wire::Value;

/// One event of a generated agent history.
#[derive(Debug, Clone)]
enum HistOp {
    /// Commit a step on `node` with `nops` compensating operations; if
    /// `sro_write` is set, the step also wrote an SRO key first (index mod
    /// 3 picks the key, the value is a fresh mutation counter).
    Step {
        node: u32,
        nops: u8,
        sro_write: Option<u8>,
    },
    /// Enter a (uniquely named) sub-itinerary: automatic savepoint.
    EnterSub,
    /// Leave the innermost sub-itinerary (savepoint GC), if any.
    LeaveSub,
    /// Constitute an explicit savepoint.
    ExplicitSp,
}

fn ops_strategy() -> impl Strategy<Value = Vec<HistOp>> {
    proptest::collection::vec(
        prop_oneof![
            5 => (1u32..4, 0u8..3, any::<bool>(), 0u8..6).prop_map(|(node, nops, write, k)| {
                HistOp::Step { node, nops, sro_write: write.then_some(k) }
            }),
            3 => Just(HistOp::EnterSub),
            2 => Just(HistOp::LeaveSub),
            3 => Just(HistOp::ExplicitSp),
        ],
        1..28,
    )
}

/// Replays a history into a fresh record, driving the real savepoint
/// bookkeeping so markers, images, and deltas arise exactly as they do in
/// the platform.
fn build_record(mode: LoggingMode, ops: &[HistOp]) -> AgentRecord {
    let mut data = DataSpace::new();
    // A chunky SRO object makes image redundancy (and its removal) visible.
    data.set_sro("blob", Value::Bytes(vec![0xA5; 96]));
    let mut rec = AgentRecord::new(
        AgentId(7),
        "prop",
        0,
        data,
        samples::fig6(),
        mode,
        RollbackMode::Optimized,
    );
    let mut sub_seq = 0u64;
    let mut mutation = 0i64;
    for op in ops {
        let cursor = rec.cursor.clone();
        match op {
            HistOp::Step {
                node,
                nops,
                sro_write,
            } => {
                if let Some(k) = sro_write {
                    mutation += 1;
                    rec.data
                        .set_sro(format!("k{}", k % 3), Value::from(mutation));
                }
                let seq = rec.step_seq;
                let ops = (0..*nops).map(|i| {
                    let kind = match i % 3 {
                        0 => EntryKind::Resource,
                        1 => EntryKind::Agent,
                        _ => EntryKind::Mixed,
                    };
                    (kind, CompOp::new("undo", Value::from(i64::from(i))))
                });
                rec.log
                    .append_step(*node, seq, &format!("m{seq}"), ops, vec![]);
                rec.step_seq += 1;
                rec.table.on_step_committed();
            }
            HistOp::EnterSub => {
                sub_seq += 1;
                rec.table.on_enter_sub(
                    &format!("S{sub_seq}"),
                    &mut rec.data,
                    &cursor,
                    &mut rec.log,
                    mode,
                );
            }
            HistOp::LeaveSub => {
                if let Some(frame) = rec.table.stack().last() {
                    let sub_id = frame.sub_id.clone();
                    rec.table
                        .on_leave_sub(&sub_id, false, &mut rec.data, &mut rec.log)
                        .expect("innermost sub leaves cleanly");
                }
            }
            HistOp::ExplicitSp => {
                rec.table
                    .explicit_savepoint(&mut rec.data, &cursor, &mut rec.log, mode);
            }
        }
    }
    rec.log.validate().expect("generated log is well-formed");
    rec
}

/// Runs the full rollback of both records to `target`, requiring every
/// planned round — and the final restore — to be identical.
fn assert_same_rollback(a: &AgentRecord, b: &AgentRecord, target: mar_core::SavepointId) {
    let mut a = a.clone();
    let mut b = b.clone();
    for round_no in 0.. {
        let ra = compensation_round(&mut a, target)
            .unwrap_or_else(|e| panic!("uncompacted round {round_no} to {target}: {e}"));
        let rb = compensation_round(&mut b, target)
            .unwrap_or_else(|e| panic!("compacted round {round_no} to {target}: {e}"));
        assert_eq!(ra, rb, "round {round_no} to {target} diverged");
        if matches!(ra.after, AfterRound::Reached(_)) {
            break;
        }
    }
    // The popped-down logs and the shadow evolution agree too.
    assert_eq!(a.data.shadow(), b.data.shadow());
    assert_eq!(a.log.len(), b.log.len());
}

fn check(mode: LoggingMode, ops: Vec<HistOp>) {
    let rec = build_record(mode, &ops);
    let raw_bytes = mar_wire::to_bytes(&rec.log).expect("uncompacted log encodes");

    let mut compacted = rec.clone();
    let report = compacted.compact_log();

    // --- structure: only payloads may differ -------------------------------
    assert_eq!(report.bytes_before, rec.log.size_bytes());
    assert_eq!(report.bytes_after, compacted.log.size_bytes());
    assert!(compacted.log.size_bytes() <= rec.log.size_bytes());
    assert_eq!(compacted.log.len(), rec.log.len());
    compacted.log.validate().expect("compacted log stays valid");
    assert_eq!(compacted.log.stats(), LogStats::of(&compacted.log));
    let ids: Vec<_> = rec.log.savepoint_ids().collect();
    assert_eq!(compacted.log.savepoint_ids().collect::<Vec<_>>(), ids);
    for id in &ids {
        let before = rec.log.find_savepoint(*id).unwrap();
        let after = compacted.log.find_savepoint(*id).unwrap();
        assert_eq!(before.id, after.id);
        assert_eq!(before.sub_id, after.sub_id);
        assert_eq!(before.explicit, after.explicit);
        assert_eq!(before.cursor, after.cursor);
        assert_eq!(before.table, after.table);
    }

    // --- wire compatibility ------------------------------------------------
    let compact_bytes = mar_wire::to_bytes(&compacted.log).expect("compacted log encodes");
    assert!(compact_bytes.len() <= raw_bytes.len());
    let as_segment: RollbackLog =
        mar_wire::from_slice(&compact_bytes).expect("unchanged segment reader decodes");
    assert_eq!(as_segment, compacted.log);
    let as_flat: NaiveLog =
        mar_wire::from_slice(&compact_bytes).expect("pre-refactor flat reader decodes");
    assert!(as_flat.iter().eq(compacted.log.iter()));
    assert_eq!(as_flat.size_bytes(), compacted.log.size_bytes());

    // --- rollback equivalence to every live savepoint ----------------------
    for id in &ids {
        assert_same_rollback(&rec, &compacted, *id);
    }

    // --- savepoint removal commutes with compaction ------------------------
    // Removing any savepoint (the §4.4.2 maintenance op) from the compacted
    // log must leave every remaining savepoint restorable to the same state
    // as removing it from the uncompacted log — including markers whose
    // referenced delta savepoint is the one removed.
    for id in &ids {
        let mut a = rec.clone();
        let mut b = compacted.clone();
        assert!(a.log.remove_savepoint(*id, &mut a.data).unwrap());
        assert!(b.log.remove_savepoint(*id, &mut b.data).unwrap());
        assert_eq!(a.data.shadow(), b.data.shadow());
        let remaining: Vec<_> = a.log.savepoint_ids().collect();
        assert_eq!(b.log.savepoint_ids().collect::<Vec<_>>(), remaining);
        for target in &remaining {
            assert_same_rollback(&a, &b, *target);
        }
    }

    // --- idempotence -------------------------------------------------------
    let mut twice = compacted.clone();
    let second = twice.compact_log();
    assert!(!second.changed(), "second pass must be a no-op: {second}");
    assert_eq!(mar_wire::to_bytes(&twice.log).unwrap(), compact_bytes);

    // --- compaction commutes with deserialization --------------------------
    // A freshly decoded log (lazy entry sizes) must compact to the same
    // bytes as the in-memory original.
    let mut decoded = rec.clone();
    decoded.log = mar_wire::from_slice(&raw_bytes).expect("decodes");
    let decoded_report = decoded.log.compact(decoded.data.shadow());
    assert_eq!(decoded_report, report);
    assert_eq!(mar_wire::to_bytes(&decoded.log).unwrap(), compact_bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compaction_preserves_rollback_state_logging(ops in ops_strategy()) {
        check(LoggingMode::State, ops);
    }

    #[test]
    fn compaction_preserves_rollback_transition_logging(ops in ops_strategy()) {
        check(LoggingMode::Transition, ops);
    }
}

/// Deterministic worked example mirroring `docs/ARCHITECTURE.md`: steps
/// that never touch the SRO state produce duplicate full images, which
/// compaction demotes into a marker chain collapsed onto the first image.
#[test]
fn worked_example_state_logging_dedup() {
    let ops = vec![
        HistOp::EnterSub,
        HistOp::Step {
            node: 1,
            nops: 1,
            sro_write: None,
        },
        HistOp::ExplicitSp,
        HistOp::Step {
            node: 2,
            nops: 1,
            sro_write: None,
        },
        HistOp::ExplicitSp,
    ];
    let rec = build_record(LoggingMode::State, &ops);
    let mut compacted = rec.clone();
    let report = compacted.compact_log();
    // Sub entry holds the image; the two explicit savepoints repeated it.
    assert_eq!(report.images_demoted, 2);
    assert!(report.saved_bytes() >= 2 * 90, "two ~96-byte blobs dropped");
    let ids: Vec<_> = rec.log.savepoint_ids().collect();
    for id in &ids {
        assert_same_rollback(&rec, &compacted, *id);
    }
}
