//! Property tests pinning the resident-record splice encoding to the full
//! re-encode: for random well-formed agent histories (steps, savepoints,
//! sub-itinerary entry/exit, compaction, both logging modes), a
//! [`ResidentRecord`] driven through the same mutations as a plain
//! [`AgentRecord`] must
//!
//! * produce **byte-identical** serializations at *every* encode point —
//!   the spliced O(delta) encode is indistinguishable on the wire from the
//!   wholesale re-encode;
//! * keep doing so after arbitrary interleavings of encodes (which fold the
//!   delta into the retained bytes), materializations, savepoint removals,
//!   and compaction passes;
//! * decode back (`from_bytes` ∘ `to_bytes`) to the identical record.

use proptest::prelude::*;

use mar_core::comp::{CompOp, EntryKind};
use mar_core::{AgentId, AgentRecord, DataSpace, LoggingMode, ResidentRecord, RollbackMode};
use mar_itinerary::samples;
use mar_wire::Value;

/// One event applied to both representations in lockstep.
#[derive(Debug, Clone)]
enum Op {
    /// Commit a step on `node` with `nops` compensating operations,
    /// optionally writing an SRO key first.
    Step {
        node: u32,
        nops: u8,
        sro_write: Option<u8>,
    },
    /// Enter a sub-itinerary (automatic savepoint entry).
    EnterSub,
    /// Leave the innermost sub-itinerary (savepoint removal — the resident
    /// side materializes its sealed log here).
    LeaveSub,
    /// Constitute an explicit savepoint.
    Savepoint,
    /// Serialize both and compare the bytes (also folds the resident
    /// delta, so later encodes splice from a longer retained prefix).
    Encode,
    /// Re-seal the resident side: encode, then re-parse from the bytes (the
    /// migration round trip).
    Reseal,
    /// Materialize the resident log without comparing anything.
    Materialize,
    /// Run a compaction pass on both sides.
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (1u32..4, 0u8..3, 0u8..8).prop_map(|(node, nops, sro)| {
            // `sro >= 4` means "no SRO write" — a hand-rolled Option
            // (the vendored proptest subset has no `option::of`).
            let sro_write = (sro < 4).then_some(sro);
            Op::Step { node, nops, sro_write }
        }),
        2 => Just(Op::EnterSub),
        1 => Just(Op::LeaveSub),
        2 => Just(Op::Savepoint),
        3 => Just(Op::Encode),
        1 => Just(Op::Reseal),
        1 => Just(Op::Materialize),
        1 => Just(Op::Compact),
    ]
}

fn base_record(logging: LoggingMode) -> AgentRecord {
    let mut data = DataSpace::new();
    data.set_sro("notes", Value::list([Value::from(1i64)]));
    data.set_wro("wallet", Value::from(100i64));
    AgentRecord::new(
        AgentId(42),
        "prop-agent",
        0,
        data,
        samples::fig6(),
        logging,
        RollbackMode::Optimized,
    )
}

fn comp_op(step: u64, k: u8) -> (EntryKind, CompOp) {
    let kind = match k % 3 {
        0 => EntryKind::Resource,
        1 => EntryKind::Agent,
        _ => EntryKind::Mixed,
    };
    (
        kind,
        CompOp::new(
            "ledger.undo_transfer",
            Value::map([
                ("step", Value::from(step as i64)),
                ("k", Value::from(k as i64)),
            ]),
        ),
    )
}

/// Drives both representations through one op. Returns `false` if the op
/// was skipped (invalid in the current state, e.g. leaving with no sub).
fn apply(full: &mut AgentRecord, res: &mut ResidentRecord, subs: &mut u32, op: &Op) -> bool {
    match op {
        Op::Step {
            node,
            nops,
            sro_write,
        } => {
            if let Some(k) = sro_write {
                let v = Value::from(i64::from(*k));
                full.data.set_sro(format!("sro{k}"), v.clone());
                res.data.set_sro(format!("sro{k}"), v);
            }
            let seq = full.step_seq;
            let ops: Vec<_> = (0..*nops).map(|k| comp_op(seq, k)).collect();
            full.log
                .append_step(*node, seq, "m", ops.clone(), vec![*node + 1]);
            res.log
                .for_append()
                .append_step(*node, seq, "m", ops, vec![*node + 1]);
            full.step_seq += 1;
            res.step_seq += 1;
            full.table.on_step_committed();
            res.table.on_step_committed();
        }
        Op::EnterSub => {
            let name = format!("sub{subs}");
            *subs += 1;
            let cursor = full.cursor.clone();
            full.table.on_enter_sub(
                &name,
                &mut full.data,
                &cursor,
                &mut full.log,
                full.logging_mode,
            );
            res.table.on_enter_sub(
                &name,
                &mut res.data,
                &cursor,
                res.log.for_append(),
                res.logging_mode,
            );
        }
        Op::LeaveSub => {
            if *subs == 0 {
                return false;
            }
            *subs -= 1;
            let name = format!("sub{subs}");
            full.table
                .on_leave_sub(&name, false, &mut full.data, &mut full.log)
                .expect("well-formed history");
            let log = res.log.materialize().expect("resident log decodes");
            res.table
                .on_leave_sub(&name, false, &mut res.data, log)
                .expect("well-formed history");
        }
        Op::Savepoint => {
            let cursor = full.cursor.clone();
            full.table.explicit_savepoint(
                &mut full.data,
                &cursor,
                &mut full.log,
                full.logging_mode,
            );
            res.table.explicit_savepoint(
                &mut res.data,
                &cursor,
                res.log.for_append(),
                res.logging_mode,
            );
        }
        Op::Encode => {
            let spliced = res.to_bytes().expect("resident encodes");
            let direct = full.to_bytes().expect("record encodes");
            assert_eq!(spliced, direct, "spliced encode != full re-encode");
        }
        Op::Reseal => {
            let bytes = res.to_bytes().expect("resident encodes");
            *res = ResidentRecord::from_bytes(&bytes).expect("own bytes parse");
            assert!(res.log.is_sealed());
        }
        Op::Materialize => {
            res.log.materialize().expect("resident log decodes");
        }
        Op::Compact => {
            full.compact_log();
            res.compact_log().expect("resident log decodes");
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spliced_encoding_is_byte_identical_to_full_reencode(
        logging in prop_oneof![Just(LoggingMode::State), Just(LoggingMode::Transition)],
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut full = base_record(logging);
        let seed_bytes = full.to_bytes().unwrap();
        let mut res = ResidentRecord::from_bytes(&seed_bytes).unwrap();
        let mut subs = 0u32;
        for op in &ops {
            apply(&mut full, &mut res, &mut subs, op);
            // The invariant holds after *every* op, not only at Encode
            // points — clone the resident so the comparison itself does
            // not fold the delta the next op splices onto.
            let direct = full.to_bytes().unwrap();
            let spliced = res.clone().to_bytes().unwrap();
            prop_assert_eq!(&spliced, &direct, "after {:?}", op);
            // And the bytes decode back to the identical record.
            let back = AgentRecord::from_bytes(&direct).unwrap();
            prop_assert_eq!(&back.log, &full.log);
        }
        // Final full decode equivalence through the resident path too.
        let final_bytes = res.to_bytes().unwrap();
        let via_resident = ResidentRecord::from_bytes(&final_bytes)
            .unwrap()
            .into_record()
            .unwrap();
        prop_assert_eq!(via_resident, full);
    }
}
