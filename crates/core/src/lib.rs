//! # mar-core
//!
//! The paper's contribution: system mechanisms for the **partial rollback of
//! mobile agent execution** (Straßer & Rothermel, ICDCS 2000).
//!
//! An agent executed under an exactly-once protocol commits a transaction
//! per step; already-committed steps can only be undone *semantically*, by
//! compensation. This crate implements the complete mechanism:
//!
//! * [`theory`] — the augmented-state formalism of §3: histories,
//!   commutativity, soundness of compensation, and the classification of
//!   compensation types.
//! * [`DataSpace`] — the private agent data split into strongly reversible
//!   objects (restored from before-images) and weakly reversible objects
//!   (compensated by operations), §4.1.
//! * [`RollbackLog`] — the agent-attached log of savepoint, begin-of-step,
//!   operation, and end-of-step entries, with state or transition logging of
//!   SRO images, §4.2 — plus the pre-migration compaction pass
//!   ([`log::compact`], [`RollbackLog::compact`]) that shrinks redundant
//!   savepoint payloads without changing rollback behaviour or the wire
//!   format.
//! * [`comp`] — compensating operations with the three entry types of
//!   §4.4.1 (resource / agent / mixed) and their access enforcement.
//! * [`SavepointTable`] — itinerary-integrated savepoints: automatic
//!   constitution at sub-itinerary entry, marker savepoints, savepoint
//!   removal at sub-itinerary completion, and whole-log discard at top-level
//!   completion, §4.4.2.
//! * [`planner`] — the basic (Fig. 4) and optimized (Fig. 5) rollback
//!   algorithms as pure planners executed by the platform inside
//!   compensation transactions.
//! * [`CostModel`] — the migration-vs-RPC decision model of \[16\] referenced
//!   in §4.4.1.
//!
//! This crate is deliberately free of any simulator dependency: everything
//! here is protocol logic, testable in isolation (see the property tests in
//! [`planner`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod comp;
mod costmodel;
mod data;
mod error;
pub mod itinspan;
pub mod log;
pub mod planner;
mod record;
mod resident;
mod savepoint;
pub mod theory;

pub use costmodel::{CostModel, LinkParams};
pub use data::{DataSpace, ObjectMap, SroDelta};
pub use error::{CompError, CoreError};
pub use log::{CompactionReport, LoggingMode, RollbackLog};
pub use planner::{
    compensation_round, plan_batch, plan_single, start_rollback, AfterRound, BatchPlan, BatchRun,
    CompUnit, Destination, FusedStep, RestorePlan, RollbackCursor, RollbackMode, RoundPlan,
    StartPlan,
};
pub use record::{AgentId, AgentRecord, AgentStatus, RecordDataPeek, RecordHeader};
pub use resident::{ItinerarySlot, LazyRecord, ResidentLog, ResidentRecord, SealedLog};
pub use savepoint::{LeaveOutcome, RollbackScope, SavepointId, SavepointTable, SubSavepoints};
