//! Savepoint identifiers, rollback scopes, and the savepoint bookkeeping
//! that integrates itineraries with the rollback log (§4.4.2).

use std::fmt;

use mar_itinerary::Cursor;
use serde::{Deserialize, Serialize};

use crate::data::DataSpace;
use crate::error::CoreError;
use crate::log::{LogEntry, LoggingMode, RollbackLog, SpEntry, SroPayload};

/// Unique identifier of an agent savepoint.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SavepointId(pub u64);

impl fmt::Display for SavepointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SP{}", self.0)
    }
}

/// What an application-initiated rollback targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RollbackScope {
    /// Roll back the sub-itinerary currently being executed (to the
    /// savepoint constituted when it was entered).
    CurrentSub,
    /// Roll back `n` enclosing sub-itineraries *beyond* the current one:
    /// `Enclosing(0)` ≡ `CurrentSub`, `Enclosing(1)` rolls back the parent,
    /// and so on.
    Enclosing(usize),
    /// Roll back to a specific (explicit or automatic) savepoint. It must
    /// belong to the current sub-itinerary or one of its ancestors.
    ToSavepoint(SavepointId),
}

/// Savepoints of one active sub-itinerary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubSavepoints {
    /// The sub-itinerary id.
    pub sub_id: String,
    /// The automatic savepoint constituted when the sub was entered.
    pub auto: SavepointId,
    /// Explicit savepoints constituted inside this sub (in order).
    pub explicit: Vec<SavepointId>,
    /// `true` when `auto` aliases an *ancestor's* savepoint: after rolling
    /// back to an enclosing sub-itinerary's savepoint, the cursor may sit
    /// inside nested subs whose own savepoints were popped during the
    /// rollback; their frames alias the restore target (rolling back "this"
    /// sub equals rolling back to that ancestor point, and completing it
    /// must not remove the ancestor's savepoint entry).
    #[serde(default)]
    pub aliased: bool,
}

/// The outcome of leaving a sub-itinerary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaveOutcome {
    /// The sub's savepoints were removed from the log (kept: its operation
    /// entries).
    SavepointsRemoved(usize),
    /// The sub was directly contained in the main itinerary: the entire
    /// rollback log was discarded.
    LogDiscarded {
        /// Bytes the log held before the discard.
        freed_bytes: usize,
    },
}

/// Bookkeeping connecting the itinerary hierarchy with savepoint entries in
/// the rollback log. Serializable: it migrates with the agent, and each
/// savepoint entry embeds a snapshot of it so rollback restores it too.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SavepointTable {
    next_id: u64,
    stack: Vec<SubSavepoints>,
    steps_since_last_sp: u64,
    last_data_sp: Option<SavepointId>,
}

impl SavepointTable {
    /// Creates empty bookkeeping.
    pub fn new() -> Self {
        SavepointTable::default()
    }

    /// The active sub-itinerary stack (outermost first).
    pub fn stack(&self) -> &[SubSavepoints] {
        &self.stack
    }

    /// Number of steps committed since the last savepoint entry was written.
    pub fn steps_since_last_sp(&self) -> u64 {
        self.steps_since_last_sp
    }

    /// Called when a step transaction commits.
    pub fn on_step_committed(&mut self) {
        self.steps_since_last_sp += 1;
    }

    fn alloc(&mut self) -> SavepointId {
        let id = SavepointId(self.next_id);
        self.next_id += 1;
        id
    }

    fn make_payload(&self, data: &mut DataSpace, mode: LoggingMode) -> SroPayload {
        // Marker rule (§4.4.2): if no step committed since the last
        // savepoint entry, the SRO state is identical — write a marker
        // referencing the last data-bearing savepoint instead of the data.
        if self.steps_since_last_sp == 0 {
            if let Some(ref_id) = self.last_data_sp {
                return SroPayload::Ref(ref_id);
            }
        }
        match mode {
            LoggingMode::State => SroPayload::Full(data.sro_image()),
            LoggingMode::Transition => {
                data.enable_shadow();
                SroPayload::Delta(data.take_transition_delta().expect("shadow enabled above"))
            }
        }
    }

    fn write_sp(
        &mut self,
        sub_id: Option<String>,
        explicit: bool,
        data: &mut DataSpace,
        cursor: &Cursor,
        log: &mut RollbackLog,
        mode: LoggingMode,
    ) -> SavepointId {
        let id = self.alloc();
        let payload = self.make_payload(data, mode);
        match &sub_id {
            Some(sub) => self.stack.push(SubSavepoints {
                sub_id: sub.clone(),
                auto: id,
                explicit: Vec::new(),
                aliased: false,
            }),
            None => {
                if let Some(frame) = self.stack.last_mut() {
                    frame.explicit.push(id);
                }
            }
        }
        if !payload.is_marker() {
            self.last_data_sp = Some(id);
        }
        self.steps_since_last_sp = 0;
        // The table snapshot in the entry includes the frame pushed above,
        // so restoring this savepoint reinstates the sub as active.
        let entry = SpEntry {
            id,
            sub_id,
            explicit,
            cursor: cursor.clone(),
            table: self.clone(),
            sro: payload,
        };
        log.push(LogEntry::Savepoint(entry));
        id
    }

    /// Constitutes the automatic savepoint for entering `sub_id`
    /// (paper: "Those savepoints can be written automatically by the
    /// system").
    pub fn on_enter_sub(
        &mut self,
        sub_id: &str,
        data: &mut DataSpace,
        cursor: &Cursor,
        log: &mut RollbackLog,
        mode: LoggingMode,
    ) -> SavepointId {
        self.write_sp(Some(sub_id.to_owned()), false, data, cursor, log, mode)
    }

    /// Constitutes an explicit savepoint requested by the agent program
    /// (only possible at the end of a step, §2).
    pub fn explicit_savepoint(
        &mut self,
        data: &mut DataSpace,
        cursor: &Cursor,
        log: &mut RollbackLog,
        mode: LoggingMode,
    ) -> SavepointId {
        self.write_sp(None, true, data, cursor, log, mode)
    }

    /// Handles the completion of a sub-itinerary: removes its savepoints
    /// from the log, or — for a sub directly contained in the main
    /// itinerary — discards the whole log (§4.4.2).
    ///
    /// # Errors
    ///
    /// [`CoreError::BadScope`] if `sub_id` is not the innermost active sub.
    pub fn on_leave_sub(
        &mut self,
        sub_id: &str,
        top_level: bool,
        data: &mut DataSpace,
        log: &mut RollbackLog,
    ) -> Result<LeaveOutcome, CoreError> {
        let frame = self
            .stack
            .pop()
            .ok_or_else(|| CoreError::BadScope(format!("leaving {sub_id:?} with no active sub")))?;
        if frame.sub_id != sub_id {
            return Err(CoreError::BadScope(format!(
                "leaving {sub_id:?} but innermost active sub is {:?}",
                frame.sub_id
            )));
        }
        if top_level {
            let freed = log.size_bytes();
            log.clear();
            self.last_data_sp = None;
            self.steps_since_last_sp = 0;
            return Ok(LeaveOutcome::LogDiscarded { freed_bytes: freed });
        }
        // Savepoint removal is an index splice per id (O(log n) lookup, no
        // entry scans), so eagerly GC-ing every explicit savepoint of the
        // completed sub is affordable even for savepoint-heavy programs.
        let mut removed = 0;
        for id in frame.explicit.iter().copied() {
            if log.remove_savepoint(id, data)? {
                removed += 1;
            }
        }
        // An aliased frame borrows an ancestor's savepoint entry; removing
        // it would destroy the ancestor's rollback target.
        if !frame.aliased && log.remove_savepoint(frame.auto, data)? {
            removed += 1;
        }
        // The removed savepoint may have been the most recent data-bearing
        // one; recompute for the marker rule.
        self.last_data_sp = log.last_data_savepoint();
        // The marker rule requires "no step since the last savepoint entry
        // STILL IN THE LOG". If the savepoint that last reset the step
        // counter was just removed, steps may well have committed since the
        // remaining one — force the next savepoint to carry data.
        if removed > 0 {
            self.steps_since_last_sp = self.steps_since_last_sp.max(1);
        }
        Ok(LeaveOutcome::SavepointsRemoved(removed))
    }

    /// Resolves a rollback scope to a concrete savepoint id.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadScope`] when no sub is active or the nesting is
    /// shallower than requested, [`CoreError::NotTargetable`] for savepoints
    /// outside the active stack (e.g. of completed sub-itineraries).
    pub fn resolve(&self, scope: RollbackScope) -> Result<SavepointId, CoreError> {
        match scope {
            RollbackScope::CurrentSub => self
                .stack
                .last()
                .map(|f| f.auto)
                .ok_or_else(|| CoreError::BadScope("no active sub-itinerary".to_owned())),
            RollbackScope::Enclosing(n) => {
                if self.stack.is_empty() {
                    return Err(CoreError::BadScope("no active sub-itinerary".to_owned()));
                }
                let idx = self.stack.len().checked_sub(1 + n).ok_or_else(|| {
                    CoreError::BadScope(format!(
                        "Enclosing({n}) exceeds nesting depth {}",
                        self.stack.len()
                    ))
                })?;
                Ok(self.stack[idx].auto)
            }
            RollbackScope::ToSavepoint(id) => {
                let targetable = self
                    .stack
                    .iter()
                    .any(|f| f.auto == id || f.explicit.contains(&id));
                if targetable {
                    Ok(id)
                } else {
                    Err(CoreError::NotTargetable(id))
                }
            }
        }
    }

    /// Reconciles the stack with a restored cursor path: when rollback
    /// targeted an *ancestor* sub-itinerary's savepoint, the snapshot's
    /// cursor may already sit inside nested subs (entered before any step
    /// ran) whose own savepoint entries were popped during the rollback.
    /// Frames for those subs are re-created as aliases of the restore
    /// target.
    ///
    /// `cursor_path` is the cursor's itinerary stack *without* the main
    /// itinerary (e.g. `["SI3", "SI4"]`).
    pub fn reconcile_with_path(&mut self, cursor_path: &[&str], target: SavepointId) {
        for (i, sub) in cursor_path.iter().enumerate() {
            match self.stack.get(i) {
                Some(frame) if frame.sub_id == *sub => continue,
                Some(_) => {
                    // Divergence below the top: snapshot inconsistent with
                    // cursor; truncate and rebuild as aliases.
                    self.stack.truncate(i);
                    self.stack.push(SubSavepoints {
                        sub_id: (*sub).to_owned(),
                        auto: target,
                        explicit: Vec::new(),
                        aliased: true,
                    });
                }
                None => {
                    self.stack.push(SubSavepoints {
                        sub_id: (*sub).to_owned(),
                        auto: target,
                        explicit: Vec::new(),
                        aliased: true,
                    });
                }
            }
        }
        self.stack.truncate(cursor_path.len());
    }

    /// Restores the bookkeeping from a savepoint snapshot, keeping the id
    /// allocator monotone so reused history never duplicates ids.
    pub fn restore_from(&mut self, snapshot: &SavepointTable) {
        let next = self.next_id.max(snapshot.next_id);
        *self = snapshot.clone();
        self.next_id = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_itinerary::{samples, Cursor};
    use mar_wire::Value;

    fn setup() -> (DataSpace, Cursor, RollbackLog, SavepointTable) {
        let main = samples::fig6();
        let mut data = DataSpace::new();
        data.set_sro("v", Value::from(1i64));
        (
            data,
            Cursor::new(&main),
            RollbackLog::new(),
            SavepointTable::new(),
        )
    }

    #[test]
    fn enter_sub_writes_data_savepoint() {
        let (mut data, cursor, mut log, mut table) = setup();
        let id = table.on_enter_sub("SI1", &mut data, &cursor, &mut log, LoggingMode::State);
        assert_eq!(log.len(), 1);
        let sp = log.find_savepoint(id).unwrap();
        assert!(matches!(sp.sro, SroPayload::Full(_)));
        assert_eq!(sp.sub_id.as_deref(), Some("SI1"));
        assert_eq!(table.stack().len(), 1);
    }

    #[test]
    fn immediately_nested_sub_gets_marker() {
        let (mut data, cursor, mut log, mut table) = setup();
        let outer = table.on_enter_sub("SI3", &mut data, &cursor, &mut log, LoggingMode::State);
        // No step committed in between → marker referencing SI3's savepoint.
        let inner = table.on_enter_sub("SI4", &mut data, &cursor, &mut log, LoggingMode::State);
        let sp = log.find_savepoint(inner).unwrap();
        assert_eq!(sp.sro, SroPayload::Ref(outer));
    }

    #[test]
    fn step_commit_breaks_marker_chain() {
        let (mut data, cursor, mut log, mut table) = setup();
        table.on_enter_sub("SI3", &mut data, &cursor, &mut log, LoggingMode::State);
        table.on_step_committed();
        let inner = table.on_enter_sub("SI4", &mut data, &cursor, &mut log, LoggingMode::State);
        let sp = log.find_savepoint(inner).unwrap();
        assert!(matches!(sp.sro, SroPayload::Full(_)));
    }

    #[test]
    fn leave_sub_removes_savepoints_but_not_operations() {
        let (mut data, cursor, mut log, mut table) = setup();
        table.on_enter_sub("SI1", &mut data, &cursor, &mut log, LoggingMode::State);
        table.on_step_committed();
        // Fake a step's operation entry.
        log.push(LogEntry::Operation(crate::log::OpEntry {
            kind: crate::comp::EntryKind::Resource,
            op: crate::comp::CompOp::new("x", Value::Null),
            step_seq: 0,
        }));
        let out = table
            .on_leave_sub("SI1", false, &mut data, &mut log)
            .unwrap();
        assert_eq!(out, LeaveOutcome::SavepointsRemoved(1));
        assert_eq!(log.len(), 1, "operation entries stay");
        assert!(table.stack().is_empty());
    }

    #[test]
    fn leave_top_level_discards_log() {
        let (mut data, cursor, mut log, mut table) = setup();
        table.on_enter_sub("SI1", &mut data, &cursor, &mut log, LoggingMode::State);
        log.push(LogEntry::Operation(crate::log::OpEntry {
            kind: crate::comp::EntryKind::Agent,
            op: crate::comp::CompOp::new("y", Value::Null),
            step_seq: 0,
        }));
        let out = table
            .on_leave_sub("SI1", true, &mut data, &mut log)
            .unwrap();
        assert!(matches!(out, LeaveOutcome::LogDiscarded { freed_bytes } if freed_bytes > 0));
        assert!(log.is_empty());
    }

    #[test]
    fn leave_wrong_sub_is_error() {
        let (mut data, cursor, mut log, mut table) = setup();
        table.on_enter_sub("SI1", &mut data, &cursor, &mut log, LoggingMode::State);
        assert!(table
            .on_leave_sub("SI2", false, &mut data, &mut log)
            .is_err());
    }

    #[test]
    fn scope_resolution() {
        let (mut data, cursor, mut log, mut table) = setup();
        let outer = table.on_enter_sub("A", &mut data, &cursor, &mut log, LoggingMode::State);
        table.on_step_committed();
        let inner = table.on_enter_sub("B", &mut data, &cursor, &mut log, LoggingMode::State);
        table.on_step_committed();
        let expl = table.explicit_savepoint(&mut data, &cursor, &mut log, LoggingMode::State);

        assert_eq!(table.resolve(RollbackScope::CurrentSub).unwrap(), inner);
        assert_eq!(table.resolve(RollbackScope::Enclosing(0)).unwrap(), inner);
        assert_eq!(table.resolve(RollbackScope::Enclosing(1)).unwrap(), outer);
        assert!(table.resolve(RollbackScope::Enclosing(2)).is_err());
        assert_eq!(
            table.resolve(RollbackScope::ToSavepoint(expl)).unwrap(),
            expl
        );
        assert!(matches!(
            table.resolve(RollbackScope::ToSavepoint(SavepointId(999))),
            Err(CoreError::NotTargetable(_))
        ));
    }

    #[test]
    fn restore_keeps_id_allocator_monotone() {
        let (mut data, cursor, mut log, mut table) = setup();
        let a = table.on_enter_sub("A", &mut data, &cursor, &mut log, LoggingMode::State);
        let snapshot = log.find_savepoint(a).unwrap().table.clone();
        table.on_step_committed();
        let b = table.on_enter_sub("B", &mut data, &cursor, &mut log, LoggingMode::State);
        table.restore_from(&snapshot);
        // A new savepoint must not reuse `b`'s id.
        table.on_step_committed();
        let c = table.on_enter_sub("B2", &mut data, &cursor, &mut log, LoggingMode::State);
        assert!(c > b, "{c} must be allocated after {b}");
        assert_eq!(table.stack().len(), 2); // A (from snapshot) + B2
    }

    #[test]
    fn transition_mode_writes_deltas() {
        let (mut data, cursor, mut log, mut table) = setup();
        data.enable_shadow();
        table.on_enter_sub("A", &mut data, &cursor, &mut log, LoggingMode::Transition);
        table.on_step_committed();
        data.set_sro("v", Value::from(2i64));
        let b = table.on_enter_sub("B", &mut data, &cursor, &mut log, LoggingMode::Transition);
        let sp = log.find_savepoint(b).unwrap();
        match &sp.sro {
            SroPayload::Delta(d) => {
                // Backward delta: restores v to 1.
                assert_eq!(d.changed.get("v").and_then(Value::as_i64), Some(1));
            }
            other => panic!("expected delta, got {other:?}"),
        }
    }

    #[test]
    fn explicit_savepoint_with_no_active_sub_is_untracked() {
        let (mut data, cursor, mut log, mut table) = setup();
        let id = table.explicit_savepoint(&mut data, &cursor, &mut log, LoggingMode::State);
        // Written to the log but not targetable (no active sub to attach to).
        assert!(log.find_savepoint(id).is_some());
        assert!(table.resolve(RollbackScope::ToSavepoint(id)).is_err());
    }
}
