//! The resident-record step path: lazy log decode and O(delta) encoding.
//!
//! The step-commit protocol (§4.4) makes the agent record durable after
//! every step, and the rollback log is usually the dominant share of the
//! record's bytes. Forward execution, however, only ever *appends* to the
//! log — the entries themselves are needed exclusively on rollback,
//! migration-time compaction, and savepoint removal. This module exploits
//! that:
//!
//! * [`LazyRecord`] is a borrowed view of a serialized record that decodes
//!   every field *except* the log eagerly; the `(SP | BOS OE* EOS)*` log
//!   section is structurally validated ([`mar_wire::skip_value`]) but kept
//!   as a byte slice.
//! * [`ResidentRecord`] is the owned working form the platform's step path
//!   runs on. Its [`ResidentLog`] keeps the log *sealed* — the retained
//!   encoded bytes plus a small [`RollbackLog`] of entries appended since —
//!   and only materializes a full [`RollbackLog`] when an operation
//!   actually needs entries.
//! * [`ResidentRecord::to_bytes`] splice-encodes: the retained log bytes
//!   are copied verbatim, freshly appended entries are encoded once (their
//!   cached sizes from the log's `Stored` wrappers delimit the spliced
//!   span), and everything else is re-encoded normally. The output is
//!   **byte-identical** to [`AgentRecord::to_bytes`] of the equivalent
//!   record — property-tested in `crates/core/tests/resident_record_props.rs`
//!   — so readers, stable storage, and the wire format are unchanged.
//!
//! Durability cost per step is thereby proportional to what changed (data
//! space, cursor, the step's new log entries), not to what exists (the
//! whole log).

use std::sync::{Arc, OnceLock};

use mar_itinerary::{Cursor, Itinerary};

use crate::data::DataSpace;
use crate::error::CoreError;
use crate::itinspan::{classify_span, SpanKind};
use crate::log::{LogEntry, LoggingMode, RollbackLog};
use crate::planner::RollbackMode;
use crate::record::{AgentId, AgentRecord, AgentStatus};
use crate::savepoint::SavepointTable;

/// Number of fields in the serialized [`AgentRecord`] layout.
pub(crate) const RECORD_FIELDS: u64 = 12;
/// Number of fields in the serialized [`RollbackLog`] layout
/// (`entries`, `bytes`).
const LOG_FIELDS: u64 = 2;

/// The record's itinerary as a content-addressed wire span: the exact
/// encoded bytes (shared), their stable content hash, and a decode-once
/// tree.
///
/// The itinerary never changes after launch, so the slot treats its
/// encoding as the source of truth: parsing a record captures the span
/// without decoding it ([`mar_wire::content_hash64`] over the span is the
/// agent-type-wide cache key), encoding splices the span back verbatim,
/// and the decoded tree is built at most once per slot *family* — clones
/// share the [`OnceLock`], so a per-node intern table handing out clones
/// of one slot gives every record of that agent type the same
/// `Arc<Itinerary>`.
#[derive(Debug, Clone)]
pub struct ItinerarySlot {
    hash: u64,
    bytes: Arc<[u8]>,
    tree: Arc<OnceLock<Arc<Itinerary>>>,
}

impl PartialEq for ItinerarySlot {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.bytes == other.bytes
    }
}

impl ItinerarySlot {
    /// Wraps the exact wire encoding of an inline itinerary.
    ///
    /// # Errors
    ///
    /// Rejects spans that are not framed as an inline itinerary — in
    /// particular the by-reference form, which must be rehydrated before a
    /// record is parsed (stable storage never holds references).
    pub fn from_span(span: &[u8]) -> Result<ItinerarySlot, CoreError> {
        match classify_span(span)? {
            SpanKind::Inline => Ok(ItinerarySlot {
                hash: mar_wire::content_hash64(span),
                bytes: span.into(),
                tree: Arc::new(OnceLock::new()),
            }),
            SpanKind::Ref(hash) => Err(CoreError::CorruptLog(format!(
                "record holds itinerary reference {hash:#018x}; \
                 rehydrate before parsing"
            ))),
        }
    }

    /// Builds a slot from a decoded tree (launch path), pre-seeding the
    /// decode cache.
    ///
    /// # Errors
    ///
    /// Codec errors from encoding the tree.
    pub fn from_tree(itinerary: Itinerary) -> Result<ItinerarySlot, CoreError> {
        let bytes = mar_wire::to_bytes(&itinerary)?;
        let tree = Arc::new(OnceLock::new());
        let _ = tree.set(Arc::new(itinerary));
        Ok(ItinerarySlot {
            hash: mar_wire::content_hash64(&bytes),
            bytes: bytes.into(),
            tree,
        })
    }

    /// The stable content hash of the encoded span.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The exact wire encoding of the itinerary.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The encoding as a shared buffer (for intern tables).
    pub fn shared_bytes(&self) -> Arc<[u8]> {
        Arc::clone(&self.bytes)
    }

    /// Whether the tree has already been decoded (by this slot or any
    /// clone of it).
    pub fn is_decoded(&self) -> bool {
        self.tree.get().is_some()
    }

    /// The decoded itinerary, shared; decodes on first use and never
    /// again for this slot family.
    ///
    /// # Errors
    ///
    /// Codec errors for a span that is framing-valid but not a decodable
    /// itinerary.
    pub fn tree(&self) -> Result<Arc<Itinerary>, CoreError> {
        if let Some(t) = self.tree.get() {
            return Ok(Arc::clone(t));
        }
        let decoded: Itinerary = mar_wire::from_slice(&self.bytes)?;
        Ok(Arc::clone(self.tree.get_or_init(|| Arc::new(decoded))))
    }

    /// An owned copy of the decoded tree (for [`AgentRecord`] conversion).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ItinerarySlot::tree`].
    pub fn materialize(&self) -> Result<Itinerary, CoreError> {
        Ok((*self.tree()?).clone())
    }
}

/// A borrowed view of a serialized [`AgentRecord`] with the rollback-log
/// section left undecoded.
///
/// All fields before and after the log are decoded eagerly (they are needed
/// to run a step); the log section is checked for well-formed framing and
/// kept as the `bytes[..]` slice it occupies. Decoding work and allocation
/// are therefore O(record without log) instead of O(record).
#[derive(Debug)]
pub struct LazyRecord<'a> {
    /// Unique id.
    pub id: AgentId,
    /// Behaviour type name, borrowed from the serialized record.
    pub agent_type: &'a str,
    /// Home node index.
    pub home: u32,
    /// Private data space (SRO + WRO).
    pub data: DataSpace,
    /// The (immutable) itinerary as its content-addressed wire span.
    pub itinerary: ItinerarySlot,
    /// Execution position.
    pub cursor: Cursor,
    /// Savepoint bookkeeping.
    pub table: SavepointTable,
    /// The encoding of the log's entries (concatenated, headerless).
    log_bytes: &'a [u8],
    /// Number of entries in the log section.
    log_entries: usize,
    /// The log's serialized total byte count (its `bytes` field).
    log_size: usize,
    /// Monotone counter of committed steps.
    pub step_seq: u64,
    /// Current status.
    pub status: AgentStatus,
    /// SRO capture mode for savepoints.
    pub logging_mode: LoggingMode,
    /// Which rollback mechanism this agent uses.
    pub rollback_mode: RollbackMode,
}

impl<'a> LazyRecord<'a> {
    /// Parses a serialized record, decoding everything but the log entries.
    /// The whole input must be exactly one record (the queue-item framing).
    ///
    /// # Errors
    ///
    /// Codec errors for inputs that are not a well-framed record; note the
    /// log entries are only *structurally* validated — a framing-valid but
    /// semantically corrupt entry surfaces when the log is materialized.
    pub fn parse(bytes: &'a [u8]) -> Result<LazyRecord<'a>, CoreError> {
        let mut off = 0usize;
        let (fields, n) = mar_wire::read_seq_header(bytes)?;
        off += n;
        if fields != RECORD_FIELDS {
            return Err(CoreError::CorruptLog(format!(
                "record has {fields} fields, expected {RECORD_FIELDS}"
            )));
        }
        fn field<'de, T: serde::Deserialize<'de>>(
            bytes: &'de [u8],
            off: &mut usize,
        ) -> Result<T, CoreError> {
            let (v, n) = mar_wire::from_slice_prefix::<T>(&bytes[*off..])?;
            *off += n;
            Ok(v)
        }
        let id = field::<AgentId>(bytes, &mut off)?;
        let agent_type = field::<&str>(bytes, &mut off)?;
        let home = field::<u32>(bytes, &mut off)?;
        let data = field::<DataSpace>(bytes, &mut off)?;
        // The itinerary is captured as its wire span: structurally skipped,
        // hashed, never decoded here. The platform primes the decoded tree
        // from its per-node intern table; a record that bypasses the table
        // decodes lazily on first cursor access.
        let it_start = off;
        off += mar_wire::skip_value(&bytes[off..])?;
        let itinerary = ItinerarySlot::from_span(&bytes[it_start..off])?;
        let cursor = field::<Cursor>(bytes, &mut off)?;
        let table = field::<SavepointTable>(bytes, &mut off)?;
        // The log: `SEQ(2) SEQ(n) entry*n bytes` — walk the entries without
        // building them.
        let (log_fields, n) = mar_wire::read_seq_header(&bytes[off..])?;
        off += n;
        if log_fields != LOG_FIELDS {
            return Err(CoreError::CorruptLog(format!(
                "log has {log_fields} fields, expected {LOG_FIELDS}"
            )));
        }
        let (entries, n) = mar_wire::read_seq_header(&bytes[off..])?;
        off += n;
        let entries_start = off;
        for _ in 0..entries {
            off += mar_wire::skip_value(&bytes[off..])?;
        }
        let log_bytes = &bytes[entries_start..off];
        let log_size = field::<u64>(bytes, &mut off)? as usize;
        let step_seq = field::<u64>(bytes, &mut off)?;
        let status = field::<AgentStatus>(bytes, &mut off)?;
        let logging_mode = field::<LoggingMode>(bytes, &mut off)?;
        let rollback_mode = field::<RollbackMode>(bytes, &mut off)?;
        if off != bytes.len() {
            return Err(mar_wire::WireError::TrailingBytes(bytes.len() - off).into());
        }
        Ok(LazyRecord {
            id,
            agent_type,
            home,
            data,
            itinerary,
            cursor,
            table,
            log_bytes,
            log_entries: entries as usize,
            log_size,
            step_seq,
            status,
            logging_mode,
            rollback_mode,
        })
    }

    /// Number of log entries (known without decoding them).
    pub fn log_entry_count(&self) -> usize {
        self.log_entries
    }

    /// The log's total encoded byte count (its serialized `bytes` field).
    pub fn log_size_bytes(&self) -> usize {
        self.log_size
    }

    /// Decodes the log section into a full [`RollbackLog`].
    ///
    /// # Errors
    ///
    /// Codec errors for entries that are framing-valid but not decodable.
    pub fn decode_log(&self) -> Result<RollbackLog, CoreError> {
        decode_entries(self.log_bytes, self.log_entries, self.log_size)
    }

    /// Converts into an owned [`ResidentRecord`], copying only the log
    /// section's bytes (one memcpy — the log entries stay undecoded).
    pub fn into_resident(self) -> ResidentRecord {
        ResidentRecord {
            id: self.id,
            agent_type: self.agent_type.to_owned(),
            home: self.home,
            data: self.data,
            itinerary: self.itinerary,
            cursor: self.cursor,
            table: self.table,
            log: ResidentLog::Sealed(SealedLog {
                retained: self.log_bytes.to_vec(),
                retained_entries: self.log_entries,
                retained_size: self.log_size,
                appended: RollbackLog::new(),
            }),
            step_seq: self.step_seq,
            status: self.status,
            logging_mode: self.logging_mode,
            rollback_mode: self.rollback_mode,
        }
    }

    /// Fully decodes into an [`AgentRecord`].
    ///
    /// # Errors
    ///
    /// Codec errors from the deferred log decode.
    pub fn into_record(self) -> Result<AgentRecord, CoreError> {
        let log = self.decode_log()?;
        Ok(AgentRecord {
            id: self.id,
            agent_type: self.agent_type.to_owned(),
            home: self.home,
            data: self.data,
            itinerary: self.itinerary.materialize()?,
            cursor: self.cursor,
            table: self.table,
            log,
            step_seq: self.step_seq,
            status: self.status,
            logging_mode: self.logging_mode,
            rollback_mode: self.rollback_mode,
        })
    }
}

fn decode_entries(bytes: &[u8], count: usize, total_size: usize) -> Result<RollbackLog, CoreError> {
    let mut entries = Vec::with_capacity(count);
    let mut off = 0usize;
    for _ in 0..count {
        let (entry, n) = mar_wire::from_slice_prefix::<LogEntry>(&bytes[off..])?;
        off += n;
        entries.push(entry);
    }
    if off != bytes.len() {
        return Err(mar_wire::WireError::TrailingBytes(bytes.len() - off).into());
    }
    Ok(RollbackLog::from_wire_parts(entries, total_size))
}

/// The sealed form of a resident record's log: the retained encoded bytes
/// of every entry up to the last encode, plus the (decoded) entries
/// appended since.
#[derive(Debug, Clone)]
pub struct SealedLog {
    /// Concatenated entry encodings (headerless).
    retained: Vec<u8>,
    /// How many entries `retained` holds.
    retained_entries: usize,
    /// Their total encoded size — always `retained.len()`-consistent with
    /// the wire's `bytes` field semantics.
    retained_size: usize,
    /// Entries appended since the seal; push-only.
    appended: RollbackLog,
}

/// A resident record's rollback log: sealed while forward execution only
/// appends, materialized on demand.
#[derive(Debug, Clone)]
pub enum ResidentLog {
    /// Encoded prefix + appended entries; the steady-state forward form.
    Sealed(SealedLog),
    /// Fully decoded (rollback, compaction, savepoint removal).
    Full(RollbackLog),
}

impl ResidentLog {
    /// Total number of entries.
    pub fn len(&self) -> usize {
        match self {
            ResidentLog::Sealed(s) => s.retained_entries + s.appended.len(),
            ResidentLog::Full(log) => log.len(),
        }
    }

    /// True when the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total encoded size in bytes (exact in both forms).
    pub fn size_bytes(&self) -> usize {
        match self {
            ResidentLog::Sealed(s) => s.retained_size + s.appended.size_bytes(),
            ResidentLog::Full(log) => log.size_bytes(),
        }
    }

    /// True while the log prefix is still encoded.
    pub fn is_sealed(&self) -> bool {
        matches!(self, ResidentLog::Sealed(_))
    }

    /// The log to append new entries to. In sealed form this is the small
    /// appended-entries log — pushing there is the whole point: the step
    /// path logs BOS/OE/EOS frames and savepoint entries without ever
    /// decoding the retained prefix.
    pub fn for_append(&mut self) -> &mut RollbackLog {
        match self {
            ResidentLog::Sealed(s) => &mut s.appended,
            ResidentLog::Full(log) => log,
        }
    }

    /// Materializes the full [`RollbackLog`], decoding the sealed prefix if
    /// necessary and absorbing the appended entries (moved, their cached
    /// sizes preserved). Idempotent; every later call is a field access.
    ///
    /// # Errors
    ///
    /// Codec errors for a sealed prefix whose entries fail to decode.
    pub fn materialize(&mut self) -> Result<&mut RollbackLog, CoreError> {
        if let ResidentLog::Sealed(s) = self {
            let mut log = decode_entries(&s.retained, s.retained_entries, s.retained_size)?;
            log.absorb(std::mem::take(&mut s.appended));
            *self = ResidentLog::Full(log);
        }
        match self {
            ResidentLog::Full(log) => Ok(log),
            ResidentLog::Sealed(_) => unreachable!("materialized above"),
        }
    }

    /// Consumes the log, materializing if needed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ResidentLog::materialize`].
    pub fn into_log(mut self) -> Result<RollbackLog, CoreError> {
        self.materialize()?;
        match self {
            ResidentLog::Full(log) => Ok(log),
            ResidentLog::Sealed(_) => unreachable!("materialized above"),
        }
    }
}

/// The owned, volatile-memory working form of an agent record: every field
/// of [`AgentRecord`] with the rollback log kept as a [`ResidentLog`].
///
/// The platform's step path decodes a queue item into this once (lazily —
/// see [`LazyRecord`]), runs steps against it, and re-encodes it in
/// O(delta) via [`ResidentRecord::to_bytes`]. While an agent stays on a
/// node, the record additionally stays cached in memory between steps, so
/// the steady state neither decodes nor re-encodes anything but the delta.
#[derive(Debug, Clone)]
pub struct ResidentRecord {
    /// Unique id.
    pub id: AgentId,
    /// Behaviour type name (the agent's "code").
    pub agent_type: String,
    /// Node (location index) where results are reported.
    pub home: u32,
    /// Private data space (SRO + WRO).
    pub data: DataSpace,
    /// The (immutable) itinerary as its content-addressed wire span.
    pub itinerary: ItinerarySlot,
    /// Execution position.
    pub cursor: Cursor,
    /// Savepoint bookkeeping.
    pub table: SavepointTable,
    /// The rollback log (sealed or materialized).
    pub log: ResidentLog,
    /// Monotone counter of committed steps.
    pub step_seq: u64,
    /// Current status.
    pub status: AgentStatus,
    /// SRO capture mode for savepoints.
    pub logging_mode: LoggingMode,
    /// Which rollback mechanism this agent uses.
    pub rollback_mode: RollbackMode,
}

impl ResidentRecord {
    /// Parses a serialized record into resident form without decoding the
    /// log entries (see [`LazyRecord::parse`]).
    ///
    /// # Errors
    ///
    /// Codec errors for malformed records.
    pub fn from_bytes(bytes: &[u8]) -> Result<ResidentRecord, CoreError> {
        Ok(LazyRecord::parse(bytes)?.into_resident())
    }

    /// Wraps a fully decoded record (log materialized).
    ///
    /// # Errors
    ///
    /// Codec errors from encoding the itinerary into its slot form.
    pub fn from_record(rec: AgentRecord) -> Result<ResidentRecord, CoreError> {
        Ok(ResidentRecord {
            id: rec.id,
            agent_type: rec.agent_type,
            home: rec.home,
            data: rec.data,
            itinerary: ItinerarySlot::from_tree(rec.itinerary)?,
            cursor: rec.cursor,
            table: rec.table,
            log: ResidentLog::Full(rec.log),
            step_seq: rec.step_seq,
            status: rec.status,
            logging_mode: rec.logging_mode,
            rollback_mode: rec.rollback_mode,
        })
    }

    /// Converts into a fully decoded [`AgentRecord`], materializing the log
    /// if it is still sealed.
    ///
    /// # Errors
    ///
    /// Codec errors from the deferred log decode.
    pub fn into_record(self) -> Result<AgentRecord, CoreError> {
        Ok(AgentRecord {
            id: self.id,
            agent_type: self.agent_type,
            home: self.home,
            data: self.data,
            itinerary: self.itinerary.materialize()?,
            cursor: self.cursor,
            table: self.table,
            log: self.log.into_log()?,
            step_seq: self.step_seq,
            status: self.status,
            logging_mode: self.logging_mode,
            rollback_mode: self.rollback_mode,
        })
    }

    /// Applies a restore plan exactly like [`AgentRecord::apply_restore`]:
    /// SROs, cursor, savepoint bookkeeping, and status — the log is not
    /// touched (the planner already consumed its entries), so a sealed log
    /// stays sealed.
    pub fn apply_restore(&mut self, plan: crate::planner::RestorePlan) {
        self.data.restore_sro(plan.sro);
        self.cursor = plan.cursor;
        self.table.restore_from(&plan.table);
        // When the target was an ancestor's savepoint, the restored cursor
        // may already be inside nested subs entered before any step ran;
        // re-create their table frames as aliases of the target.
        let path = self.cursor.path();
        let subs: Vec<&str> = path.iter().skip(1).copied().collect();
        self.table.reconcile_with_path(&subs, plan.savepoint);
        self.status = AgentStatus::Forward;
    }

    /// Compacts the rollback log in place (materializing it first), exactly
    /// like [`AgentRecord::compact_log`].
    ///
    /// # Errors
    ///
    /// Codec errors from the deferred log decode.
    pub fn compact_log(&mut self) -> Result<crate::log::CompactionReport, CoreError> {
        let log = self.log.materialize()?;
        Ok(log.compact(self.data.shadow()))
    }

    /// Serializes the record — byte-identical to
    /// [`AgentRecord::to_bytes`] of the equivalent record.
    ///
    /// Sealed logs are **splice-encoded**: the retained entry bytes are
    /// copied verbatim, entries appended since the last encode are encoded
    /// once (O(delta)), and the freshly encoded span — delimited by the
    /// appended entries' cached sizes — is folded into the retained bytes,
    /// so the *next* encode's delta starts empty. A **materialized** log is
    /// encoded entry by entry, and — for a record in forward execution,
    /// where everything after this point only appends — the freshly encoded
    /// entry section is installed as a new seal, so one post-materialization
    /// encode buys the O(delta) path back for the rest of the residence.
    /// (Rolling-back records stay materialized: the planner consumes
    /// entries every round.) Takes `&mut self` for exactly these folds; the
    /// output bytes are the same with or without them.
    ///
    /// # Errors
    ///
    /// Codec errors only.
    pub fn to_bytes(&mut self) -> Result<Vec<u8>, CoreError> {
        self.encode(true)
    }

    /// Like [`ResidentRecord::to_bytes`], for a record that is about to
    /// leave this memory (remote transfer): identical output bytes, but the
    /// fold/reseal cache-priming — an O(log) copy whose beneficiary would
    /// be the next local encode — is skipped.
    ///
    /// # Errors
    ///
    /// Codec errors only.
    pub fn to_transfer_bytes(&mut self) -> Result<Vec<u8>, CoreError> {
        self.encode(false)
    }

    fn encode(&mut self, retain: bool) -> Result<Vec<u8>, CoreError> {
        let cap = 256 + self.log.size_bytes() + self.data.approx_size();
        let mut ser = mar_wire::BinSerializer::with_capacity(cap);
        ser.begin_struct(RECORD_FIELDS as usize);
        ser.value(&self.id)?;
        ser.value(&self.agent_type)?;
        ser.value(&self.home)?;
        ser.value(&self.data)?;
        // The itinerary is immutable: its captured wire span is spliced in
        // verbatim (identical bytes to re-encoding, without the encode).
        ser.raw_value_bytes(self.itinerary.as_bytes());
        ser.value(&self.cursor)?;
        ser.value(&self.table)?;
        // The log field: splice for sealed logs, entry-by-entry (the log's
        // flat wire layout) for materialized ones.
        let mut fold: Option<(usize, usize)> = None;
        let mut reseal: Option<(usize, usize, usize, usize)> = None;
        match &self.log {
            ResidentLog::Full(log) => {
                let size = log.size_bytes();
                ser.begin_struct(LOG_FIELDS as usize);
                ser.begin_seq(log.len());
                let entries_start = ser.len();
                for entry in log.iter() {
                    ser.value(entry)?;
                }
                let entries_end = ser.len();
                ser.value(&size)?;
                if retain && matches!(self.status, AgentStatus::Forward) {
                    reseal = Some((entries_start, entries_end, log.len(), size));
                }
            }
            ResidentLog::Sealed(s) => {
                let delta_len = s.appended.size_bytes();
                let total_entries = s.retained_entries + s.appended.len();
                let total_size = s.retained_size + delta_len;
                ser.begin_struct(LOG_FIELDS as usize);
                ser.begin_seq(total_entries);
                ser.raw_value_bytes(&s.retained);
                let delta_start = ser.len();
                for entry in s.appended.iter() {
                    ser.value(entry)?;
                }
                debug_assert_eq!(
                    ser.len() - delta_start,
                    delta_len,
                    "cached entry sizes must delimit the spliced span exactly"
                );
                fold = Some((delta_start, delta_len));
                ser.value(&total_size)?;
            }
        }
        ser.value(&self.step_seq)?;
        ser.value(&self.status)?;
        ser.value(&self.logging_mode)?;
        ser.value(&self.rollback_mode)?;
        let out = ser.into_bytes();
        let fold = if retain { fold } else { None };
        if let (Some((delta_start, delta_len)), ResidentLog::Sealed(s)) = (fold, &mut self.log) {
            // Fold the freshly encoded entries into the retained bytes: the
            // next encode splices them instead of re-encoding.
            s.retained
                .extend_from_slice(&out[delta_start..delta_start + delta_len]);
            s.retained_entries += s.appended.len();
            s.retained_size += delta_len;
            s.appended = RollbackLog::new();
        }
        if let Some((start, end, entries, size)) = reseal {
            self.log = ResidentLog::Sealed(SealedLog {
                retained: out[start..end].to_vec(),
                retained_entries: entries,
                retained_size: size,
                appended: RollbackLog::new(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comp::{CompOp, EntryKind};
    use mar_itinerary::samples;
    use mar_wire::Value;

    fn record() -> AgentRecord {
        let mut data = DataSpace::new();
        data.set_sro("notes", Value::list([Value::from(1i64)]));
        data.set_wro("wallet", Value::from(100i64));
        let mut rec = AgentRecord::new(
            AgentId(7),
            "shopper",
            0,
            data,
            samples::fig6(),
            LoggingMode::State,
            RollbackMode::Optimized,
        );
        let cursor = rec.cursor.clone();
        rec.table.on_enter_sub(
            "S",
            &mut rec.data,
            &cursor,
            &mut rec.log,
            LoggingMode::State,
        );
        for i in 0..3u64 {
            rec.log.append_step(
                1,
                i,
                "m",
                [(EntryKind::Resource, CompOp::new("undo", Value::from(1i64)))],
                vec![],
            );
            rec.step_seq += 1;
            rec.table.on_step_committed();
        }
        rec
    }

    #[test]
    fn lazy_parse_reads_everything_but_the_log() {
        let rec = record();
        let bytes = rec.to_bytes().unwrap();
        let lazy = LazyRecord::parse(&bytes).unwrap();
        assert_eq!(lazy.id, rec.id);
        assert_eq!(lazy.agent_type, "shopper");
        assert_eq!(lazy.data, rec.data);
        assert_eq!(lazy.cursor, rec.cursor);
        assert_eq!(lazy.table, rec.table);
        assert_eq!(lazy.step_seq, rec.step_seq);
        assert_eq!(lazy.status, rec.status);
        assert_eq!(lazy.log_entry_count(), rec.log.len());
        assert_eq!(lazy.log_size_bytes(), rec.log.size_bytes());
        // The log slice points into the input buffer.
        let range = bytes.as_ptr_range();
        assert!(range.contains(&lazy.agent_type.as_ptr()));
        // And full decode restores the record exactly.
        assert_eq!(lazy.into_record().unwrap(), rec);
    }

    #[test]
    fn lazy_parse_rejects_garbage_and_truncation() {
        assert!(LazyRecord::parse(&[0xff, 0x01]).is_err());
        let bytes = record().to_bytes().unwrap();
        assert!(LazyRecord::parse(&bytes[..bytes.len() - 1]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(LazyRecord::parse(&trailing).is_err());
    }

    #[test]
    fn sealed_resident_roundtrips_byte_identically() {
        let rec = record();
        let bytes = rec.to_bytes().unwrap();
        let mut resident = ResidentRecord::from_bytes(&bytes).unwrap();
        assert!(resident.log.is_sealed());
        assert_eq!(resident.log.len(), rec.log.len());
        assert_eq!(resident.log.size_bytes(), rec.log.size_bytes());
        // Unchanged: encode is a pure splice of the retained bytes.
        assert_eq!(resident.to_bytes().unwrap(), bytes);
        // And again (the fold must be idempotent for no-op deltas).
        assert_eq!(resident.to_bytes().unwrap(), bytes);
    }

    #[test]
    fn splice_encode_equals_full_reencode_after_appends() {
        let rec = record();
        let bytes = rec.to_bytes().unwrap();
        let mut resident = ResidentRecord::from_bytes(&bytes).unwrap();
        // Mirror a committed step on both representations.
        let mut full = rec.clone();
        for r in 0..2 {
            let ops = [(
                EntryKind::Agent,
                CompOp::new("give_back", Value::from(r as i64)),
            )];
            resident.log.for_append().append_step(
                2,
                resident.step_seq,
                "buy",
                ops.clone(),
                vec![3],
            );
            resident.step_seq += 1;
            resident
                .data
                .set_sro("notes", Value::list([Value::from(r as i64)]));
            full.log.append_step(2, full.step_seq, "buy", ops, vec![3]);
            full.step_seq += 1;
            full.data
                .set_sro("notes", Value::list([Value::from(r as i64)]));
            let spliced = resident.to_bytes().unwrap();
            assert_eq!(spliced, full.to_bytes().unwrap(), "round {r}");
            assert!(resident.log.is_sealed(), "appends must not unseal");
        }
    }

    #[test]
    fn materialize_merges_appended_entries() {
        let rec = record();
        let bytes = rec.to_bytes().unwrap();
        let mut resident = ResidentRecord::from_bytes(&bytes).unwrap();
        resident.log.for_append().append_step(
            2,
            resident.step_seq,
            "buy",
            [(EntryKind::Resource, CompOp::new("undo", Value::Null))],
            vec![],
        );
        resident.step_seq += 1;
        let mut full = rec.clone();
        full.log.append_step(
            2,
            full.step_seq,
            "buy",
            [(EntryKind::Resource, CompOp::new("undo", Value::Null))],
            vec![],
        );
        full.step_seq += 1;
        let log = resident.log.materialize().unwrap();
        assert_eq!(*log, full.log);
        assert_eq!(log.size_bytes(), full.log.size_bytes());
        // Materialized records encode identically too.
        assert_eq!(resident.to_bytes().unwrap(), full.to_bytes().unwrap());
        assert_eq!(resident.into_record().unwrap(), full);
    }

    #[test]
    fn from_record_roundtrip() {
        let rec = record();
        let mut resident = ResidentRecord::from_record(rec.clone()).unwrap();
        assert!(!resident.log.is_sealed());
        assert_eq!(resident.to_bytes().unwrap(), rec.to_bytes().unwrap());
        assert_eq!(resident.into_record().unwrap(), rec);
    }

    #[test]
    fn slot_hash_is_stable_across_construction_paths() {
        // Same tree, three roads to a slot: from the decoded tree, from the
        // span captured out of an encoded record, and from a tree rebuilt
        // by decode. All must agree on bytes and hash — the hash is a wire
        // commitment shared between nodes.
        let tree = samples::fig6();
        let from_tree = ItinerarySlot::from_tree(tree.clone()).unwrap();
        let bytes = record().to_bytes().unwrap();
        let parsed = LazyRecord::parse(&bytes).unwrap().itinerary;
        let rebuilt = ItinerarySlot::from_tree(parsed.materialize().unwrap()).unwrap();
        assert_eq!(from_tree, parsed);
        assert_eq!(from_tree.hash(), parsed.hash());
        assert_eq!(from_tree.hash(), rebuilt.hash());
        assert_eq!(
            from_tree.hash(),
            mar_wire::content_hash64(parsed.as_bytes())
        );
    }

    #[test]
    fn slot_clones_share_one_decode() {
        let bytes = record().to_bytes().unwrap();
        let slot = LazyRecord::parse(&bytes).unwrap().itinerary;
        assert!(!slot.is_decoded(), "parse must not decode the itinerary");
        let clone = slot.clone();
        let tree = clone.tree().unwrap();
        // Decoding through the clone materializes the original too.
        assert!(slot.is_decoded());
        assert!(Arc::ptr_eq(&tree, &slot.tree().unwrap()));
        assert_eq!(*tree, samples::fig6());
    }

    #[test]
    fn slot_rejects_reference_spans() {
        let stripped = crate::itinspan::encode_ref(0xDEAD_BEEF);
        assert!(ItinerarySlot::from_span(&stripped).is_err());
    }
}
