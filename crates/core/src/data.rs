//! The agent's private data space: strongly and weakly reversible objects
//! (paper §4.1), plus the delta machinery for transition logging (§4.2).
//!
//! * **Strongly reversible objects (SRO)** are restored from a before-image
//!   kept in savepoint entries; compensating operations must not touch them
//!   during rollback.
//! * **Weakly reversible objects (WRO)** cannot be restored from an image —
//!   the rollback itself produces new information (fresh digital coins,
//!   credit notes, fees) that must flow into them — so they are compensated
//!   by agent/mixed compensation entries.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use mar_wire::Value;

/// A map of named objects (the paper's private data objects).
pub type ObjectMap = BTreeMap<String, Value>;

/// The private data space of an agent.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DataSpace {
    sro: ObjectMap,
    wro: ObjectMap,
    /// SRO state as of the most recent savepoint; maintained only under
    /// transition logging, where savepoint entries hold deltas against it.
    sro_shadow: Option<ObjectMap>,
}

impl DataSpace {
    /// Creates an empty data space.
    pub fn new() -> Self {
        DataSpace::default()
    }

    /// Declares/overwrites a strongly reversible object.
    pub fn set_sro(&mut self, name: impl Into<String>, value: Value) {
        self.sro.insert(name.into(), value);
    }

    /// Declares/overwrites a weakly reversible object.
    pub fn set_wro(&mut self, name: impl Into<String>, value: Value) {
        self.wro.insert(name.into(), value);
    }

    /// Reads a strongly reversible object.
    pub fn sro(&self, name: &str) -> Option<&Value> {
        self.sro.get(name)
    }

    /// Reads a weakly reversible object.
    pub fn wro(&self, name: &str) -> Option<&Value> {
        self.wro.get(name)
    }

    /// Mutable access to a strongly reversible object.
    pub fn sro_mut(&mut self, name: &str) -> Option<&mut Value> {
        self.sro.get_mut(name)
    }

    /// Mutable access to a weakly reversible object.
    pub fn wro_mut(&mut self, name: &str) -> Option<&mut Value> {
        self.wro.get_mut(name)
    }

    /// The whole SRO map.
    pub fn sro_map(&self) -> &ObjectMap {
        &self.sro
    }

    /// The whole WRO map (compensating operations receive this view).
    pub fn wro_map(&self) -> &ObjectMap {
        &self.wro
    }

    /// Mutable WRO map — handed to agent/mixed compensation handlers.
    pub fn wro_map_mut(&mut self) -> &mut ObjectMap {
        &mut self.wro
    }

    /// Mutable SRO map — for forward execution only; rollback never touches
    /// SROs until the savepoint is reached.
    pub fn sro_map_mut(&mut self) -> &mut ObjectMap {
        &mut self.sro
    }

    /// Replaces the SRO state (savepoint restore).
    pub fn restore_sro(&mut self, image: ObjectMap) {
        if self.sro_shadow.is_some() {
            self.sro_shadow = Some(image.clone());
        }
        self.sro = image;
    }

    /// A full copy of the SRO state (state logging image).
    pub fn sro_image(&self) -> ObjectMap {
        self.sro.clone()
    }

    /// Enables transition logging: from now on the data space tracks the
    /// SRO state of the last savepoint.
    pub fn enable_shadow(&mut self) {
        if self.sro_shadow.is_none() {
            self.sro_shadow = Some(self.sro.clone());
        }
    }

    /// The SRO state at the last savepoint (transition logging only).
    pub fn shadow(&self) -> Option<&ObjectMap> {
        self.sro_shadow.as_ref()
    }

    /// Computes the backward delta `current → shadow` for a new savepoint
    /// entry and advances the shadow to the current state. Returns `None`
    /// when transition logging is not enabled.
    pub fn take_transition_delta(&mut self) -> Option<SroDelta> {
        let shadow = self.sro_shadow.as_mut()?;
        let delta = SroDelta::diff(&self.sro, shadow);
        *shadow = self.sro.clone();
        Some(delta)
    }

    /// Applies a popped savepoint's backward delta to the shadow (the
    /// paper's "the state of the strongly reversible objects has to be
    /// updated every time an agent savepoint entry is read during the
    /// rollback").
    pub fn apply_delta_to_shadow(&mut self, delta: &SroDelta) {
        if let Some(shadow) = self.sro_shadow.as_mut() {
            delta.apply(shadow);
        }
    }

    /// Approximate encoded size of the data space in bytes.
    pub fn approx_size(&self) -> usize {
        mar_wire::encoded_size(self).unwrap_or(0)
    }
}

/// A backward delta between two SRO states: applying it to the *from* state
/// yields the *to* state. Savepoint entries store `S_k → S_{k-1}` deltas
/// under transition logging.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SroDelta {
    /// Keys whose value differs in the target state (target values).
    pub changed: ObjectMap,
    /// Keys present in the source state but absent in the target.
    pub removed: BTreeSet<String>,
}

impl SroDelta {
    /// Computes the delta transforming `from` into `to`.
    pub fn diff(from: &ObjectMap, to: &ObjectMap) -> SroDelta {
        let mut changed = ObjectMap::new();
        let mut removed = BTreeSet::new();
        for (k, v) in to {
            if from.get(k) != Some(v) {
                changed.insert(k.clone(), v.clone());
            }
        }
        for k in from.keys() {
            if !to.contains_key(k) {
                removed.insert(k.clone());
            }
        }
        SroDelta { changed, removed }
    }

    /// Applies the delta in place.
    pub fn apply(&self, state: &mut ObjectMap) {
        for (k, v) in &self.changed {
            state.insert(k.clone(), v.clone());
        }
        for k in &self.removed {
            state.remove(k);
        }
    }

    /// Composes `self` (applied first) with `then`: the result transforms
    /// `S_a → S_c` when `self: S_a → S_b` and `then: S_b → S_c`.
    ///
    /// Used when the savepoint of a completed sub-itinerary is removed from
    /// the log under transition logging — the paper's "non-trivial task"
    /// (§4.4.2): the neighbouring delta must absorb the removed one.
    pub fn compose(&self, then: &SroDelta) -> SroDelta {
        let mut changed = then.changed.clone();
        for (k, v) in &self.changed {
            if !then.changed.contains_key(k) && !then.removed.contains(k) {
                changed.insert(k.clone(), v.clone());
            }
        }
        let mut removed: BTreeSet<String> = then.removed.clone();
        for k in &self.removed {
            if !then.changed.contains_key(k) {
                removed.insert(k.clone());
            }
        }
        // A key both removed and re-added later is just "changed".
        removed.retain(|k| !changed.contains_key(k));
        SroDelta { changed, removed }
    }

    /// True if the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty() && self.removed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn m(pairs: &[(&str, i64)]) -> ObjectMap {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), Value::from(*v)))
            .collect()
    }

    #[test]
    fn sro_wro_are_separate() {
        let mut d = DataSpace::new();
        d.set_sro("x", Value::from(1i64));
        d.set_wro("x", Value::from(2i64));
        assert_eq!(d.sro("x").and_then(Value::as_i64), Some(1));
        assert_eq!(d.wro("x").and_then(Value::as_i64), Some(2));
    }

    #[test]
    fn diff_and_apply_roundtrip() {
        let from = m(&[("a", 1), ("b", 2), ("c", 3)]);
        let to = m(&[("a", 1), ("b", 9), ("d", 4)]);
        let delta = SroDelta::diff(&from, &to);
        let mut state = from.clone();
        delta.apply(&mut state);
        assert_eq!(state, to);
        // Delta is minimal: unchanged key "a" not included.
        assert!(!delta.changed.contains_key("a"));
        assert_eq!(delta.removed.iter().collect::<Vec<_>>(), [&"c".to_owned()]);
    }

    #[test]
    fn empty_delta_for_identical_states() {
        let s = m(&[("a", 1)]);
        assert!(SroDelta::diff(&s, &s).is_empty());
    }

    #[test]
    fn shadow_tracks_savepoints() {
        let mut d = DataSpace::new();
        d.set_sro("v", Value::from(1i64));
        d.enable_shadow();
        // Mutate after the savepoint.
        d.set_sro("v", Value::from(2i64));
        let delta = d.take_transition_delta().unwrap();
        // The delta goes backward: current(2) → shadow(1).
        let mut cur = d.sro_image();
        delta.apply(&mut cur);
        assert_eq!(cur.get("v").and_then(Value::as_i64), Some(1));
        // Shadow advanced to the current state.
        assert_eq!(
            d.shadow().unwrap().get("v").and_then(Value::as_i64),
            Some(2)
        );
    }

    #[test]
    fn no_shadow_without_transition_logging() {
        let mut d = DataSpace::new();
        d.set_sro("v", Value::from(1i64));
        assert!(d.take_transition_delta().is_none());
    }

    #[test]
    fn restore_resets_shadow_too() {
        let mut d = DataSpace::new();
        d.set_sro("v", Value::from(1i64));
        d.enable_shadow();
        d.set_sro("v", Value::from(2i64));
        d.restore_sro(m(&[("v", 7)]));
        assert_eq!(d.sro("v").and_then(Value::as_i64), Some(7));
        assert_eq!(
            d.shadow().unwrap().get("v").and_then(Value::as_i64),
            Some(7)
        );
    }

    fn map_strategy() -> impl Strategy<Value = ObjectMap> {
        proptest::collection::btree_map("[a-e]", any::<i64>().prop_map(Value::from), 0..5)
    }

    proptest! {
        #[test]
        fn compose_equals_sequential_apply(
            a in map_strategy(),
            b in map_strategy(),
            c in map_strategy(),
        ) {
            let ab = SroDelta::diff(&a, &b);
            let bc = SroDelta::diff(&b, &c);
            let ac = ab.compose(&bc);
            let mut s1 = a.clone();
            ab.apply(&mut s1);
            bc.apply(&mut s1);
            let mut s2 = a.clone();
            ac.apply(&mut s2);
            prop_assert_eq!(s1, s2);
        }

        #[test]
        fn diff_apply_always_reaches_target(a in map_strategy(), b in map_strategy()) {
            let d = SroDelta::diff(&a, &b);
            let mut s = a.clone();
            d.apply(&mut s);
            prop_assert_eq!(s, b);
        }
    }
}
