//! An executable specification of the rollback log.
//!
//! [`NaiveLog`] is the original flat-vector implementation of the rollback
//! log, kept verbatim as the reference model for the segment-indexed
//! [`RollbackLog`](crate::log::RollbackLog): every query is a linear scan
//! and every size is recomputed by encoding, which makes its behaviour easy
//! to audit. The model-based property tests (`crates/core/tests/`) drive
//! both implementations with identical operation sequences and require
//! observational equivalence — including byte-identical serialization — and
//! the micro benches use it as the baseline the segment index is measured
//! against.

use serde::{Deserialize, Serialize};

use crate::data::DataSpace;
use crate::error::CoreError;
use crate::log::entry::{EosEntry, LogEntry, SpEntry, SroPayload};
use crate::savepoint::SavepointId;

/// Flat-vector rollback log: the specification implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct NaiveLog {
    entries: Vec<LogEntry>,
    bytes: usize,
}

impl NaiveLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        NaiveLog::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: LogEntry) {
        self.bytes += entry.encoded_size();
        self.entries.push(entry);
    }

    /// Removes and returns the last entry.
    pub fn pop(&mut self) -> Option<LogEntry> {
        let e = self.entries.pop()?;
        self.bytes = self.bytes.saturating_sub(e.encoded_size());
        Some(e)
    }

    /// The last entry, if any.
    pub fn last(&self) -> Option<&LogEntry> {
        self.entries.last()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total encoded size of all entries in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter()
    }

    /// Discards everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }

    /// Finds a savepoint entry by id (linear scan).
    pub fn find_savepoint(&self, id: SavepointId) -> Option<&SpEntry> {
        self.entries.iter().find_map(|e| match e {
            LogEntry::Savepoint(sp) if sp.id == id => Some(sp),
            _ => None,
        })
    }

    /// Whether the log contains the savepoint.
    pub fn contains_savepoint(&self, id: SavepointId) -> bool {
        self.find_savepoint(id).is_some()
    }

    /// The id of the most recent data-bearing (non-marker) savepoint.
    pub fn last_data_savepoint(&self) -> Option<SavepointId> {
        self.entries.iter().rev().find_map(|e| match e {
            LogEntry::Savepoint(sp) if !sp.sro.is_marker() => Some(sp.id),
            _ => None,
        })
    }

    /// The most recent end-of-step entry.
    pub fn last_eos(&self) -> Option<&EosEntry> {
        self.entries.iter().rev().find_map(|e| match e {
            LogEntry::EndOfStep(eos) => Some(eos),
            _ => None,
        })
    }

    /// Removes the savepoint entry `id` (§4.4.2 semantics; see
    /// [`RollbackLog::remove_savepoint`](crate::log::RollbackLog::remove_savepoint)).
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptLog`] on payload inconsistencies.
    pub fn remove_savepoint(
        &mut self,
        id: SavepointId,
        data: &mut DataSpace,
    ) -> Result<bool, CoreError> {
        let Some(idx) = self
            .entries
            .iter()
            .position(|e| matches!(e, LogEntry::Savepoint(sp) if sp.id == id))
        else {
            return Ok(false);
        };
        let LogEntry::Savepoint(removed) = self.entries.remove(idx) else {
            unreachable!("position matched a savepoint");
        };
        self.bytes = self
            .bytes
            .saturating_sub(LogEntry::Savepoint(removed.clone()).encoded_size());

        match &removed.sro {
            SroPayload::Delta(delta) => {
                let next_sp = self.entries[idx..].iter_mut().find_map(|e| match e {
                    LogEntry::Savepoint(sp) if matches!(sp.sro, SroPayload::Delta(_)) => Some(sp),
                    _ => None,
                });
                match next_sp {
                    Some(sp) => {
                        let SroPayload::Delta(next_delta) = &sp.sro else {
                            unreachable!("matched delta payload");
                        };
                        let merged = next_delta.compose(delta);
                        let old_size = LogEntry::Savepoint(sp.clone()).encoded_size();
                        sp.sro = SroPayload::Delta(merged);
                        let new_size = LogEntry::Savepoint(sp.clone()).encoded_size();
                        self.bytes = self.bytes.saturating_sub(old_size) + new_size;
                    }
                    None => {
                        data.apply_delta_to_shadow(delta);
                    }
                }
            }
            SroPayload::Full(image) => {
                for e in self.entries[idx..].iter_mut() {
                    if let LogEntry::Savepoint(sp) = e {
                        if sp.sro == SroPayload::Ref(id) {
                            let old_size = LogEntry::Savepoint(sp.clone()).encoded_size();
                            sp.sro = SroPayload::Full(image.clone());
                            let new_size = LogEntry::Savepoint(sp.clone()).encoded_size();
                            self.bytes = self.bytes.saturating_sub(old_size) + new_size;
                        }
                    }
                }
            }
            SroPayload::Ref(_) => {}
        }
        Ok(true)
    }
}
