//! An executable specification of the rollback log.
//!
//! [`NaiveLog`] is the original flat-vector implementation of the rollback
//! log, kept verbatim as the reference model for the segment-indexed
//! [`RollbackLog`](crate::log::RollbackLog): every query is a linear scan
//! and every size is recomputed by encoding, which makes its behaviour easy
//! to audit. The model-based property tests (`crates/core/tests/`) drive
//! both implementations with identical operation sequences and require
//! observational equivalence — including byte-identical serialization — and
//! the micro benches use it as the baseline the segment index is measured
//! against.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::data::{DataSpace, ObjectMap};
use crate::error::CoreError;
use crate::log::compact::{minimize_delta, resolve_root, CompactionReport, Resolved};
use crate::log::entry::{EosEntry, LogEntry, SpEntry, SroPayload};
use crate::savepoint::SavepointId;

/// Flat-vector rollback log: the specification implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct NaiveLog {
    entries: Vec<LogEntry>,
    bytes: usize,
}

impl NaiveLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        NaiveLog::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: LogEntry) {
        self.bytes += entry.encoded_size();
        self.entries.push(entry);
    }

    /// Removes and returns the last entry.
    pub fn pop(&mut self) -> Option<LogEntry> {
        let e = self.entries.pop()?;
        self.bytes = self.bytes.saturating_sub(e.encoded_size());
        Some(e)
    }

    /// The last entry, if any.
    pub fn last(&self) -> Option<&LogEntry> {
        self.entries.last()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total encoded size of all entries in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter()
    }

    /// Discards everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }

    /// Finds a savepoint entry by id (linear scan).
    pub fn find_savepoint(&self, id: SavepointId) -> Option<&SpEntry> {
        self.entries.iter().find_map(|e| match e {
            LogEntry::Savepoint(sp) if sp.id == id => Some(sp),
            _ => None,
        })
    }

    /// Whether the log contains the savepoint.
    pub fn contains_savepoint(&self, id: SavepointId) -> bool {
        self.find_savepoint(id).is_some()
    }

    /// The id of the most recent data-bearing (non-marker) savepoint.
    pub fn last_data_savepoint(&self) -> Option<SavepointId> {
        self.entries.iter().rev().find_map(|e| match e {
            LogEntry::Savepoint(sp) if !sp.sro.is_marker() => Some(sp.id),
            _ => None,
        })
    }

    /// The most recent end-of-step entry.
    pub fn last_eos(&self) -> Option<&EosEntry> {
        self.entries.iter().rev().find_map(|e| match e {
            LogEntry::EndOfStep(eos) => Some(eos),
            _ => None,
        })
    }

    /// Removes the savepoint entry `id` (§4.4.2 semantics; see
    /// [`RollbackLog::remove_savepoint`](crate::log::RollbackLog::remove_savepoint)).
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptLog`] on payload inconsistencies.
    pub fn remove_savepoint(
        &mut self,
        id: SavepointId,
        data: &mut DataSpace,
    ) -> Result<bool, CoreError> {
        let Some(idx) = self
            .entries
            .iter()
            .position(|e| matches!(e, LogEntry::Savepoint(sp) if sp.id == id))
        else {
            return Ok(false);
        };
        let LogEntry::Savepoint(removed) = self.entries.remove(idx) else {
            unreachable!("position matched a savepoint");
        };
        self.bytes = self
            .bytes
            .saturating_sub(LogEntry::Savepoint(removed.clone()).encoded_size());

        match &removed.sro {
            SroPayload::Delta(delta) => {
                // Mirror of the production log: the first delta savepoint
                // above composes the removed delta in; a marker referencing
                // the removed savepoint becomes the delta's carrier instead
                // (further such markers are re-pointed at the carrier).
                let carrier = self.entries[idx..].iter().position(|e| match e {
                    LogEntry::Savepoint(sp) => match &sp.sro {
                        SroPayload::Delta(_) => true,
                        SroPayload::Ref(r) => *r == id,
                        SroPayload::Full(_) => false,
                    },
                    _ => false,
                });
                match carrier {
                    Some(off) => {
                        let j = idx + off;
                        let LogEntry::Savepoint(sp) = &mut self.entries[j] else {
                            unreachable!("position matched a savepoint");
                        };
                        let carrier_id = sp.id;
                        let old_size = LogEntry::Savepoint(sp.clone()).encoded_size();
                        sp.sro = match &sp.sro {
                            SroPayload::Delta(next) => SroPayload::Delta(next.compose(delta)),
                            SroPayload::Ref(_) => SroPayload::Delta(delta.clone()),
                            SroPayload::Full(_) => {
                                unreachable!("carrier scan matched delta or ref")
                            }
                        };
                        let new_size = LogEntry::Savepoint(sp.clone()).encoded_size();
                        self.bytes = self.bytes.saturating_sub(old_size) + new_size;
                        for e in self.entries[j + 1..].iter_mut() {
                            if let LogEntry::Savepoint(sp) = e {
                                if sp.sro == SroPayload::Ref(id) {
                                    let old_size = LogEntry::Savepoint(sp.clone()).encoded_size();
                                    sp.sro = SroPayload::Ref(carrier_id);
                                    let new_size = LogEntry::Savepoint(sp.clone()).encoded_size();
                                    self.bytes = self.bytes.saturating_sub(old_size) + new_size;
                                }
                            }
                        }
                    }
                    None => {
                        data.apply_delta_to_shadow(delta);
                    }
                }
            }
            SroPayload::Full(image) => {
                for e in self.entries[idx..].iter_mut() {
                    if let LogEntry::Savepoint(sp) = e {
                        if sp.sro == SroPayload::Ref(id) {
                            let old_size = LogEntry::Savepoint(sp.clone()).encoded_size();
                            sp.sro = SroPayload::Full(image.clone());
                            let new_size = LogEntry::Savepoint(sp.clone()).encoded_size();
                            self.bytes = self.bytes.saturating_sub(old_size) + new_size;
                        }
                    }
                }
            }
            SroPayload::Ref(target) => {
                // Mirror of the production log: re-point newer markers that
                // referenced the removed marker so they never dangle.
                let target = *target;
                for e in self.entries[idx..].iter_mut() {
                    if let LogEntry::Savepoint(sp) = e {
                        if sp.sro == SroPayload::Ref(id) {
                            let old_size = LogEntry::Savepoint(sp.clone()).encoded_size();
                            sp.sro = SroPayload::Ref(target);
                            let new_size = LogEntry::Savepoint(sp.clone()).encoded_size();
                            self.bytes = self.bytes.saturating_sub(old_size) + new_size;
                        }
                    }
                }
            }
        }
        Ok(true)
    }

    /// Compacts the log: the straight-line specification of
    /// [`RollbackLog::compact`](crate::log::RollbackLog::compact), against
    /// which the model-based property tests check the segment-indexed
    /// implementation (including byte-identical serialization afterwards).
    ///
    /// Everything here is a plain scan over the flat entry vector, and the
    /// byte total is recomputed from scratch at the end by re-encoding
    /// every entry.
    pub fn compact(&mut self, shadow: Option<&ObjectMap>) -> CompactionReport {
        let sp_positions: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| matches!(e, LogEntry::Savepoint(_)).then_some(i))
            .collect();
        let mut report = CompactionReport {
            savepoints: sp_positions.len(),
            bytes_before: self.bytes,
            ..CompactionReport::default()
        };

        // Pass 1 — delta re-minimization (see the production docs): walk
        // newest → oldest reconstructing the SRO state at each savepoint
        // from the shadow, exactly like the rollback shadow walk.
        if let Some(shadow) = shadow {
            let mut state = shadow.clone();
            for &i in sp_positions.iter().rev() {
                let LogEntry::Savepoint(sp) = &mut self.entries[i] else {
                    unreachable!("positions selected above");
                };
                if let SroPayload::Delta(d) = &sp.sro {
                    let (minimal, below, pruned) = minimize_delta(d, &state);
                    if pruned > 0 {
                        report.delta_keys_pruned += pruned;
                        sp.sro = SroPayload::Delta(minimal);
                    }
                    state = below;
                }
            }
        }

        // Pass 2 — demotion and marker-chain collapse, oldest → newest.
        let mut seen: BTreeMap<SavepointId, Resolved> = BTreeMap::new();
        let mut last_data: Option<(SavepointId, Option<ObjectMap>)> = None;
        let bound = sp_positions.len();
        for &i in &sp_positions {
            let LogEntry::Savepoint(sp) = &mut self.entries[i] else {
                unreachable!("positions selected above");
            };
            match sp.sro.clone() {
                SroPayload::Ref(t) => {
                    let resolved = match resolve_root(&seen, t, bound) {
                        Some(root) if root != t => {
                            report.refs_collapsed += 1;
                            sp.sro = SroPayload::Ref(root);
                            root
                        }
                        _ => t,
                    };
                    seen.insert(sp.id, Resolved::Marker(resolved));
                }
                SroPayload::Full(img) => {
                    match &last_data {
                        Some((d_id, Some(d_img))) if *d_img == img => {
                            report.images_demoted += 1;
                            sp.sro = SroPayload::Ref(*d_id);
                            seen.insert(sp.id, Resolved::Marker(*d_id));
                        }
                        _ => {
                            seen.insert(sp.id, Resolved::Data);
                            last_data = Some((sp.id, Some(img)));
                        }
                    };
                }
                SroPayload::Delta(d) => match &last_data {
                    Some((d_id, _)) if d.is_empty() => {
                        report.deltas_demoted += 1;
                        sp.sro = SroPayload::Ref(*d_id);
                        seen.insert(sp.id, Resolved::Marker(*d_id));
                    }
                    _ => {
                        seen.insert(sp.id, Resolved::Data);
                        last_data = Some((sp.id, None));
                    }
                },
            }
        }

        // Spec-style accounting: recount everything.
        self.bytes = self.entries.iter().map(LogEntry::encoded_size).sum();
        report.bytes_after = self.bytes;
        report
    }
}
