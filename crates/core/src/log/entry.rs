//! Log entry types: SP, BOS, OE, EOS (Fig. 2).

use mar_itinerary::Cursor;
use serde::{Deserialize, Serialize};

use crate::comp::{CompOp, EntryKind};
use crate::data::{ObjectMap, SroDelta};
use crate::savepoint::{SavepointId, SavepointTable};

/// The strongly-reversible-object payload of a savepoint entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SroPayload {
    /// A complete SRO image (state logging).
    Full(ObjectMap),
    /// Backward delta to the previous savepoint (transition logging).
    Delta(SroDelta),
    /// A *marker* (§4.4.2): the SRO state equals that of the referenced
    /// savepoint because no step committed in between. Stores no data.
    Ref(SavepointId),
}

impl SroPayload {
    /// True for marker payloads.
    pub fn is_marker(&self) -> bool {
        matches!(self, SroPayload::Ref(_))
    }
}

/// Savepoint entry: a point the agent can be rolled back to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpEntry {
    /// Unique savepoint identifier.
    pub id: SavepointId,
    /// The sub-itinerary this savepoint was created for (`None` for
    /// explicit, program-logic savepoints).
    pub sub_id: Option<String>,
    /// `true` if requested by the agent program, `false` if constituted
    /// automatically at a sub-itinerary boundary.
    pub explicit: bool,
    /// Cursor snapshot: where forward execution resumes after rollback.
    pub cursor: Cursor,
    /// Savepoint bookkeeping snapshot (active sub-itineraries and their
    /// savepoints) as of this point.
    pub table: SavepointTable,
    /// The SRO restore payload.
    pub sro: SroPayload,
}

/// Begin-of-step entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BosEntry {
    /// Node that executed the step.
    pub node: u32,
    /// Monotone step number of the agent.
    pub step_seq: u64,
    /// The step method (diagnostics).
    pub method: String,
}

/// Operation entry: one compensating operation for a committed step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpEntry {
    /// Entry type (RCE / ACE / MCE, §4.4.1).
    pub kind: EntryKind,
    /// The compensating operation and its parameters.
    pub op: CompOp,
    /// The step this entry belongs to.
    pub step_seq: u64,
}

/// End-of-step entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EosEntry {
    /// Node that executed the step (where resource compensation must run).
    pub node: u32,
    /// Monotone step number.
    pub step_seq: u64,
    /// The step method (diagnostics).
    pub method: String,
    /// Flag: does this step's compensation contain a mixed entry? (The
    /// §4.4.1 optimization examines only this flag instead of scanning the
    /// step's operation entries.)
    pub has_mixed: bool,
    /// Alternative nodes where the resource compensation could run
    /// (the §4.3 fault-tolerance hook).
    pub alt_nodes: Vec<u32>,
}

/// One entry of the agent rollback log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogEntry {
    /// Savepoint entry (SP).
    Savepoint(SpEntry),
    /// Begin-of-step entry (BOS).
    BeginOfStep(BosEntry),
    /// Operation entry (OE).
    Operation(OpEntry),
    /// End-of-step entry (EOS).
    EndOfStep(EosEntry),
}

impl LogEntry {
    /// Short tag for diagnostics and stats.
    pub fn tag(&self) -> &'static str {
        match self {
            LogEntry::Savepoint(_) => "SP",
            LogEntry::BeginOfStep(_) => "BOS",
            LogEntry::Operation(_) => "OE",
            LogEntry::EndOfStep(_) => "EOS",
        }
    }

    /// The savepoint entry, if this is one.
    pub fn as_savepoint(&self) -> Option<&SpEntry> {
        match self {
            LogEntry::Savepoint(sp) => Some(sp),
            _ => None,
        }
    }

    /// Encoded size in bytes (what migration actually transfers).
    ///
    /// This encodes the entry (without cloning it) every time it is called.
    /// Entries stored in a [`RollbackLog`](crate::log::RollbackLog) have
    /// their size cached by the log itself — query the log (`size_bytes`,
    /// `stats`) instead of re-measuring entries taken from it.
    pub fn encoded_size(&self) -> usize {
        mar_wire::encoded_size(self).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_itinerary::{samples, Cursor};
    use mar_wire::Value;

    fn sp(id: u64) -> SpEntry {
        let main = samples::fig6();
        SpEntry {
            id: SavepointId(id),
            sub_id: Some("SI3".into()),
            explicit: false,
            cursor: Cursor::new(&main),
            table: SavepointTable::new(),
            sro: SroPayload::Full(ObjectMap::new()),
        }
    }

    #[test]
    fn tags() {
        assert_eq!(LogEntry::Savepoint(sp(1)).tag(), "SP");
        assert_eq!(
            LogEntry::BeginOfStep(BosEntry {
                node: 0,
                step_seq: 0,
                method: "m".into()
            })
            .tag(),
            "BOS"
        );
    }

    #[test]
    fn entries_roundtrip() {
        let entries = vec![
            LogEntry::Savepoint(sp(1)),
            LogEntry::BeginOfStep(BosEntry {
                node: 2,
                step_seq: 3,
                method: "buy".into(),
            }),
            LogEntry::Operation(OpEntry {
                kind: EntryKind::Mixed,
                op: CompOp::new("exchange.back", Value::from(5i64)),
                step_seq: 3,
            }),
            LogEntry::EndOfStep(EosEntry {
                node: 2,
                step_seq: 3,
                method: "buy".into(),
                has_mixed: true,
                alt_nodes: vec![4, 5],
            }),
        ];
        for e in entries {
            let bytes = mar_wire::to_bytes(&e).unwrap();
            let back: LogEntry = mar_wire::from_slice(&bytes).unwrap();
            assert_eq!(back, e);
            assert_eq!(e.encoded_size(), bytes.len());
        }
    }

    #[test]
    fn marker_payload() {
        assert!(SroPayload::Ref(SavepointId(3)).is_marker());
        assert!(!SroPayload::Full(ObjectMap::new()).is_marker());
    }
}
