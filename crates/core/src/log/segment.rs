//! Internal storage of the segment-indexed rollback log.
//!
//! The log is a stack, but almost every expensive query is about savepoint
//! entries. Entries are therefore grouped into *segments*: each segment is
//! one savepoint entry plus the non-savepoint entries logged after it (its
//! *tail*), and a side index maps [`SavepointId`]s to segment positions.
//! Entries that precede the first savepoint live in a head run owned by
//! [`crate::log::RollbackLog`] directly.
//!
//! Every stored entry carries a lazily cached encoded size: computed at most
//! once per entry (at push time, or on first demand for entries that arrived
//! via deserialization) and invalidated when the entry is mutated in place.
//! Nothing in this module ever clones an entry to measure it.

use crate::log::entry::LogEntry;

/// The lazily computed entry-size cache: a plain `Cell` by default, an
/// atomic under the `sync-log` feature (making [`Stored`] — and with the
/// sibling [`RollupCell`] the whole log — `Sync` for a future
/// multi-threaded simulator). Same API, same observable behaviour.
#[cfg(not(feature = "sync-log"))]
#[derive(Debug, Default)]
pub(crate) struct SizeCell(std::cell::Cell<usize>);

#[cfg(not(feature = "sync-log"))]
impl SizeCell {
    pub(crate) fn get(&self) -> usize {
        self.0.get()
    }

    pub(crate) fn set(&self, v: usize) {
        self.0.set(v);
    }
}

/// Atomic variant of the entry-size cache (`sync-log`).
#[cfg(feature = "sync-log")]
#[derive(Debug, Default)]
pub(crate) struct SizeCell(std::sync::atomic::AtomicUsize);

#[cfg(feature = "sync-log")]
impl SizeCell {
    pub(crate) fn get(&self) -> usize {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }

    pub(crate) fn set(&self, v: usize) {
        self.0.store(v, std::sync::atomic::Ordering::Relaxed);
    }
}

impl Clone for SizeCell {
    fn clone(&self) -> Self {
        let cell = SizeCell::default();
        cell.set(self.get());
        cell
    }
}

/// The lazily built per-kind byte-rollup cache ([`ByteRollup`]): `Cell` by
/// default, a lock under `sync-log`. Accessed only through copy-in/copy-out
/// `get`/`set`, so the lock is held for a copy of three words.
#[cfg(not(feature = "sync-log"))]
#[derive(Debug, Default)]
pub(crate) struct RollupCell(std::cell::Cell<Option<ByteRollup>>);

#[cfg(not(feature = "sync-log"))]
impl RollupCell {
    pub(crate) fn get(&self) -> Option<ByteRollup> {
        self.0.get()
    }

    pub(crate) fn set(&self, v: Option<ByteRollup>) {
        self.0.set(v);
    }
}

/// Lock-free variant of the rollup cache (`sync-log`). Mutation only ever
/// happens through `&mut RollbackLog` methods, so the only concurrent
/// access is read-vs-read — including two `stats()` calls racing to fill
/// the cache, which write identical values. The `valid` flag is published
/// with release ordering after the fields, so a reader that observes
/// `valid` sees fully written fields.
#[cfg(feature = "sync-log")]
#[derive(Debug, Default)]
pub(crate) struct RollupCell {
    valid: std::sync::atomic::AtomicBool,
    savepoint_bytes: std::sync::atomic::AtomicUsize,
    op_bytes: std::sync::atomic::AtomicUsize,
    frame_bytes: std::sync::atomic::AtomicUsize,
}

#[cfg(feature = "sync-log")]
impl RollupCell {
    pub(crate) fn get(&self) -> Option<ByteRollup> {
        use std::sync::atomic::Ordering::{Acquire, Relaxed};
        if !self.valid.load(Acquire) {
            return None;
        }
        Some(ByteRollup {
            savepoint_bytes: self.savepoint_bytes.load(Relaxed),
            op_bytes: self.op_bytes.load(Relaxed),
            frame_bytes: self.frame_bytes.load(Relaxed),
        })
    }

    pub(crate) fn set(&self, v: Option<ByteRollup>) {
        use std::sync::atomic::Ordering::{Relaxed, Release};
        match v {
            Some(r) => {
                self.savepoint_bytes.store(r.savepoint_bytes, Relaxed);
                self.op_bytes.store(r.op_bytes, Relaxed);
                self.frame_bytes.store(r.frame_bytes, Relaxed);
                self.valid.store(true, Release);
            }
            None => self.valid.store(false, Release),
        }
    }
}

impl Clone for RollupCell {
    fn clone(&self) -> Self {
        let cell = RollupCell::default();
        cell.set(self.get());
        cell
    }
}

/// One log entry plus its cached encoded size (`0` = not yet computed; real
/// encodings are never empty).
#[derive(Debug, Clone)]
pub(crate) struct Stored {
    pub(crate) entry: LogEntry,
    size: SizeCell,
}

impl Stored {
    /// Wraps an entry without computing its size (deserialization path).
    pub(crate) fn deferred(entry: LogEntry) -> Stored {
        Stored {
            entry,
            size: SizeCell::default(),
        }
    }

    /// Wraps an entry and computes its size eagerly (push path).
    pub(crate) fn measured(entry: LogEntry) -> Stored {
        let s = Stored::deferred(entry);
        s.size();
        s
    }

    /// The encoded size in bytes, computed on first use.
    pub(crate) fn size(&self) -> usize {
        match self.size.get() {
            0 => {
                let s = self.entry.encoded_size();
                if s != 0 {
                    self.size.set(s);
                }
                s
            }
            s => s,
        }
    }

    /// Invalidates the cached size after an in-place mutation and returns
    /// `(old, new)` sizes. Costs at most two encodes and zero clones.
    pub(crate) fn remeasure(&mut self, mutate: impl FnOnce(&mut LogEntry)) -> (usize, usize) {
        let old = self.size();
        mutate(&mut self.entry);
        self.size.set(0);
        (old, self.size())
    }
}

/// A run of non-savepoint entries, stored as chunks so that splicing one
/// run onto another — the hot part of savepoint removal — is an O(1) chunk
/// append instead of an O(len) move of large `LogEntry` values.
///
/// Invariant: no chunk is empty.
#[derive(Debug, Clone, Default)]
pub(crate) struct Tail {
    chunks: Vec<Vec<Stored>>,
}

impl Tail {
    pub(crate) fn push(&mut self, stored: Stored) {
        match self.chunks.last_mut() {
            Some(chunk) => chunk.push(stored),
            None => self.chunks.push(vec![stored]),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Stored> {
        let chunk = self.chunks.last_mut()?;
        let stored = chunk.pop().expect("no chunk is empty");
        if chunk.is_empty() {
            self.chunks.pop();
        }
        Some(stored)
    }

    pub(crate) fn last(&self) -> Option<&Stored> {
        self.chunks
            .last()
            .map(|c| c.last().expect("no chunk is empty"))
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Appends all of `other`'s entries after `self`'s, in order, without
    /// moving individual entries.
    pub(crate) fn absorb(&mut self, other: Tail) {
        self.chunks.extend(other.chunks);
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &Stored> {
        self.chunks.iter().flatten()
    }

    pub(crate) fn iter_rev(&self) -> impl Iterator<Item = &Stored> {
        self.chunks.iter().rev().flat_map(|c| c.iter().rev())
    }

    pub(crate) fn into_iter_stored(self) -> impl Iterator<Item = Stored> {
        self.chunks.into_iter().flatten()
    }
}

/// One savepoint entry (`sp`, always [`LogEntry::Savepoint`]) and the
/// entries logged after it, up to the next savepoint.
#[derive(Debug, Clone)]
pub(crate) struct Segment {
    pub(crate) sp: Stored,
    pub(crate) tail: Tail,
}

impl Segment {
    pub(crate) fn new(sp: Stored) -> Segment {
        debug_assert!(
            matches!(sp.entry, LogEntry::Savepoint(_)),
            "segments start at savepoint entries"
        );
        Segment {
            sp,
            tail: Tail::default(),
        }
    }
}

/// Eagerly maintained per-entry-kind counts (no sizes involved, so these
/// stay exact even for freshly deserialized logs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Counts {
    pub(crate) savepoints: usize,
    pub(crate) markers: usize,
    pub(crate) bos: usize,
    pub(crate) ops: usize,
    pub(crate) eos: usize,
}

impl Counts {
    pub(crate) fn total(&self) -> usize {
        self.savepoints + self.bos + self.ops + self.eos
    }

    pub(crate) fn add(&mut self, entry: &LogEntry) {
        match entry {
            LogEntry::Savepoint(sp) => {
                self.savepoints += 1;
                if sp.sro.is_marker() {
                    self.markers += 1;
                }
            }
            LogEntry::BeginOfStep(_) => self.bos += 1,
            LogEntry::Operation(_) => self.ops += 1,
            LogEntry::EndOfStep(_) => self.eos += 1,
        }
    }

    pub(crate) fn remove(&mut self, entry: &LogEntry) {
        match entry {
            LogEntry::Savepoint(sp) => {
                self.savepoints -= 1;
                if sp.sro.is_marker() {
                    self.markers -= 1;
                }
            }
            LogEntry::BeginOfStep(_) => self.bos -= 1,
            LogEntry::Operation(_) => self.ops -= 1,
            LogEntry::EndOfStep(_) => self.eos -= 1,
        }
    }
}

/// Lazily built per-entry-kind byte totals. `None` after deserialization
/// (the wire format carries only the grand total); built on the first
/// `stats()` call and maintained incrementally afterwards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ByteRollup {
    pub(crate) savepoint_bytes: usize,
    pub(crate) op_bytes: usize,
    pub(crate) frame_bytes: usize,
}

impl ByteRollup {
    pub(crate) fn add(&mut self, entry: &LogEntry, size: usize) {
        match entry {
            LogEntry::Savepoint(_) => self.savepoint_bytes += size,
            LogEntry::Operation(_) => self.op_bytes += size,
            LogEntry::BeginOfStep(_) | LogEntry::EndOfStep(_) => self.frame_bytes += size,
        }
    }

    pub(crate) fn remove(&mut self, entry: &LogEntry, size: usize) {
        match entry {
            LogEntry::Savepoint(_) => {
                self.savepoint_bytes = self.savepoint_bytes.saturating_sub(size);
            }
            LogEntry::Operation(_) => self.op_bytes = self.op_bytes.saturating_sub(size),
            LogEntry::BeginOfStep(_) | LogEntry::EndOfStep(_) => {
                self.frame_bytes = self.frame_bytes.saturating_sub(size);
            }
        }
    }
}
