//! Per-entry-type statistics of a rollback log (experiment E2/E5 raw data).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::log::entry::LogEntry;
use crate::log::log::RollbackLog;

/// Counts and byte sizes per entry type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LogStats {
    /// Savepoint entries.
    pub savepoints: usize,
    /// Of which markers (no SRO data).
    pub markers: usize,
    /// Begin-of-step entries.
    pub bos: usize,
    /// Operation entries.
    pub ops: usize,
    /// End-of-step entries.
    pub eos: usize,
    /// Bytes held by savepoint entries.
    pub savepoint_bytes: usize,
    /// Bytes held by operation entries.
    pub op_bytes: usize,
    /// Bytes held by BOS/EOS framing entries.
    pub frame_bytes: usize,
    /// Total encoded bytes.
    pub total_bytes: usize,
}

impl LogStats {
    /// Computes statistics for `log` from scratch, encoding every entry.
    ///
    /// This is the reference recompute: [`RollbackLog::stats`] maintains the
    /// same numbers incrementally from cached entry sizes and is what the
    /// platform and benches should call; `of` exists so tests can check the
    /// incremental accounting against a straight-line recount.
    pub fn of(log: &RollbackLog) -> LogStats {
        LogStats::of_entries(log.iter())
    }

    /// Computes statistics over any entry sequence (encoding each entry).
    /// This is the bucketing rule shared by [`LogStats::of`] and the
    /// model-based property tests that recount the reference model.
    pub fn of_entries<'a>(entries: impl Iterator<Item = &'a LogEntry>) -> LogStats {
        let mut s = LogStats::default();
        for e in entries {
            let size = e.encoded_size();
            s.total_bytes += size;
            match e {
                LogEntry::Savepoint(sp) => {
                    s.savepoints += 1;
                    if sp.sro.is_marker() {
                        s.markers += 1;
                    }
                    s.savepoint_bytes += size;
                }
                LogEntry::BeginOfStep(_) => {
                    s.bos += 1;
                    s.frame_bytes += size;
                }
                LogEntry::Operation(_) => {
                    s.ops += 1;
                    s.op_bytes += size;
                }
                LogEntry::EndOfStep(_) => {
                    s.eos += 1;
                    s.frame_bytes += size;
                }
            }
        }
        s
    }
}

impl fmt::Display for LogStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SP={} (markers={}, {}B) OE={} ({}B) BOS/EOS={}/{} ({}B) total={}B",
            self.savepoints,
            self.markers,
            self.savepoint_bytes,
            self.ops,
            self.op_bytes,
            self.bos,
            self.eos,
            self.frame_bytes,
            self.total_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comp::{CompOp, EntryKind};
    use crate::log::entry::{BosEntry, EosEntry, OpEntry};
    use mar_wire::Value;

    #[test]
    fn counts_and_bytes() {
        let mut log = RollbackLog::new();
        log.push(LogEntry::BeginOfStep(BosEntry {
            node: 0,
            step_seq: 0,
            method: "m".into(),
        }));
        log.push(LogEntry::Operation(OpEntry {
            kind: EntryKind::Agent,
            op: CompOp::new("c", Value::Null),
            step_seq: 0,
        }));
        log.push(LogEntry::EndOfStep(EosEntry {
            node: 0,
            step_seq: 0,
            method: "m".into(),
            has_mixed: false,
            alt_nodes: vec![],
        }));
        let s = log.stats();
        assert_eq!((s.bos, s.ops, s.eos, s.savepoints), (1, 1, 1, 0));
        assert_eq!(s.total_bytes, log.size_bytes());
        assert_eq!(
            s.total_bytes,
            s.savepoint_bytes + s.op_bytes + s.frame_bytes
        );
        assert!(s.to_string().contains("OE=1"));
    }
}
