//! The rollback log structure: a segment-indexed stack of [`LogEntry`]s.
//!
//! # Representation
//!
//! Conceptually the log is the entry stack of §4.2 — and that is exactly
//! what it serializes as, so migration snapshots are interchangeable with
//! the earlier flat-vector representation. In memory, however, entries are
//! grouped into per-savepoint [`Segment`]s with a `SavepointId → segment`
//! index, and every entry carries a cached encoded size:
//!
//! * savepoint lookups ([`RollbackLog::find_savepoint`],
//!   [`RollbackLog::contains_savepoint`]) are an index probe, not an entry
//!   scan;
//! * savepoint removal at sub-itinerary completion
//!   ([`RollbackLog::remove_savepoint`], the §4.4.2 maintenance operation)
//!   splices one segment and touches only savepoint entries above it —
//!   it no longer walks, clones, or re-encodes the whole log;
//! * byte accounting ([`RollbackLog::size_bytes`], [`RollbackLog::stats`])
//!   is maintained incrementally from cached sizes; entries are encoded at
//!   most once to be measured, never cloned.
//!
//! The cached sizes use interior mutability (`Cell` by default), so the log
//! is not `Sync`; the platform is single-threaded per node, and a migrating
//! agent is owned by exactly one node at a time (§2), so nothing shares a
//! log across threads. The opt-in `sync-log` feature swaps the caches for
//! atomics/locks (wire format and behaviour unchanged), making the log
//! `Sync` for a future multi-threaded simulator.

use serde::de::{SeqAccess, Visitor};
use serde::ser::{SerializeSeq, SerializeStruct};
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::collections::BTreeMap;
use std::fmt;

use crate::comp::{CompOp, EntryKind};
use crate::data::DataSpace;
use crate::error::CoreError;
use crate::log::entry::{BosEntry, EosEntry, LogEntry, OpEntry, SpEntry, SroPayload};
use crate::log::segment::{ByteRollup, Counts, RollupCell, Segment, Stored, Tail};
use crate::log::stats::LogStats;
use crate::savepoint::SavepointId;

/// The agent rollback log: a stack of [`LogEntry`]s with byte-size
/// accounting (the log migrates with the agent, so its size is a
/// first-class experimental quantity, §4.4.2), indexed by savepoint for
/// O(log n) savepoint operations.
#[derive(Debug, Clone, Default)]
pub struct RollbackLog {
    /// Entries logged before the first savepoint entry.
    head: Tail,
    /// One segment per savepoint entry, oldest first. Visible to the
    /// sibling [`compact`](crate::log::compact) module, which walks and
    /// rewrites savepoint payloads in place.
    pub(super) segments: Vec<Segment>,
    /// Savepoint id → position in `segments`.
    index: BTreeMap<SavepointId, usize>,
    /// Total encoded size of all entries (always exact; serialized).
    bytes: usize,
    /// Per-kind entry counts (always exact).
    pub(super) counts: Counts,
    /// Per-kind byte totals; `None` until first demanded (deserialized
    /// logs learn entry sizes lazily), maintained incrementally afterwards.
    rollup: RollupCell,
    /// Whether a mutation since the last [`compact`](Self::compact) pass
    /// could have introduced savepoint-payload redundancy. Not serialized
    /// (the wire format is frozen), so deserialized logs start
    /// conservatively dirty when they hold any savepoint.
    dirty: bool,
}

impl RollbackLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        RollbackLog::default()
    }

    // ----- stack operations -------------------------------------------------

    /// Appends an entry. A savepoint entry opens a new segment; anything
    /// else joins the newest segment's tail.
    pub fn push(&mut self, entry: LogEntry) {
        self.push_stored(Stored::measured(entry));
    }

    /// Appends an already-wrapped entry, reusing its cached encoded size —
    /// the move path of [`absorb`](Self::absorb) and the reason merging two
    /// logs never re-encodes an entry.
    pub(crate) fn push_stored(&mut self, stored: Stored) {
        self.account_add(&stored);
        match &stored.entry {
            LogEntry::Savepoint(sp) => {
                let id = sp.id;
                // The savepoint allocator is monotone (SavepointTable keeps
                // `next_id` monotone across restores), so a duplicate id is
                // a programming error; failing loudly beats silently
                // corrupting the id → segment index.
                assert!(
                    !self.index.contains_key(&id),
                    "duplicate savepoint id {id} pushed"
                );
                // A new savepoint payload may duplicate an older one (or, as
                // a marker, start a chain): the log may have redundancy again.
                self.dirty = true;
                self.index.insert(id, self.segments.len());
                self.segments.push(Segment::new(stored));
            }
            _ => match self.segments.last_mut() {
                Some(seg) => seg.tail.push(stored),
                None => self.head.push(stored),
            },
        }
    }

    /// Removes and returns the last entry.
    pub fn pop(&mut self) -> Option<LogEntry> {
        let stored = match self.segments.last_mut() {
            Some(seg) => match seg.tail.pop() {
                Some(stored) => stored,
                None => {
                    let seg = self.segments.pop().expect("non-empty checked above");
                    if let LogEntry::Savepoint(sp) = &seg.sp.entry {
                        self.index.remove(&sp.id);
                    }
                    seg.sp
                }
            },
            None => self.head.pop()?,
        };
        self.account_remove(&stored);
        Some(stored.entry)
    }

    /// The last entry, if any.
    pub fn last(&self) -> Option<&LogEntry> {
        match self.segments.last() {
            Some(seg) => Some(&seg.tail.last().unwrap_or(&seg.sp).entry),
            None => self.head.last().map(|s| &s.entry),
        }
    }

    /// The newest entry if it is a savepoint entry (i.e. the newest segment
    /// has an empty tail).
    pub fn top_savepoint(&self) -> Option<&SpEntry> {
        match self.segments.last() {
            Some(seg) if seg.tail.is_empty() => seg.sp.entry.as_savepoint(),
            _ => None,
        }
    }

    /// Pops the newest entry if it is a savepoint entry, returning it
    /// unwrapped. This is the planner's segment walk: popping adjacent
    /// savepoints above a rollback target is O(1) per savepoint.
    pub fn pop_top_savepoint(&mut self) -> Option<SpEntry> {
        self.top_savepoint()?;
        match self.pop() {
            Some(LogEntry::Savepoint(sp)) => Some(sp),
            _ => unreachable!("top_savepoint checked above"),
        }
    }

    /// Pops an entry that must be an end-of-step entry.
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptLog`] if the last entry is not an EOS.
    pub fn pop_eos(&mut self) -> Result<EosEntry, CoreError> {
        match self.pop() {
            Some(LogEntry::EndOfStep(e)) => Ok(e),
            Some(other) => {
                let tag = other.tag();
                self.push(other);
                Err(CoreError::CorruptLog(format!("expected EOS, found {tag}")))
            }
            None => Err(CoreError::EmptyLog),
        }
    }

    /// Logs one committed step as a unit: the begin-of-step entry, one
    /// operation entry per compensation in logged order, and the
    /// end-of-step entry with the mixed flag (§4.2). Returns whether any
    /// entry was a mixed compensation entry.
    ///
    /// # Examples
    ///
    /// ```
    /// use mar_core::comp::{CompOp, EntryKind};
    /// use mar_core::log::RollbackLog;
    /// use mar_wire::Value;
    ///
    /// let mut log = RollbackLog::new();
    /// let mixed = log.append_step(
    ///     2,              // node the step ran on
    ///     0,              // step sequence number
    ///     "reserve",      // step method (diagnostics)
    ///     [(EntryKind::Resource, CompOp::new("bank.undo_transfer", Value::Null))],
    ///     vec![],         // alternative compensation nodes
    /// );
    /// assert!(!mixed);
    /// // One BOS + one OE + one EOS, in log order.
    /// assert_eq!(log.len(), 3);
    /// assert_eq!(log.last_eos().unwrap().step_seq, 0);
    /// ```
    pub fn append_step(
        &mut self,
        node: u32,
        step_seq: u64,
        method: &str,
        ops: impl IntoIterator<Item = (EntryKind, CompOp)>,
        alt_nodes: Vec<u32>,
    ) -> bool {
        self.push(LogEntry::BeginOfStep(BosEntry {
            node,
            step_seq,
            method: method.to_owned(),
        }));
        let mut has_mixed = false;
        for (kind, op) in ops {
            has_mixed |= kind == EntryKind::Mixed;
            self.push(LogEntry::Operation(OpEntry { kind, op, step_seq }));
        }
        self.push(LogEntry::EndOfStep(EosEntry {
            node,
            step_seq,
            method: method.to_owned(),
            has_mixed,
            alt_nodes,
        }));
        has_mixed
    }

    // ----- size and iteration ----------------------------------------------

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.counts.total()
    }

    /// True when the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total encoded size of all entries in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes
    }

    /// Number of savepoint segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Whether a [`compact`](Self::compact) pass could still find something
    /// to rewrite: `false` directly after a pass (and for logs that never
    /// gained a savepoint since), until a mutation that can reintroduce
    /// savepoint-payload redundancy — pushing a savepoint entry or removing
    /// one (removal composes deltas and upgrades markers). Popping entries
    /// never sets it: payloads below the top are untouched and compaction
    /// relationships only point downward. The flag is not serialized, so a
    /// deserialized log is conservatively dirty when it holds savepoints.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Clears the dirty flag (compaction just ran, or the caller proved the
    /// log redundancy-free by other means).
    pub(super) fn mark_compacted(&mut self) {
        self.dirty = false;
    }

    /// The ids of all savepoint entries currently in the log, oldest first.
    pub fn savepoint_ids(&self) -> impl Iterator<Item = SavepointId> + '_ {
        self.segments
            .iter()
            .filter_map(|seg| seg.sp.entry.as_savepoint().map(|sp| sp.id))
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &LogEntry> {
        self.stored_iter().map(|s| &s.entry)
    }

    /// Iterates newest-first — the rollback direction. Suffix walks (the
    /// batch planner's lookahead stops at its target savepoint) never touch
    /// entries below the stop point.
    pub fn iter_rev(&self) -> impl Iterator<Item = &LogEntry> {
        self.segments
            .iter()
            .rev()
            .flat_map(|seg| seg.tail.iter_rev().chain(std::iter::once(&seg.sp)))
            .chain(self.head.iter_rev())
            .map(|s| &s.entry)
    }

    fn stored_iter(&self) -> impl Iterator<Item = &Stored> {
        self.head.iter().chain(
            self.segments
                .iter()
                .flat_map(|seg| std::iter::once(&seg.sp).chain(seg.tail.iter())),
        )
    }

    /// Discards everything (top-level sub-itinerary completion, §4.4.2).
    pub fn clear(&mut self) {
        *self = RollbackLog::default();
    }

    /// Appends every entry of `other` after this log's entries, in order,
    /// moving the stored entries so their cached encoded sizes survive —
    /// no entry is cloned or re-encoded. This is how a sealed (still
    /// encoded) log prefix is merged with the entries appended since it was
    /// sealed when a resident record materializes its log.
    pub fn absorb(&mut self, other: RollbackLog) {
        for stored in other.into_stored() {
            self.push_stored(stored);
        }
    }

    fn into_stored(self) -> impl Iterator<Item = Stored> {
        self.head.into_iter_stored().chain(
            self.segments
                .into_iter()
                .flat_map(|seg| std::iter::once(seg.sp).chain(seg.tail.into_iter_stored())),
        )
    }

    /// Rebuilds a log from decoded wire parts: the flat entry sequence and
    /// the serialized total byte count. Entry sizes stay lazily measured,
    /// exactly like full-record deserialization.
    pub(crate) fn from_wire_parts(entries: Vec<LogEntry>, bytes: usize) -> RollbackLog {
        RollbackLog::from_entries_with_bytes(entries, bytes)
    }

    // ----- savepoint queries (index-backed) --------------------------------

    /// Finds a savepoint entry by id. O(log n) in the number of savepoints.
    pub fn find_savepoint(&self, id: SavepointId) -> Option<&SpEntry> {
        let pos = *self.index.get(&id)?;
        self.segments[pos].sp.entry.as_savepoint()
    }

    /// Whether the log contains the savepoint. O(log n).
    pub fn contains_savepoint(&self, id: SavepointId) -> bool {
        self.index.contains_key(&id)
    }

    /// The id of the most recent data-bearing (non-marker) savepoint.
    /// Touches only savepoint entries (never operation entries).
    pub fn last_data_savepoint(&self) -> Option<SavepointId> {
        self.segments.iter().rev().find_map(|seg| {
            let sp = seg.sp.entry.as_savepoint()?;
            (!sp.sro.is_marker()).then_some(sp.id)
        })
    }

    /// The most recent end-of-step entry (the next compensation target).
    /// Empty-tailed segments — savepoints stacked on top of the last step —
    /// are skipped in O(1) each.
    pub fn last_eos(&self) -> Option<&EosEntry> {
        fn as_eos(stored: &Stored) -> Option<&EosEntry> {
            match &stored.entry {
                LogEntry::EndOfStep(eos) => Some(eos),
                _ => None,
            }
        }
        self.segments
            .iter()
            .rev()
            .find_map(|seg| seg.tail.iter_rev().find_map(as_eos))
            .or_else(|| self.head.iter_rev().find_map(as_eos))
    }

    /// Removes the savepoint entry `id` when its sub-itinerary completes
    /// (§4.4.2), preserving restorability of every other savepoint:
    ///
    /// * **Transition logging:** the removed delta is absorbed by the first
    ///   savepoint above that pops after it in the shadow walk — composed
    ///   into a delta savepoint, or carried verbatim by a marker that
    ///   referenced the removed savepoint (such markers share its state);
    ///   with nothing above, it is applied to the agent's shadow copy (the
    ///   removed savepoint *was* the newest). This is the "non-trivial
    ///   task" the paper alludes to.
    /// * **State logging:** if a newer marker references the removed
    ///   savepoint, the marker is upgraded in place to carry the full image.
    /// * **Markers:** removing a marker re-points newer markers that
    ///   referenced it at its own target, so no marker ever dangles.
    ///
    /// The removed segment's tail entries are spliced into the previous
    /// segment; only savepoint entries above the removal point are
    /// examined, and in-place payload mutations re-measure exactly the
    /// mutated entry (no clone-and-encode).
    ///
    /// Returns `false` if the savepoint is not in the log.
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptLog`] on payload inconsistencies.
    ///
    /// # Examples
    ///
    /// ```
    /// use mar_core::log::{LoggingMode, RollbackLog, SroPayload};
    /// use mar_core::{DataSpace, SavepointTable};
    /// use mar_itinerary::{samples, Cursor};
    ///
    /// let main = samples::fig6();
    /// let cursor = Cursor::new(&main);
    /// let (mut data, mut table, mut log) =
    ///     (DataSpace::new(), SavepointTable::new(), RollbackLog::new());
    /// let a = table.on_enter_sub("A", &mut data, &cursor, &mut log, LoggingMode::State);
    /// let b = table.on_enter_sub("B", &mut data, &cursor, &mut log, LoggingMode::State);
    /// // B is a marker onto A; removing A upgrades B to carry the image.
    /// assert_eq!(log.find_savepoint(b).unwrap().sro, SroPayload::Ref(a));
    /// assert!(log.remove_savepoint(a, &mut data).unwrap());
    /// assert!(matches!(
    ///     log.find_savepoint(b).unwrap().sro,
    ///     SroPayload::Full(_)
    /// ));
    /// assert!(!log.remove_savepoint(a, &mut data).unwrap(), "already gone");
    /// ```
    pub fn remove_savepoint(
        &mut self,
        id: SavepointId,
        data: &mut DataSpace,
    ) -> Result<bool, CoreError> {
        let Some(pos) = self.index.remove(&id) else {
            return Ok(false);
        };
        // Removal rewrites payloads above the removal point (delta
        // composition, marker upgrades): re-minimization may apply again.
        self.dirty = true;
        let seg = self.segments.remove(pos);
        for p in self.index.values_mut() {
            if *p > pos {
                *p -= 1;
            }
        }
        self.account_remove(&seg.sp);
        // The tail keeps its place in the entry order: it now follows the
        // previous segment's entries directly — an O(1) chunk splice, no
        // entry is moved.
        match pos {
            0 => self.head.absorb(seg.tail),
            p => self.segments[p - 1].tail.absorb(seg.tail),
        }
        let LogEntry::Savepoint(removed) = seg.sp.entry else {
            unreachable!("segments start at savepoint entries");
        };

        match &removed.sro {
            SroPayload::Delta(delta) => {
                // The removed backward delta must be absorbed by whatever
                // the rollback shadow walk pops right after it: the first
                // savepoint above that is a delta savepoint (compose the
                // deltas) **or** a marker referencing the removed savepoint
                // (the §4.4.2 marker rule and compaction demotions both
                // create such markers; their state *is* the removed
                // savepoint's state, so the marker becomes the delta's new
                // carrier — composing past it would make rollbacks to the
                // marker restore the state *below* the removed savepoint).
                let carrier = (pos..self.segments.len()).find(|&j| {
                    match self.segments[j].sp.entry.as_savepoint().map(|sp| &sp.sro) {
                        Some(SroPayload::Delta(_)) => true,
                        Some(SroPayload::Ref(r)) => *r == id,
                        _ => false,
                    }
                });
                match carrier {
                    Some(j) => {
                        let carrier_sp = self.segments[j]
                            .sp
                            .entry
                            .as_savepoint()
                            .expect("segments start at savepoint entries");
                        let carrier_id = carrier_sp.id;
                        let was_marker = carrier_sp.sro.is_marker();
                        let (old, new) = self.segments[j].sp.remeasure(|entry| {
                            let LogEntry::Savepoint(sp) = entry else {
                                unreachable!("segments start at savepoint entries");
                            };
                            sp.sro = match &sp.sro {
                                SroPayload::Delta(next) => SroPayload::Delta(next.compose(delta)),
                                SroPayload::Ref(_) => SroPayload::Delta(delta.clone()),
                                SroPayload::Full(_) => {
                                    unreachable!("carrier scan matched delta or ref")
                                }
                            };
                        });
                        if was_marker {
                            self.counts.markers -= 1;
                        }
                        self.resize_savepoint_bytes(old, new);
                        // Any further markers that referenced the removed
                        // savepoint now reference its carrier (same state).
                        for k in (j + 1)..self.segments.len() {
                            let refs_removed = matches!(
                                self.segments[k].sp.entry.as_savepoint().map(|sp| &sp.sro),
                                Some(SroPayload::Ref(r)) if *r == id
                            );
                            if refs_removed {
                                let (old, new) = self.segments[k].sp.remeasure(|entry| {
                                    let LogEntry::Savepoint(sp) = entry else {
                                        unreachable!("segments start at savepoint entries");
                                    };
                                    sp.sro = SroPayload::Ref(carrier_id);
                                });
                                self.resize_savepoint_bytes(old, new);
                            }
                        }
                    }
                    None => {
                        // Removed the newest delta savepoint: the shadow
                        // (state at that savepoint) moves back to the
                        // previous one.
                        data.apply_delta_to_shadow(delta);
                    }
                }
            }
            SroPayload::Full(image) => {
                // Upgrade every newer marker referencing this savepoint.
                for j in pos..self.segments.len() {
                    let is_ref = matches!(
                        self.segments[j].sp.entry.as_savepoint().map(|sp| &sp.sro),
                        Some(SroPayload::Ref(r)) if *r == id
                    );
                    if is_ref {
                        let (old, new) = self.segments[j].sp.remeasure(|entry| {
                            let LogEntry::Savepoint(sp) = entry else {
                                unreachable!("segments start at savepoint entries");
                            };
                            sp.sro = SroPayload::Full(image.clone());
                        });
                        self.counts.markers -= 1;
                        self.resize_savepoint_bytes(old, new);
                    }
                }
            }
            SroPayload::Ref(target) => {
                // Markers hold no data, but newer markers may reference the
                // removed one (compaction demotions create such chains).
                // Re-point them at the removed marker's own target so no
                // marker ever dangles.
                let target = *target;
                for j in pos..self.segments.len() {
                    let refs_removed = matches!(
                        self.segments[j].sp.entry.as_savepoint().map(|sp| &sp.sro),
                        Some(SroPayload::Ref(r)) if *r == id
                    );
                    if refs_removed {
                        let (old, new) = self.segments[j].sp.remeasure(|entry| {
                            let LogEntry::Savepoint(sp) = entry else {
                                unreachable!("segments start at savepoint entries");
                            };
                            sp.sro = SroPayload::Ref(target);
                        });
                        self.resize_savepoint_bytes(old, new);
                    }
                }
            }
        }
        Ok(true)
    }

    // ----- accounting -------------------------------------------------------

    fn account_add(&mut self, stored: &Stored) {
        let size = stored.size();
        self.bytes += size;
        self.counts.add(&stored.entry);
        if let Some(mut rollup) = self.rollup.get() {
            rollup.add(&stored.entry, size);
            self.rollup.set(Some(rollup));
        }
    }

    fn account_remove(&mut self, stored: &Stored) {
        let size = stored.size();
        self.bytes = self.bytes.saturating_sub(size);
        self.counts.remove(&stored.entry);
        if let Some(mut rollup) = self.rollup.get() {
            rollup.remove(&stored.entry, size);
            self.rollup.set(Some(rollup));
        }
    }

    /// Adjusts totals after an in-place mutation of a savepoint entry's
    /// payload (the only entries ever mutated in place).
    pub(super) fn resize_savepoint_bytes(&mut self, old: usize, new: usize) {
        self.bytes = self.bytes.saturating_sub(old) + new;
        if let Some(mut rollup) = self.rollup.get() {
            rollup.savepoint_bytes = rollup.savepoint_bytes.saturating_sub(old) + new;
            self.rollup.set(Some(rollup));
        }
    }

    /// Computes per-entry-type statistics. O(1) once byte totals are known;
    /// the first call on a freshly deserialized log measures each entry
    /// once and caches the result.
    pub fn stats(&self) -> LogStats {
        let rollup = match self.rollup.get() {
            Some(r) => r,
            None => {
                let mut r = ByteRollup::default();
                for stored in self.stored_iter() {
                    r.add(&stored.entry, stored.size());
                }
                self.rollup.set(Some(r));
                r
            }
        };
        LogStats {
            savepoints: self.counts.savepoints,
            markers: self.counts.markers,
            bos: self.counts.bos,
            ops: self.counts.ops,
            eos: self.counts.eos,
            savepoint_bytes: rollup.savepoint_bytes,
            op_bytes: rollup.op_bytes,
            frame_bytes: rollup.frame_bytes,
            total_bytes: self.bytes,
        }
    }

    /// Checks the SP/BOS/OE/EOS grammar:
    /// `(SP | BOS OE* EOS)*` — operation entries only between BOS and EOS,
    /// step numbers consistent.
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptLog`] describing the first violation.
    pub fn validate(&self) -> Result<(), CoreError> {
        let mut open_step: Option<u64> = None;
        for e in self.iter() {
            match e {
                LogEntry::Savepoint(_) => {
                    if open_step.is_some() {
                        return Err(CoreError::CorruptLog(
                            "savepoint inside a step (savepoints only at step ends, §2)".to_owned(),
                        ));
                    }
                }
                LogEntry::BeginOfStep(b) => {
                    if open_step.is_some() {
                        return Err(CoreError::CorruptLog("nested BOS".to_owned()));
                    }
                    open_step = Some(b.step_seq);
                }
                LogEntry::Operation(oe) => {
                    if open_step != Some(oe.step_seq) {
                        return Err(CoreError::CorruptLog(format!(
                            "operation entry for step {} outside its BOS/EOS",
                            oe.step_seq
                        )));
                    }
                }
                LogEntry::EndOfStep(eos) => {
                    if open_step != Some(eos.step_seq) {
                        return Err(CoreError::CorruptLog(format!(
                            "EOS for step {} without matching BOS",
                            eos.step_seq
                        )));
                    }
                    open_step = None;
                }
            }
        }
        if open_step.is_some() {
            return Err(CoreError::CorruptLog("unclosed BOS at log end".to_owned()));
        }
        Ok(())
    }

    /// Rebuilds the segment structure from a flat entry sequence plus the
    /// serialized byte total. Entry sizes are *not* computed here — they
    /// are measured lazily on first need, so deserializing a migrated
    /// agent stays O(n) in decode work alone.
    fn from_entries_with_bytes(entries: Vec<LogEntry>, bytes: usize) -> RollbackLog {
        let mut log = RollbackLog {
            bytes,
            ..RollbackLog::default()
        };
        for entry in entries {
            log.counts.add(&entry);
            let stored = Stored::deferred(entry);
            match &stored.entry {
                LogEntry::Savepoint(sp) => {
                    log.index.entry(sp.id).or_insert(log.segments.len());
                    log.segments.push(Segment::new(stored));
                }
                _ => match log.segments.last_mut() {
                    Some(seg) => seg.tail.push(stored),
                    None => log.head.push(stored),
                },
            }
        }
        // The wire carries no compaction state; anything with savepoint
        // payloads might benefit from a pass.
        log.dirty = !log.segments.is_empty();
        log
    }
}

impl PartialEq for RollbackLog {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes && self.len() == other.len() && self.iter().eq(other.iter())
    }
}

/// Serializes exactly like the historical flat representation
/// `struct RollbackLog { entries: Vec<LogEntry>, bytes: usize }`, keeping
/// migration snapshots byte-identical across the refactor.
impl Serialize for RollbackLog {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        struct EntrySeq<'a>(&'a RollbackLog);
        impl Serialize for EntrySeq<'_> {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(self.0.len()))?;
                for entry in self.0.iter() {
                    seq.serialize_element(entry)?;
                }
                seq.end()
            }
        }
        let mut st = serializer.serialize_struct("RollbackLog", 2)?;
        st.serialize_field("entries", &EntrySeq(self))?;
        st.serialize_field("bytes", &self.bytes)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for RollbackLog {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<RollbackLog, D::Error> {
        // Seq-shaped structs only: that is all the wire format produces,
        // and it matches what the workspace's derive generates for every
        // other struct (map-keyed self-describing formats are not used).
        struct LogVisitor;
        impl<'de> Visitor<'de> for LogVisitor {
            type Value = RollbackLog;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("struct RollbackLog")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<RollbackLog, A::Error> {
                let entries: Vec<LogEntry> = seq
                    .next_element()?
                    .ok_or_else(|| serde::de::Error::custom("RollbackLog missing entries"))?;
                let bytes: usize = seq
                    .next_element()?
                    .ok_or_else(|| serde::de::Error::custom("RollbackLog missing bytes"))?;
                Ok(RollbackLog::from_entries_with_bytes(entries, bytes))
            }
        }
        deserializer.deserialize_struct("RollbackLog", &["entries", "bytes"], LogVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::reference::NaiveLog;
    use crate::log::LoggingMode;
    use crate::savepoint::SavepointTable;
    use mar_itinerary::{samples, Cursor};
    use mar_wire::Value;

    fn bos(step: u64) -> LogEntry {
        LogEntry::BeginOfStep(BosEntry {
            node: 1,
            step_seq: step,
            method: format!("m{step}"),
        })
    }

    fn oe(step: u64) -> LogEntry {
        LogEntry::Operation(OpEntry {
            kind: EntryKind::Resource,
            op: CompOp::new("undo", Value::from(step as i64)),
            step_seq: step,
        })
    }

    fn eos(step: u64) -> LogEntry {
        LogEntry::EndOfStep(EosEntry {
            node: 1,
            step_seq: step,
            method: format!("m{step}"),
            has_mixed: false,
            alt_nodes: vec![],
        })
    }

    #[test]
    fn push_pop_size_accounting() {
        let mut log = RollbackLog::new();
        log.push(bos(0));
        log.push(oe(0));
        let sz = log.size_bytes();
        assert!(sz > 0);
        log.push(eos(0));
        assert!(log.size_bytes() > sz);
        log.pop().unwrap();
        assert_eq!(log.size_bytes(), sz);
        log.pop().unwrap();
        log.pop().unwrap();
        assert_eq!(log.size_bytes(), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn grammar_validation() {
        let mut log = RollbackLog::new();
        log.push(bos(0));
        log.push(oe(0));
        log.push(eos(0));
        log.validate().unwrap();

        let mut bad = RollbackLog::new();
        bad.push(oe(0));
        assert!(bad.validate().is_err());

        let mut nested = RollbackLog::new();
        nested.push(bos(0));
        nested.push(bos(1));
        assert!(nested.validate().is_err());

        let mut unclosed = RollbackLog::new();
        unclosed.push(bos(0));
        assert!(unclosed.validate().is_err());
    }

    #[test]
    fn pop_eos_type_checked() {
        let mut log = RollbackLog::new();
        log.push(bos(0));
        assert!(matches!(log.pop_eos(), Err(CoreError::CorruptLog(_))));
        // Entry was pushed back.
        assert_eq!(log.len(), 1);
        log.push(eos(0));
        assert_eq!(log.pop_eos().unwrap().step_seq, 0);
    }

    #[test]
    fn last_eos_skips_savepoints() {
        let main = samples::fig6();
        let mut data = DataSpace::new();
        let cursor = Cursor::new(&main);
        let mut table = SavepointTable::new();
        let mut log = RollbackLog::new();
        log.push(bos(0));
        log.push(eos(0));
        table.on_step_committed();
        table.on_enter_sub("S", &mut data, &cursor, &mut log, LoggingMode::State);
        assert_eq!(log.last_eos().unwrap().step_seq, 0);
    }

    #[test]
    fn remove_full_savepoint_upgrades_marker() {
        let main = samples::fig6();
        let mut data = DataSpace::new();
        data.set_sro("v", Value::from(9i64));
        let cursor = Cursor::new(&main);
        let mut table = SavepointTable::new();
        let mut log = RollbackLog::new();
        let a = table.on_enter_sub("A", &mut data, &cursor, &mut log, LoggingMode::State);
        let b = table.on_enter_sub("B", &mut data, &cursor, &mut log, LoggingMode::State);
        // B's savepoint is a marker onto A's.
        assert_eq!(log.find_savepoint(b).unwrap().sro, SroPayload::Ref(a));
        log.remove_savepoint(a, &mut data).unwrap();
        match &log.find_savepoint(b).unwrap().sro {
            SroPayload::Full(img) => {
                assert_eq!(img.get("v").and_then(Value::as_i64), Some(9));
            }
            other => panic!("marker not upgraded: {other:?}"),
        }
        // Marker count reflects the upgrade.
        assert_eq!(log.stats().markers, 0);
    }

    #[test]
    fn remove_newest_delta_updates_shadow() {
        let main = samples::fig6();
        let mut data = DataSpace::new();
        data.set_sro("v", Value::from(1i64));
        data.enable_shadow();
        let cursor = Cursor::new(&main);
        let mut table = SavepointTable::new();
        let mut log = RollbackLog::new();
        let _a = table.on_enter_sub("A", &mut data, &cursor, &mut log, LoggingMode::Transition);
        table.on_step_committed();
        data.set_sro("v", Value::from(2i64));
        let b = table.on_enter_sub("B", &mut data, &cursor, &mut log, LoggingMode::Transition);
        // Shadow is now S_b (v=2). Removing B (the newest) must roll the
        // shadow back to S_a (v=1).
        log.remove_savepoint(b, &mut data).unwrap();
        assert_eq!(
            data.shadow().unwrap().get("v").and_then(Value::as_i64),
            Some(1)
        );
    }

    #[test]
    fn remove_middle_delta_composes_into_next() {
        let main = samples::fig6();
        let mut data = DataSpace::new();
        data.set_sro("v", Value::from(1i64));
        data.enable_shadow();
        let cursor = Cursor::new(&main);
        let mut table = SavepointTable::new();
        let mut log = RollbackLog::new();
        let _a = table.on_enter_sub("A", &mut data, &cursor, &mut log, LoggingMode::Transition);
        table.on_step_committed();
        data.set_sro("v", Value::from(2i64));
        let b = table.on_enter_sub("B", &mut data, &cursor, &mut log, LoggingMode::Transition);
        table.on_step_committed();
        data.set_sro("v", Value::from(3i64));
        let c = table.on_enter_sub("C", &mut data, &cursor, &mut log, LoggingMode::Transition);
        // Remove B: C's delta (S_c→S_b) must become (S_c→S_a), i.e. v: 3→1.
        log.remove_savepoint(b, &mut data).unwrap();
        match &log.find_savepoint(c).unwrap().sro {
            SroPayload::Delta(d) => {
                assert_eq!(d.changed.get("v").and_then(Value::as_i64), Some(1));
            }
            other => panic!("expected delta, got {other:?}"),
        }
    }

    #[test]
    fn remove_absent_savepoint_returns_false() {
        let mut log = RollbackLog::new();
        let mut data = DataSpace::new();
        assert!(!log.remove_savepoint(SavepointId(5), &mut data).unwrap());
    }

    #[test]
    fn log_serializes() {
        let mut log = RollbackLog::new();
        log.push(bos(0));
        log.push(oe(0));
        log.push(eos(0));
        let bytes = mar_wire::to_bytes(&log).unwrap();
        let back: RollbackLog = mar_wire::from_slice(&bytes).unwrap();
        assert_eq!(back, log);
        assert_eq!(back.size_bytes(), log.size_bytes());
    }

    // ---- segment-index specific tests --------------------------------------

    fn sp_entry(id: u64, sro: SroPayload) -> LogEntry {
        let main = samples::fig6();
        LogEntry::Savepoint(SpEntry {
            id: SavepointId(id),
            sub_id: None,
            explicit: true,
            cursor: Cursor::new(&main),
            table: SavepointTable::new(),
            sro,
        })
    }

    #[test]
    fn serialization_is_byte_identical_to_reference_model() {
        let mut log = RollbackLog::new();
        let mut naive = NaiveLog::new();
        let entries = [
            sp_entry(0, SroPayload::Full(crate::data::ObjectMap::new())),
            bos(0),
            oe(0),
            eos(0),
            sp_entry(1, SroPayload::Ref(SavepointId(0))),
            bos(1),
            eos(1),
        ];
        for e in entries {
            log.push(e.clone());
            naive.push(e);
        }
        assert_eq!(
            mar_wire::to_bytes(&log).unwrap(),
            mar_wire::to_bytes(&naive).unwrap(),
            "segment-indexed log must serialize exactly like the flat model"
        );
        // And the cross-decode works both ways.
        let as_naive: NaiveLog = mar_wire::from_slice(&mar_wire::to_bytes(&log).unwrap()).unwrap();
        assert_eq!(as_naive.len(), log.len());
        let as_log: RollbackLog =
            mar_wire::from_slice(&mar_wire::to_bytes(&naive).unwrap()).unwrap();
        assert_eq!(as_log, log);
    }

    #[test]
    fn index_tracks_positions_across_removals() {
        let mut log = RollbackLog::new();
        let mut data = DataSpace::new();
        for i in 0..5u64 {
            log.push(sp_entry(i, SroPayload::Full(crate::data::ObjectMap::new())));
            log.push(bos(i));
            log.push(eos(i));
        }
        assert_eq!(log.segment_count(), 5);
        // Remove a middle savepoint: later positions shift.
        assert!(log.remove_savepoint(SavepointId(2), &mut data).unwrap());
        assert_eq!(log.segment_count(), 4);
        for i in [0u64, 1, 3, 4] {
            assert_eq!(
                log.find_savepoint(SavepointId(i)).map(|sp| sp.id),
                Some(SavepointId(i)),
                "savepoint {i} must stay addressable"
            );
        }
        assert!(!log.contains_savepoint(SavepointId(2)));
        // Entry order is preserved: the removed savepoint's tail follows
        // the previous segment.
        let tags: Vec<&str> = log.iter().map(LogEntry::tag).collect();
        assert_eq!(
            tags,
            [
                "SP", "BOS", "EOS", "SP", "BOS", "EOS", "BOS", "EOS", "SP", "BOS", "EOS", "SP",
                "BOS", "EOS"
            ]
        );
        assert_eq!(
            log.savepoint_ids().collect::<Vec<_>>(),
            [
                SavepointId(0),
                SavepointId(1),
                SavepointId(3),
                SavepointId(4)
            ]
        );
    }

    #[test]
    fn top_savepoint_walk() {
        let mut log = RollbackLog::new();
        log.push(bos(0));
        log.push(eos(0));
        assert!(log.top_savepoint().is_none());
        log.push(sp_entry(0, SroPayload::Full(crate::data::ObjectMap::new())));
        log.push(sp_entry(1, SroPayload::Ref(SavepointId(0))));
        assert_eq!(log.top_savepoint().unwrap().id, SavepointId(1));
        assert_eq!(log.pop_top_savepoint().unwrap().id, SavepointId(1));
        assert_eq!(log.pop_top_savepoint().unwrap().id, SavepointId(0));
        assert!(log.pop_top_savepoint().is_none());
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn append_step_logs_frame_and_reports_mixed() {
        let mut log = RollbackLog::new();
        let mixed = log.append_step(
            3,
            7,
            "buy",
            [
                (EntryKind::Resource, CompOp::new("undo", Value::Null)),
                (EntryKind::Mixed, CompOp::new("back", Value::Null)),
            ],
            vec![4],
        );
        assert!(mixed);
        let tags: Vec<&str> = log.iter().map(LogEntry::tag).collect();
        assert_eq!(tags, ["BOS", "OE", "OE", "EOS"]);
        let eos = log.last_eos().unwrap();
        assert!(eos.has_mixed);
        assert_eq!(
            (eos.node, eos.step_seq, eos.alt_nodes.as_slice()),
            (3, 7, &[4u32][..])
        );

        let mut plain = RollbackLog::new();
        assert!(!plain.append_step(1, 0, "m", [], vec![]));
    }

    #[test]
    fn stats_incremental_matches_reference_recompute() {
        let mut log = RollbackLog::new();
        let mut data = DataSpace::new();
        log.push(sp_entry(0, SroPayload::Full(crate::data::ObjectMap::new())));
        log.push(bos(0));
        log.push(oe(0));
        log.push(eos(0));
        log.push(sp_entry(1, SroPayload::Ref(SavepointId(0))));
        // Exercise every mutation path, checking the incremental stats
        // against the from-scratch recompute each time.
        assert_eq!(log.stats(), LogStats::of(&log));
        log.remove_savepoint(SavepointId(0), &mut data).unwrap();
        assert_eq!(log.stats(), LogStats::of(&log));
        log.pop().unwrap();
        assert_eq!(log.stats(), LogStats::of(&log));
        log.push(oe(1));
        assert_eq!(log.stats(), LogStats::of(&log));
        assert_eq!(log.stats().total_bytes, log.size_bytes());
    }

    #[test]
    fn iter_rev_is_exact_reverse_of_iter() {
        let mut log = RollbackLog::new();
        log.push(bos(0));
        log.push(eos(0));
        log.push(sp_entry(0, SroPayload::Full(crate::data::ObjectMap::new())));
        log.push(bos(1));
        log.push(oe(1));
        log.push(eos(1));
        log.push(sp_entry(1, SroPayload::Ref(SavepointId(0))));
        let fwd: Vec<&LogEntry> = log.iter().collect();
        let mut rev: Vec<&LogEntry> = log.iter_rev().collect();
        rev.reverse();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn dirty_bit_tracks_compaction_opportunities() {
        let mut log = RollbackLog::new();
        let mut data = DataSpace::new();
        assert!(!log.is_dirty(), "an empty log has nothing to compact");
        log.push(bos(0));
        log.push(eos(0));
        assert!(!log.is_dirty(), "step frames alone carry no redundancy");
        log.push(sp_entry(0, SroPayload::Full(crate::data::ObjectMap::new())));
        assert!(log.is_dirty(), "a new savepoint payload may be redundant");
        log.compact(None);
        assert!(!log.is_dirty(), "a pass leaves the log clean");
        log.push(bos(1));
        log.push(eos(1));
        assert!(
            !log.is_dirty(),
            "appended frames keep a compacted log clean"
        );
        log.push(sp_entry(1, SroPayload::Full(crate::data::ObjectMap::new())));
        assert!(log.is_dirty());
        log.compact(None);
        assert!(!log.is_dirty());
        log.pop().unwrap();
        assert!(
            !log.is_dirty(),
            "pops never create redundancy below the top"
        );
        log.remove_savepoint(SavepointId(0), &mut data).unwrap();
        assert!(log.is_dirty(), "removal rewrites payloads above it");
        // The wire carries no compaction state: decoded logs with
        // savepoints are conservatively dirty, savepoint-free ones clean.
        log.push(sp_entry(2, SroPayload::Full(crate::data::ObjectMap::new())));
        let bytes = mar_wire::to_bytes(&log).unwrap();
        let back: RollbackLog = mar_wire::from_slice(&bytes).unwrap();
        assert!(back.is_dirty());
        let mut frames_only = RollbackLog::new();
        frames_only.push(bos(0));
        frames_only.push(eos(0));
        let bytes = mar_wire::to_bytes(&frames_only).unwrap();
        let back: RollbackLog = mar_wire::from_slice(&bytes).unwrap();
        assert!(!back.is_dirty());
    }

    /// The whole point of the `sync-log` feature: the size caches stop
    /// blocking `Sync`, so a future multi-threaded simulator can share
    /// read access to a log.
    #[cfg(feature = "sync-log")]
    #[test]
    fn sync_log_feature_makes_the_log_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RollbackLog>();
    }

    #[test]
    fn deserialized_log_measures_lazily_but_correctly() {
        let mut log = RollbackLog::new();
        log.push(bos(0));
        log.push(oe(0));
        log.push(eos(0));
        log.push(sp_entry(0, SroPayload::Full(crate::data::ObjectMap::new())));
        let bytes = mar_wire::to_bytes(&log).unwrap();
        let mut back: RollbackLog = mar_wire::from_slice(&bytes).unwrap();
        // Counts are exact immediately; byte totals carried by the wire.
        assert_eq!(back.len(), 4);
        assert_eq!(back.size_bytes(), log.size_bytes());
        // Popping must subtract the correct (lazily measured) sizes all the
        // way down to zero.
        while back.pop().is_some() {}
        assert_eq!(back.size_bytes(), 0);
        // And stats on a fresh copy measures everything once.
        let back2: RollbackLog = mar_wire::from_slice(&bytes).unwrap();
        assert_eq!(back2.stats(), LogStats::of(&back2));
    }
}
