//! The rollback log structure.

use serde::{Deserialize, Serialize};

use crate::data::DataSpace;
use crate::error::CoreError;
use crate::log::entry::{EosEntry, LogEntry, SpEntry, SroPayload};
use crate::log::stats::LogStats;
use crate::savepoint::SavepointId;

/// The agent rollback log: a stack of [`LogEntry`]s with byte-size
/// accounting (the log migrates with the agent, so its size is a first-class
/// experimental quantity, §4.4.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RollbackLog {
    entries: Vec<LogEntry>,
    bytes: usize,
}

impl RollbackLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        RollbackLog::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: LogEntry) {
        self.bytes += entry.encoded_size();
        self.entries.push(entry);
    }

    /// Removes and returns the last entry.
    pub fn pop(&mut self) -> Option<LogEntry> {
        let e = self.entries.pop()?;
        self.bytes = self.bytes.saturating_sub(e.encoded_size());
        Some(e)
    }

    /// The last entry, if any.
    pub fn last(&self) -> Option<&LogEntry> {
        self.entries.last()
    }

    /// Pops an entry that must be an end-of-step entry.
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptLog`] if the last entry is not an EOS.
    pub fn pop_eos(&mut self) -> Result<EosEntry, CoreError> {
        match self.pop() {
            Some(LogEntry::EndOfStep(e)) => Ok(e),
            Some(other) => {
                let tag = other.tag();
                self.push(other);
                Err(CoreError::CorruptLog(format!("expected EOS, found {tag}")))
            }
            None => Err(CoreError::EmptyLog),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total encoded size of all entries in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter()
    }

    /// Discards everything (top-level sub-itinerary completion, §4.4.2).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }

    /// Finds a savepoint entry by id.
    pub fn find_savepoint(&self, id: SavepointId) -> Option<&SpEntry> {
        self.entries.iter().find_map(|e| match e {
            LogEntry::Savepoint(sp) if sp.id == id => Some(sp),
            _ => None,
        })
    }

    /// Whether the log contains the savepoint.
    pub fn contains_savepoint(&self, id: SavepointId) -> bool {
        self.find_savepoint(id).is_some()
    }

    /// The id of the most recent data-bearing (non-marker) savepoint.
    pub fn last_data_savepoint(&self) -> Option<SavepointId> {
        self.entries.iter().rev().find_map(|e| match e {
            LogEntry::Savepoint(sp) if !sp.sro.is_marker() => Some(sp.id),
            _ => None,
        })
    }

    /// The most recent end-of-step entry (the next compensation target).
    pub fn last_eos(&self) -> Option<&EosEntry> {
        self.entries.iter().rev().find_map(|e| match e {
            LogEntry::EndOfStep(eos) => Some(eos),
            _ => None,
        })
    }

    /// Removes the savepoint entry `id` when its sub-itinerary completes
    /// (§4.4.2), preserving restorability of every other savepoint:
    ///
    /// * **Transition logging:** the removed delta is absorbed — composed
    ///   into the next (newer) delta savepoint if one exists, otherwise
    ///   applied to the agent's shadow copy (the removed savepoint *was* the
    ///   newest). This is the "non-trivial task" the paper alludes to.
    /// * **State logging:** if a newer marker references the removed
    ///   savepoint, the marker is upgraded in place to carry the full image.
    ///
    /// Returns `false` if the savepoint is not in the log.
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptLog`] on payload inconsistencies.
    pub fn remove_savepoint(
        &mut self,
        id: SavepointId,
        data: &mut DataSpace,
    ) -> Result<bool, CoreError> {
        let Some(idx) = self.entries.iter().position(
            |e| matches!(e, LogEntry::Savepoint(sp) if sp.id == id),
        ) else {
            return Ok(false);
        };
        let LogEntry::Savepoint(removed) = self.entries.remove(idx) else {
            unreachable!("position matched a savepoint");
        };
        self.bytes = self
            .bytes
            .saturating_sub(LogEntry::Savepoint(removed.clone()).encoded_size());

        match &removed.sro {
            SroPayload::Delta(delta) => {
                // Find the next *delta* savepoint above; its delta chained to
                // the removed one.
                let next_sp = self.entries[idx..].iter_mut().find_map(|e| match e {
                    LogEntry::Savepoint(sp) if matches!(sp.sro, SroPayload::Delta(_)) => {
                        Some(sp)
                    }
                    _ => None,
                });
                match next_sp {
                    Some(sp) => {
                        let SroPayload::Delta(next_delta) = &sp.sro else {
                            unreachable!("matched delta payload");
                        };
                        let merged = next_delta.compose(delta);
                        let old_size = LogEntry::Savepoint(sp.clone()).encoded_size();
                        sp.sro = SroPayload::Delta(merged);
                        let new_size = LogEntry::Savepoint(sp.clone()).encoded_size();
                        self.bytes = self.bytes.saturating_sub(old_size) + new_size;
                    }
                    None => {
                        // Removed the newest delta savepoint: the shadow (state
                        // at that savepoint) moves back to the previous one.
                        data.apply_delta_to_shadow(delta);
                    }
                }
            }
            SroPayload::Full(image) => {
                // Upgrade any newer marker referencing this savepoint.
                for e in self.entries[idx..].iter_mut() {
                    if let LogEntry::Savepoint(sp) = e {
                        if sp.sro == SroPayload::Ref(id) {
                            let old_size = LogEntry::Savepoint(sp.clone()).encoded_size();
                            sp.sro = SroPayload::Full(image.clone());
                            let new_size = LogEntry::Savepoint(sp.clone()).encoded_size();
                            self.bytes = self.bytes.saturating_sub(old_size) + new_size;
                        }
                    }
                }
            }
            SroPayload::Ref(_) => {
                // Markers hold no data; nothing to absorb.
            }
        }
        Ok(true)
    }

    /// Computes per-entry-type statistics.
    pub fn stats(&self) -> LogStats {
        LogStats::of(self)
    }

    /// Checks the SP/BOS/OE/EOS grammar:
    /// `(SP | BOS OE* EOS)*` — operation entries only between BOS and EOS,
    /// step numbers consistent.
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptLog`] describing the first violation.
    pub fn validate(&self) -> Result<(), CoreError> {
        let mut open_step: Option<u64> = None;
        for e in &self.entries {
            match e {
                LogEntry::Savepoint(_) => {
                    if open_step.is_some() {
                        return Err(CoreError::CorruptLog(
                            "savepoint inside a step (savepoints only at step ends, §2)"
                                .to_owned(),
                        ));
                    }
                }
                LogEntry::BeginOfStep(b) => {
                    if open_step.is_some() {
                        return Err(CoreError::CorruptLog("nested BOS".to_owned()));
                    }
                    open_step = Some(b.step_seq);
                }
                LogEntry::Operation(oe) => {
                    if open_step != Some(oe.step_seq) {
                        return Err(CoreError::CorruptLog(format!(
                            "operation entry for step {} outside its BOS/EOS",
                            oe.step_seq
                        )));
                    }
                }
                LogEntry::EndOfStep(eos) => {
                    if open_step != Some(eos.step_seq) {
                        return Err(CoreError::CorruptLog(format!(
                            "EOS for step {} without matching BOS",
                            eos.step_seq
                        )));
                    }
                    open_step = None;
                }
            }
        }
        if open_step.is_some() {
            return Err(CoreError::CorruptLog("unclosed BOS at log end".to_owned()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comp::{CompOp, EntryKind};
    use crate::log::entry::{BosEntry, OpEntry};
    use crate::log::LoggingMode;
    use crate::savepoint::SavepointTable;
    use mar_itinerary::{samples, Cursor};
    use mar_wire::Value;

    fn bos(step: u64) -> LogEntry {
        LogEntry::BeginOfStep(BosEntry {
            node: 1,
            step_seq: step,
            method: format!("m{step}"),
        })
    }

    fn oe(step: u64) -> LogEntry {
        LogEntry::Operation(OpEntry {
            kind: EntryKind::Resource,
            op: CompOp::new("undo", Value::from(step as i64)),
            step_seq: step,
        })
    }

    fn eos(step: u64) -> LogEntry {
        LogEntry::EndOfStep(EosEntry {
            node: 1,
            step_seq: step,
            method: format!("m{step}"),
            has_mixed: false,
            alt_nodes: vec![],
        })
    }

    #[test]
    fn push_pop_size_accounting() {
        let mut log = RollbackLog::new();
        log.push(bos(0));
        log.push(oe(0));
        let sz = log.size_bytes();
        assert!(sz > 0);
        log.push(eos(0));
        assert!(log.size_bytes() > sz);
        log.pop().unwrap();
        assert_eq!(log.size_bytes(), sz);
        log.pop().unwrap();
        log.pop().unwrap();
        assert_eq!(log.size_bytes(), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn grammar_validation() {
        let mut log = RollbackLog::new();
        log.push(bos(0));
        log.push(oe(0));
        log.push(eos(0));
        log.validate().unwrap();

        let mut bad = RollbackLog::new();
        bad.push(oe(0));
        assert!(bad.validate().is_err());

        let mut nested = RollbackLog::new();
        nested.push(bos(0));
        nested.push(bos(1));
        assert!(nested.validate().is_err());

        let mut unclosed = RollbackLog::new();
        unclosed.push(bos(0));
        assert!(unclosed.validate().is_err());
    }

    #[test]
    fn pop_eos_type_checked() {
        let mut log = RollbackLog::new();
        log.push(bos(0));
        assert!(matches!(log.pop_eos(), Err(CoreError::CorruptLog(_))));
        // Entry was pushed back.
        assert_eq!(log.len(), 1);
        log.push(eos(0));
        assert_eq!(log.pop_eos().unwrap().step_seq, 0);
    }

    #[test]
    fn last_eos_skips_savepoints() {
        let main = samples::fig6();
        let mut data = DataSpace::new();
        let cursor = Cursor::new(&main);
        let mut table = SavepointTable::new();
        let mut log = RollbackLog::new();
        log.push(bos(0));
        log.push(eos(0));
        table.on_step_committed();
        table.on_enter_sub("S", &mut data, &cursor, &mut log, LoggingMode::State);
        assert_eq!(log.last_eos().unwrap().step_seq, 0);
    }

    #[test]
    fn remove_full_savepoint_upgrades_marker() {
        let main = samples::fig6();
        let mut data = DataSpace::new();
        data.set_sro("v", Value::from(9i64));
        let cursor = Cursor::new(&main);
        let mut table = SavepointTable::new();
        let mut log = RollbackLog::new();
        let a = table.on_enter_sub("A", &mut data, &cursor, &mut log, LoggingMode::State);
        let b = table.on_enter_sub("B", &mut data, &cursor, &mut log, LoggingMode::State);
        // B's savepoint is a marker onto A's.
        assert_eq!(log.find_savepoint(b).unwrap().sro, SroPayload::Ref(a));
        log.remove_savepoint(a, &mut data).unwrap();
        match &log.find_savepoint(b).unwrap().sro {
            SroPayload::Full(img) => {
                assert_eq!(img.get("v").and_then(Value::as_i64), Some(9));
            }
            other => panic!("marker not upgraded: {other:?}"),
        }
    }

    #[test]
    fn remove_newest_delta_updates_shadow() {
        let main = samples::fig6();
        let mut data = DataSpace::new();
        data.set_sro("v", Value::from(1i64));
        data.enable_shadow();
        let cursor = Cursor::new(&main);
        let mut table = SavepointTable::new();
        let mut log = RollbackLog::new();
        let _a = table.on_enter_sub("A", &mut data, &cursor, &mut log, LoggingMode::Transition);
        table.on_step_committed();
        data.set_sro("v", Value::from(2i64));
        let b = table.on_enter_sub("B", &mut data, &cursor, &mut log, LoggingMode::Transition);
        // Shadow is now S_b (v=2). Removing B (the newest) must roll the
        // shadow back to S_a (v=1).
        log.remove_savepoint(b, &mut data).unwrap();
        assert_eq!(
            data.shadow().unwrap().get("v").and_then(Value::as_i64),
            Some(1)
        );
    }

    #[test]
    fn remove_middle_delta_composes_into_next() {
        let main = samples::fig6();
        let mut data = DataSpace::new();
        data.set_sro("v", Value::from(1i64));
        data.enable_shadow();
        let cursor = Cursor::new(&main);
        let mut table = SavepointTable::new();
        let mut log = RollbackLog::new();
        let _a = table.on_enter_sub("A", &mut data, &cursor, &mut log, LoggingMode::Transition);
        table.on_step_committed();
        data.set_sro("v", Value::from(2i64));
        let b = table.on_enter_sub("B", &mut data, &cursor, &mut log, LoggingMode::Transition);
        table.on_step_committed();
        data.set_sro("v", Value::from(3i64));
        let c = table.on_enter_sub("C", &mut data, &cursor, &mut log, LoggingMode::Transition);
        // Remove B: C's delta (S_c→S_b) must become (S_c→S_a), i.e. v: 3→1.
        log.remove_savepoint(b, &mut data).unwrap();
        match &log.find_savepoint(c).unwrap().sro {
            SroPayload::Delta(d) => {
                assert_eq!(d.changed.get("v").and_then(Value::as_i64), Some(1));
            }
            other => panic!("expected delta, got {other:?}"),
        }
    }

    #[test]
    fn remove_absent_savepoint_returns_false() {
        let mut log = RollbackLog::new();
        let mut data = DataSpace::new();
        assert!(!log.remove_savepoint(SavepointId(5), &mut data).unwrap());
    }

    #[test]
    fn log_serializes() {
        let mut log = RollbackLog::new();
        log.push(bos(0));
        log.push(oe(0));
        log.push(eos(0));
        let bytes = mar_wire::to_bytes(&log).unwrap();
        let back: RollbackLog = mar_wire::from_slice(&bytes).unwrap();
        assert_eq!(back, log);
        assert_eq!(back.size_bytes(), log.size_bytes());
    }
}
