//! The agent rollback log (§4.2, Fig. 2).
//!
//! The log is attached to the agent and migrates with it. It holds, for
//! every committed step that may still be rolled back: a begin-of-step
//! entry, the operation entries describing the compensating operations, and
//! an end-of-step entry; savepoint entries mark the points the agent can be
//! rolled back to. It is persisted together with the agent at every
//! transaction commit.

//! Because the log migrates with the agent, its encoded size is a
//! first-class cost: the [`compact`] module shrinks redundant savepoint
//! payloads before a transfer without changing anything rollback or
//! savepoint removal can observe (see `docs/WIRE.md` for the wire-level
//! compatibility invariant).

pub mod compact;
mod entry;
#[allow(clippy::module_inception)]
mod log;
pub mod reference;
mod segment;
mod stats;

pub use compact::CompactionReport;
pub use entry::{BosEntry, EosEntry, LogEntry, OpEntry, SpEntry, SroPayload};
pub use log::RollbackLog;
pub use stats::LogStats;

use serde::{Deserialize, Serialize};

/// How strongly reversible objects are captured in savepoint entries (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LoggingMode {
    /// State logging: each savepoint stores a complete SRO image.
    #[default]
    State,
    /// Transition logging: each savepoint stores the backward delta to the
    /// previous savepoint; the agent carries a shadow copy of the SRO state
    /// at the last savepoint (see [`crate::DataSpace`]).
    Transition,
}
