//! Log compaction: shrinking the rollback log before a migration without
//! changing what rollback can observe (ROADMAP "log compaction on
//! migration"; see `docs/WIRE.md` for the wire-level invariant).
//!
//! The log an agent drags from node to node is the dominant transfer cost
//! (§4.4.2). Three kinds of redundancy accumulate in savepoint entries while
//! the rest of the log (BOS/OE/EOS frames — the compensation program itself)
//! must be preserved verbatim:
//!
//! 1. **Duplicate full images** (state logging): a savepoint constituted
//!    after steps that never touched a strongly reversible object stores the
//!    same image as the previous data-bearing savepoint, byte for byte. The
//!    §4.4.2 marker rule only catches the *zero-steps-in-between* case;
//!    compaction demotes the general case to a [`SroPayload::Ref`] marker.
//! 2. **Non-minimal deltas** (transition logging): composing deltas when
//!    savepoints are removed ([`RollbackLog::remove_savepoint`]) can leave
//!    *identity* entries — keys "restored" to the value they already have at
//!    the only state the delta is ever applied to. Compaction re-derives
//!    each delta against the reconstructed savepoint states and keeps only
//!    the keys that actually change; a delta that becomes empty is demoted
//!    to a marker.
//! 3. **Marker chains**: demotions (and rollback/removal histories) can
//!    leave `Ref → Ref → … → data` chains. Compaction collapses every
//!    marker to reference its data-bearing root directly.
//!
//! The pass rewrites savepoint *payloads* only — entry count, entry order,
//! savepoint ids, cursors, and table snapshots are untouched — so the
//! compacted log serializes to the same flat `SP | BOS OE* EOS` wire layout
//! and stays readable by pre-compaction readers.
//! [`NaiveLog::compact`](crate::log::reference::NaiveLog::compact) is the
//! executable specification of the same transformation; the model-based
//! property tests require both to produce byte-identical logs.

use std::collections::BTreeMap;
use std::fmt;

use crate::data::{ObjectMap, SroDelta};
use crate::log::entry::{LogEntry, SpEntry, SroPayload};
use crate::log::log::RollbackLog;
use crate::savepoint::SavepointId;

/// What one [`RollbackLog::compact`] pass did, with before/after byte
/// totals. Returned by the production and the reference implementation so
/// the property tests can require the two to agree action-for-action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionReport {
    /// Savepoint entries examined (the only entries compaction may touch).
    pub savepoints: usize,
    /// Marker chains re-pointed at their data-bearing root.
    pub refs_collapsed: usize,
    /// Full images demoted to markers (duplicate of the previous
    /// data-bearing savepoint's image).
    pub images_demoted: usize,
    /// Empty backward deltas demoted to markers.
    pub deltas_demoted: usize,
    /// Identity keys pruned out of non-minimal deltas.
    pub delta_keys_pruned: usize,
    /// Encoded log size before the pass.
    pub bytes_before: usize,
    /// Encoded log size after the pass.
    pub bytes_after: usize,
}

impl CompactionReport {
    /// True if the pass rewrote at least one payload.
    pub fn changed(&self) -> bool {
        self.refs_collapsed + self.images_demoted + self.deltas_demoted + self.delta_keys_pruned > 0
    }

    /// Bytes the pass shaved off the log (what a migration no longer
    /// transfers).
    pub fn saved_bytes(&self) -> usize {
        self.bytes_before.saturating_sub(self.bytes_after)
    }
}

impl fmt::Display for CompactionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} B (saved {}; {} image(s) demoted, {} empty delta(s) demoted, \
             {} delta key(s) pruned, {} ref(s) collapsed over {} savepoint(s))",
            self.bytes_before,
            self.bytes_after,
            self.saved_bytes(),
            self.images_demoted,
            self.deltas_demoted,
            self.delta_keys_pruned,
            self.refs_collapsed,
            self.savepoints
        )
    }
}

/// How a processed savepoint looks to savepoints above it: a marker
/// referencing another savepoint, or a data-bearing entry.
pub(crate) enum Resolved {
    /// Marker payload referencing the given savepoint.
    Marker(SavepointId),
    /// Full or delta payload (a valid chain root).
    Data,
}

/// Follows a marker chain through already-processed savepoints to its
/// data-bearing root. Returns `None` when the chain dangles (a reference to
/// a savepoint no longer in the log, or — in corrupt logs — a forward
/// reference), in which case the marker is left untouched. `bound` caps the
/// walk so a (corrupt) reference cycle cannot loop forever.
pub(crate) fn resolve_root(
    seen: &BTreeMap<SavepointId, Resolved>,
    start: SavepointId,
    bound: usize,
) -> Option<SavepointId> {
    let mut cur = start;
    for _ in 0..=bound {
        match seen.get(&cur) {
            Some(Resolved::Data) => return Some(cur),
            Some(Resolved::Marker(next)) => cur = *next,
            None => return None,
        }
    }
    None
}

/// Re-derives `delta` against the state it is actually applied to during
/// rollback. Returns the minimal equivalent delta, the state *below* the
/// savepoint (= `delta` applied to `state`), and how many identity keys the
/// minimization dropped.
pub(crate) fn minimize_delta(delta: &SroDelta, state: &ObjectMap) -> (SroDelta, ObjectMap, usize) {
    let mut below = state.clone();
    delta.apply(&mut below);
    let minimal = SroDelta::diff(state, &below);
    let pruned = (delta.changed.len() + delta.removed.len())
        .saturating_sub(minimal.changed.len() + minimal.removed.len());
    (minimal, below, pruned)
}

fn sp_of(entry: &LogEntry) -> &SpEntry {
    match entry {
        LogEntry::Savepoint(sp) => sp,
        _ => unreachable!("segments start at savepoint entries"),
    }
}

fn set_payload(entry: &mut LogEntry, sro: SroPayload) {
    match entry {
        LogEntry::Savepoint(sp) => sp.sro = sro,
        _ => unreachable!("segments start at savepoint entries"),
    }
}

impl RollbackLog {
    /// Compacts the log in place, returning what changed.
    ///
    /// Rewrites savepoint payloads only — duplicate full images and empty
    /// deltas become [`SroPayload::Ref`] markers, deltas are re-minimized
    /// against the reconstructed savepoint states, and marker chains are
    /// collapsed to their data-bearing root (see the [module
    /// docs](crate::log::compact)). The entry sequence, the savepoint id
    /// set, every cursor/table snapshot, and all BOS/OE/EOS entries are
    /// unchanged, so rollback and savepoint removal behave identically on
    /// the compacted log, and the serialized form stays a valid flat log
    /// readable by pre-compaction readers.
    ///
    /// `shadow` is the SRO state at the newest savepoint still in the log —
    /// [`DataSpace::shadow`](crate::DataSpace::shadow) under transition
    /// logging, `None` under state logging (which skips the delta pass).
    /// The pass is idempotent: compacting a compacted log changes nothing.
    ///
    /// # Examples
    ///
    /// ```
    /// use mar_core::log::{LoggingMode, RollbackLog, SroPayload};
    /// use mar_core::{DataSpace, SavepointTable};
    /// use mar_itinerary::{samples, Cursor};
    /// use mar_wire::Value;
    ///
    /// let main = samples::fig6();
    /// let cursor = Cursor::new(&main);
    /// let (mut data, mut table, mut log) =
    ///     (DataSpace::new(), SavepointTable::new(), RollbackLog::new());
    /// data.set_sro("notes", Value::Bytes(vec![0xA5; 256]));
    ///
    /// // Savepoint, a step that never touches the SRO state, savepoint:
    /// // both savepoints store the same 256-byte image.
    /// let a = table.on_enter_sub("A", &mut data, &cursor, &mut log, LoggingMode::State);
    /// log.append_step(1, 0, "observe", [], vec![]);
    /// table.on_step_committed();
    /// let b = table.on_enter_sub("B", &mut data, &cursor, &mut log, LoggingMode::State);
    ///
    /// let report = log.compact(None);
    /// assert_eq!(report.images_demoted, 1);
    /// assert!(report.saved_bytes() > 200);
    /// // B is now a marker onto A; restoring B still yields the same image.
    /// assert_eq!(log.find_savepoint(b).unwrap().sro, SroPayload::Ref(a));
    /// assert!(matches!(
    ///     log.find_savepoint(a).unwrap().sro,
    ///     SroPayload::Full(_)
    /// ));
    /// ```
    pub fn compact(&mut self, shadow: Option<&ObjectMap>) -> CompactionReport {
        let mut report = CompactionReport {
            savepoints: self.segments.len(),
            bytes_before: self.size_bytes(),
            ..CompactionReport::default()
        };

        // Pass 1 — delta re-minimization (transition logging). Walking
        // newest → oldest reconstructs the SRO state at every savepoint
        // exactly the way rollback does: starting from the shadow and
        // applying each backward delta in turn; markers and full images
        // leave the rollback shadow untouched.
        if let Some(shadow) = shadow {
            let mut state = shadow.clone();
            for i in (0..self.segments.len()).rev() {
                let minimized = match &sp_of(&self.segments[i].sp.entry).sro {
                    SroPayload::Delta(d) => {
                        let (minimal, below, pruned) = minimize_delta(d, &state);
                        let out = (pruned > 0).then_some((minimal, pruned));
                        state = below;
                        out
                    }
                    _ => None,
                };
                if let Some((minimal, pruned)) = minimized {
                    report.delta_keys_pruned += pruned;
                    let (old, new) = self.segments[i]
                        .sp
                        .remeasure(|e| set_payload(e, SroPayload::Delta(minimal)));
                    self.resize_savepoint_bytes(old, new);
                }
            }
        }

        // Pass 2 — demotion and chain collapse, oldest → newest, so that a
        // marker created by a demotion is immediately chased through by the
        // markers above it.
        let mut seen: BTreeMap<SavepointId, Resolved> = BTreeMap::new();
        let mut last_data: Option<(SavepointId, usize)> = None;
        let bound = self.segments.len();
        for i in 0..self.segments.len() {
            enum Action {
                CollapseRef(SavepointId),
                DemoteImage(SavepointId),
                DemoteDelta(SavepointId),
            }
            let sp = sp_of(&self.segments[i].sp.entry);
            let id = sp.id;
            let action = match &sp.sro {
                SroPayload::Ref(t) => resolve_root(&seen, *t, bound)
                    .filter(|root| root != t)
                    .map(Action::CollapseRef),
                SroPayload::Full(img) => last_data.and_then(|(d_id, d_pos)| {
                    match &sp_of(&self.segments[d_pos].sp.entry).sro {
                        SroPayload::Full(d_img) if d_img == img => Some(Action::DemoteImage(d_id)),
                        _ => None,
                    }
                }),
                SroPayload::Delta(d) if d.is_empty() => {
                    last_data.map(|(d_id, _)| Action::DemoteDelta(d_id))
                }
                SroPayload::Delta(_) => None,
            };
            match action {
                Some(action) => {
                    let (target, was_marker) = match &action {
                        Action::CollapseRef(t) => (*t, true),
                        Action::DemoteImage(t) | Action::DemoteDelta(t) => (*t, false),
                    };
                    match action {
                        Action::CollapseRef(_) => report.refs_collapsed += 1,
                        Action::DemoteImage(_) => report.images_demoted += 1,
                        Action::DemoteDelta(_) => report.deltas_demoted += 1,
                    }
                    let (old, new) = self.segments[i]
                        .sp
                        .remeasure(|e| set_payload(e, SroPayload::Ref(target)));
                    self.resize_savepoint_bytes(old, new);
                    if !was_marker {
                        self.counts.markers += 1;
                    }
                    seen.insert(id, Resolved::Marker(target));
                }
                None => {
                    match &sp_of(&self.segments[i].sp.entry).sro {
                        SroPayload::Ref(t) => {
                            seen.insert(id, Resolved::Marker(*t));
                        }
                        SroPayload::Full(_) | SroPayload::Delta(_) => {
                            seen.insert(id, Resolved::Data);
                            last_data = Some((id, i));
                        }
                    };
                }
            }
        }

        report.bytes_after = self.size_bytes();
        self.mark_compacted();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comp::{CompOp, EntryKind};
    use crate::log::entry::{BosEntry, EosEntry, OpEntry};
    use crate::log::LoggingMode;
    use crate::savepoint::SavepointTable;
    use crate::DataSpace;
    use mar_itinerary::{samples, Cursor};
    use mar_wire::Value;

    fn sp_entry(id: u64, sro: SroPayload) -> LogEntry {
        let main = samples::fig6();
        LogEntry::Savepoint(SpEntry {
            id: SavepointId(id),
            sub_id: None,
            explicit: true,
            cursor: Cursor::new(&main),
            table: SavepointTable::new(),
            sro,
        })
    }

    fn step(seq: u64) -> [LogEntry; 3] {
        [
            LogEntry::BeginOfStep(BosEntry {
                node: 1,
                step_seq: seq,
                method: format!("m{seq}"),
            }),
            LogEntry::Operation(OpEntry {
                kind: EntryKind::Resource,
                op: CompOp::new("undo", Value::from(seq as i64)),
                step_seq: seq,
            }),
            LogEntry::EndOfStep(EosEntry {
                node: 1,
                step_seq: seq,
                method: format!("m{seq}"),
                has_mixed: false,
                alt_nodes: vec![],
            }),
        ]
    }

    fn big_image(tag: i64) -> ObjectMap {
        [
            ("blob".to_owned(), Value::Bytes(vec![0xAB; 128])),
            ("tag".to_owned(), Value::from(tag)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn duplicate_images_demote_to_markers() {
        let mut log = RollbackLog::new();
        log.push(sp_entry(0, SroPayload::Full(big_image(7))));
        for e in step(0) {
            log.push(e);
        }
        log.push(sp_entry(1, SroPayload::Full(big_image(7))));
        for e in step(1) {
            log.push(e);
        }
        log.push(sp_entry(2, SroPayload::Full(big_image(7))));
        let before = log.size_bytes();
        let report = log.compact(None);
        assert_eq!(report.images_demoted, 2);
        assert_eq!(report.bytes_before, before);
        assert_eq!(report.bytes_after, log.size_bytes());
        assert!(report.saved_bytes() > 200, "two 128-byte blobs gone");
        assert_eq!(
            log.find_savepoint(SavepointId(1)).unwrap().sro,
            SroPayload::Ref(SavepointId(0))
        );
        assert_eq!(
            log.find_savepoint(SavepointId(2)).unwrap().sro,
            SroPayload::Ref(SavepointId(0)),
            "demotion chains collapse to the data root in the same pass"
        );
        assert_eq!(log.stats().markers, 2);
        log.validate().unwrap();
    }

    #[test]
    fn distinct_images_are_kept() {
        let mut log = RollbackLog::new();
        log.push(sp_entry(0, SroPayload::Full(big_image(1))));
        for e in step(0) {
            log.push(e);
        }
        log.push(sp_entry(1, SroPayload::Full(big_image(2))));
        let report = log.compact(None);
        assert!(!report.changed());
        assert_eq!(report.saved_bytes(), 0);
    }

    #[test]
    fn ref_chains_collapse_to_root() {
        let mut log = RollbackLog::new();
        log.push(sp_entry(0, SroPayload::Full(big_image(1))));
        log.push(sp_entry(1, SroPayload::Ref(SavepointId(0))));
        log.push(sp_entry(2, SroPayload::Ref(SavepointId(1))));
        log.push(sp_entry(3, SroPayload::Ref(SavepointId(2))));
        let report = log.compact(None);
        assert_eq!(report.refs_collapsed, 2, "SP2 and SP3 re-pointed");
        for id in [1u64, 2, 3] {
            assert_eq!(
                log.find_savepoint(SavepointId(id)).unwrap().sro,
                SroPayload::Ref(SavepointId(0))
            );
        }
    }

    #[test]
    fn dangling_refs_are_left_alone() {
        let mut log = RollbackLog::new();
        log.push(sp_entry(0, SroPayload::Ref(SavepointId(99))));
        let report = log.compact(None);
        assert!(!report.changed());
        assert_eq!(
            log.find_savepoint(SavepointId(0)).unwrap().sro,
            SroPayload::Ref(SavepointId(99))
        );
    }

    #[test]
    fn empty_deltas_demote_and_identity_keys_prune() {
        // Transition logging: build states via the real shadow machinery.
        let main = samples::fig6();
        let cursor = Cursor::new(&main);
        let mut data = DataSpace::new();
        data.set_sro("v", Value::from(1i64));
        data.enable_shadow();
        let mut table = SavepointTable::new();
        let mut log = RollbackLog::new();
        let _a = table.on_enter_sub("A", &mut data, &cursor, &mut log, LoggingMode::Transition);
        table.on_step_committed();
        // No SRO change: B's delta is empty (but not a marker — a step
        // committed in between, so the §4.4.2 marker rule cannot fire).
        let b = table.on_enter_sub("B", &mut data, &cursor, &mut log, LoggingMode::Transition);
        assert!(matches!(
            &log.find_savepoint(b).unwrap().sro,
            SroPayload::Delta(d) if d.is_empty()
        ));
        table.on_step_committed();
        data.set_sro("v", Value::from(2i64));
        let c = table.on_enter_sub("C", &mut data, &cursor, &mut log, LoggingMode::Transition);

        let shadow = data.shadow().cloned().unwrap();
        let report = log.compact(Some(&shadow));
        assert_eq!(report.deltas_demoted, 1);
        assert!(log.find_savepoint(b).unwrap().sro.is_marker());
        // C's real delta is untouched.
        assert!(matches!(
            &log.find_savepoint(c).unwrap().sro,
            SroPayload::Delta(d) if !d.is_empty()
        ));
    }

    #[test]
    fn composed_identity_entries_are_pruned() {
        // v: 1 → 2 → 1 across three savepoints; removing the middle one
        // composes C's delta into {v: 1} although the state at C is already
        // v = 1 — a pure identity entry.
        let main = samples::fig6();
        let cursor = Cursor::new(&main);
        let mut data = DataSpace::new();
        data.set_sro("v", Value::from(1i64));
        data.enable_shadow();
        let mut table = SavepointTable::new();
        let mut log = RollbackLog::new();
        let _a = table.on_enter_sub("A", &mut data, &cursor, &mut log, LoggingMode::Transition);
        table.on_step_committed();
        data.set_sro("v", Value::from(2i64));
        let b = table.on_enter_sub("B", &mut data, &cursor, &mut log, LoggingMode::Transition);
        table.on_step_committed();
        data.set_sro("v", Value::from(1i64));
        let c = table.on_enter_sub("C", &mut data, &cursor, &mut log, LoggingMode::Transition);
        log.remove_savepoint(b, &mut data).unwrap();
        assert!(matches!(
            &log.find_savepoint(c).unwrap().sro,
            SroPayload::Delta(d) if !d.is_empty()
        ));

        let shadow = data.shadow().cloned().unwrap();
        let report = log.compact(Some(&shadow));
        assert_eq!(report.delta_keys_pruned, 1);
        assert_eq!(report.deltas_demoted, 1, "pruned-empty delta demotes too");
        assert!(log.find_savepoint(c).unwrap().sro.is_marker());
    }

    #[test]
    fn removing_delta_referenced_by_demoted_marker_keeps_marker_restorable() {
        // Regression: compaction demotes B's empty delta to Ref(A); removing
        // A (a delta savepoint) must hand A's delta to the marker instead of
        // composing it past the marker into C — otherwise rolling back to B
        // would restore the state *below* A. Both the compacted and the
        // uncompacted history must end up byte-identical after the removal.
        let build = || {
            let main = samples::fig6();
            let cursor = Cursor::new(&main);
            let mut data = DataSpace::new();
            data.set_sro("v", Value::from(1i64));
            data.enable_shadow();
            let mut table = SavepointTable::new();
            let mut log = RollbackLog::new();
            // v: 1 -> 2 before A, unchanged before B, 2 -> 3 before C.
            table.on_step_committed();
            data.set_sro("v", Value::from(2i64));
            let a = table.on_enter_sub("A", &mut data, &cursor, &mut log, LoggingMode::Transition);
            table.on_step_committed();
            let b = table.on_enter_sub("B", &mut data, &cursor, &mut log, LoggingMode::Transition);
            table.on_step_committed();
            data.set_sro("v", Value::from(3i64));
            let c = table.on_enter_sub("C", &mut data, &cursor, &mut log, LoggingMode::Transition);
            (log, data, a, b, c)
        };

        let (mut raw, mut raw_data, a, b, _c) = build();
        let (mut compacted, mut compact_data, _, _, _) = build();
        let shadow = compact_data.shadow().cloned().unwrap();
        let report = compacted.compact(Some(&shadow));
        assert_eq!(report.deltas_demoted, 1);
        assert_eq!(compacted.find_savepoint(b).unwrap().sro, SroPayload::Ref(a));

        raw.remove_savepoint(a, &mut raw_data).unwrap();
        compacted.remove_savepoint(a, &mut compact_data).unwrap();
        // The marker became the removed delta's carrier: restoring *at* B
        // still yields v = 2 (the shadow walk), and popping *past* B now
        // applies A's backward delta (v -> 1), exactly like the uncompacted
        // history where B (an empty delta) absorbed A's delta by composition.
        match (
            &raw.find_savepoint(b).unwrap().sro,
            &compacted.find_savepoint(b).unwrap().sro,
        ) {
            (SroPayload::Delta(d_raw), SroPayload::Delta(d_cmp)) => {
                assert_eq!(d_raw, d_cmp);
                assert_eq!(d_cmp.changed.get("v").and_then(Value::as_i64), Some(1));
            }
            other => panic!("expected delta carriers, got {other:?}"),
        }
        assert_eq!(raw_data, compact_data);
        assert_eq!(
            mar_wire::to_bytes(&raw).unwrap(),
            mar_wire::to_bytes(&compacted).unwrap(),
            "removal must commute with compaction"
        );
    }

    #[test]
    fn compaction_is_idempotent() {
        let mut log = RollbackLog::new();
        log.push(sp_entry(0, SroPayload::Full(big_image(7))));
        for e in step(0) {
            log.push(e);
        }
        log.push(sp_entry(1, SroPayload::Full(big_image(7))));
        log.push(sp_entry(2, SroPayload::Ref(SavepointId(1))));
        let first = log.compact(None);
        assert!(first.changed());
        let snapshot = mar_wire::to_bytes(&log).unwrap();
        let second = log.compact(None);
        assert!(!second.changed());
        assert_eq!(second.saved_bytes(), 0);
        assert_eq!(mar_wire::to_bytes(&log).unwrap(), snapshot);
    }

    #[test]
    fn accounting_stays_exact_after_compaction() {
        use crate::log::LogStats;
        let mut log = RollbackLog::new();
        log.push(sp_entry(0, SroPayload::Full(big_image(7))));
        for e in step(0) {
            log.push(e);
        }
        log.push(sp_entry(1, SroPayload::Full(big_image(7))));
        log.push(sp_entry(2, SroPayload::Ref(SavepointId(1))));
        log.compact(None);
        assert_eq!(log.stats(), LogStats::of(&log));
        assert_eq!(log.stats().total_bytes, log.size_bytes());
        // A compacted log still round-trips through the unchanged wire
        // format.
        let bytes = mar_wire::to_bytes(&log).unwrap();
        let back: RollbackLog = mar_wire::from_slice(&bytes).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn report_display_is_informative() {
        let mut log = RollbackLog::new();
        log.push(sp_entry(0, SroPayload::Full(big_image(7))));
        log.push(sp_entry(1, SroPayload::Ref(SavepointId(0))));
        let report = log.compact(None);
        let s = report.to_string();
        assert!(s.contains("saved 0"), "{s}");
    }
}
