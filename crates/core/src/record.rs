//! The serialized form of a mobile agent: what sits in input queues and
//! crosses the network.

use std::fmt;

use mar_itinerary::{Cursor, Itinerary};
use serde::{Deserialize, Serialize};

use crate::data::DataSpace;
use crate::log::{LoggingMode, RollbackLog};
use crate::planner::{RestorePlan, RollbackMode};
use crate::savepoint::{SavepointId, SavepointTable};

/// Unique agent identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AgentId(pub u64);

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// Execution status carried in the record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgentStatus {
    /// Normal forward execution.
    Forward,
    /// Rolling back towards the target savepoint.
    RollingBack {
        /// The savepoint being rolled back to.
        target: SavepointId,
    },
    /// The itinerary completed.
    Completed,
    /// The agent gave up (non-retryable failure or exhausted retries).
    Failed(String),
}

/// The complete migrating state of an agent: data spaces, itinerary, cursor,
/// savepoint bookkeeping, and the rollback log (§2, §4.2).
///
/// "Code" is the `agent_type` name, resolved against the platform's
/// behaviour registry on every node — mirroring how Mole shipped Java class
/// names resolved by each node's class loader.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentRecord {
    /// Unique id.
    pub id: AgentId,
    /// Behaviour type name (the agent's "code").
    pub agent_type: String,
    /// Node (location index) where results are reported.
    pub home: u32,
    /// Private data space (SRO + WRO).
    pub data: DataSpace,
    /// The (immutable) itinerary tree.
    pub itinerary: Itinerary,
    /// Execution position.
    pub cursor: Cursor,
    /// Savepoint bookkeeping.
    pub table: SavepointTable,
    /// The rollback log.
    pub log: RollbackLog,
    /// Monotone counter of committed steps.
    pub step_seq: u64,
    /// Current status.
    pub status: AgentStatus,
    /// SRO capture mode for savepoints.
    pub logging_mode: LoggingMode,
    /// Which rollback mechanism this agent uses.
    pub rollback_mode: RollbackMode,
}

impl AgentRecord {
    /// Creates a fresh agent about to start its itinerary.
    pub fn new(
        id: AgentId,
        agent_type: impl Into<String>,
        home: u32,
        data: DataSpace,
        itinerary: Itinerary,
        logging_mode: LoggingMode,
        rollback_mode: RollbackMode,
    ) -> Self {
        let cursor = Cursor::new(&itinerary);
        let mut data = data;
        if logging_mode == LoggingMode::Transition {
            data.enable_shadow();
        }
        AgentRecord {
            id,
            agent_type: agent_type.into(),
            home,
            data,
            itinerary,
            cursor,
            table: SavepointTable::new(),
            log: RollbackLog::new(),
            step_seq: 0,
            status: AgentStatus::Forward,
            logging_mode,
            rollback_mode,
        }
    }

    /// Serializes the record for migration or stable storage.
    ///
    /// # Errors
    ///
    /// Codec errors only.
    pub fn to_bytes(&self) -> Result<Vec<u8>, crate::CoreError> {
        Ok(mar_wire::to_bytes(self)?)
    }

    /// Deserializes a record.
    ///
    /// # Errors
    ///
    /// Codec errors only.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, crate::CoreError> {
        Ok(mar_wire::from_slice(bytes)?)
    }

    /// Decodes only the identifying prefix of a serialized record — id,
    /// behaviour type (borrowed from `bytes`), home node — without touching
    /// the itinerary, savepoint table, or rollback log. Driver-side queue
    /// scans (`residence_count` and friends) use this instead of
    /// [`AgentRecord::from_bytes`], which deep-copies every log entry.
    ///
    /// # Errors
    ///
    /// Codec errors for inputs that do not start with a record.
    pub fn peek_header(bytes: &[u8]) -> Result<RecordHeader<'_>, crate::CoreError> {
        let (header, _) = mar_wire::from_slice_prefix(bytes)?;
        Ok(header)
    }

    /// Like [`AgentRecord::peek_header`], but also decodes the private data
    /// space (the fourth field) so audits can inspect weakly reversible
    /// objects without deserializing the rest of the record.
    ///
    /// # Errors
    ///
    /// Codec errors for inputs that do not start with a record.
    pub fn peek_data(bytes: &[u8]) -> Result<RecordDataPeek, crate::CoreError> {
        let (peek, _) = mar_wire::from_slice_prefix(bytes)?;
        Ok(peek)
    }

    /// Encoded size in bytes — what a migration transfers (agent + log).
    pub fn encoded_size(&self) -> usize {
        mar_wire::encoded_size(self).unwrap_or(0)
    }

    /// Encoded size without the rollback log (the "agent proper"), so
    /// experiments can separate agent size from log overhead.
    pub fn encoded_size_without_log(&self) -> usize {
        self.encoded_size().saturating_sub(self.log.size_bytes())
    }

    /// Compacts the rollback log in place (see
    /// [`RollbackLog::compact`](crate::log::RollbackLog::compact)),
    /// supplying the transition-logging shadow when the data space carries
    /// one. The platform calls this before every remote transfer when
    /// compaction is enabled; it is also safe to call at any quiescent
    /// point — the compacted record is observationally equivalent for
    /// rollback and strictly no larger on the wire.
    pub fn compact_log(&mut self) -> crate::log::CompactionReport {
        self.log.compact(self.data.shadow())
    }

    /// Applies a restore plan: SROs are restored from the savepoint image,
    /// the cursor and savepoint bookkeeping rewind, and the agent switches
    /// back to forward execution. WROs are left exactly as the compensating
    /// operations produced them (§4.1).
    pub fn apply_restore(&mut self, plan: RestorePlan) {
        self.data.restore_sro(plan.sro);
        self.cursor = plan.cursor;
        self.table.restore_from(&plan.table);
        // When the target was an ancestor's savepoint, the restored cursor
        // may already be inside nested subs entered before any step ran;
        // re-create their table frames as aliases of the target.
        let path = self.cursor.path();
        let subs: Vec<&str> = path.iter().skip(1).copied().collect();
        self.table.reconcile_with_path(&subs, plan.savepoint);
        self.status = AgentStatus::Forward;
    }
}

/// The identifying prefix of a serialized [`AgentRecord`]: the first three
/// fields of the wire layout, decoded borrowed (`agent_type` points into the
/// input buffer) and without reading anything beyond them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader<'a> {
    /// Unique id.
    pub id: AgentId,
    /// Behaviour type name, borrowed from the serialized record.
    pub agent_type: &'a str,
    /// Home node index.
    pub home: u32,
}

impl<'de> Deserialize<'de> for RecordHeader<'de> {
    fn deserialize<D: serde::Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> serde::de::Visitor<'de> for V {
            type Value = RecordHeader<'de>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an agent record prefix")
            }

            fn visit_seq<A: serde::de::SeqAccess<'de>>(
                self,
                mut seq: A,
            ) -> Result<Self::Value, A::Error> {
                use serde::de::Error;
                let id = seq
                    .next_element()?
                    .ok_or_else(|| A::Error::custom("record missing id"))?;
                let agent_type = seq
                    .next_element()?
                    .ok_or_else(|| A::Error::custom("record missing agent_type"))?;
                let home = seq
                    .next_element()?
                    .ok_or_else(|| A::Error::custom("record missing home"))?;
                // The remaining fields are intentionally left unread: the
                // caller decodes a prefix and discards the rest.
                Ok(RecordHeader {
                    id,
                    agent_type,
                    home,
                })
            }
        }
        // Structs are encoded as field-value sequences; reusing the record's
        // own field-count header keeps this aligned with `AgentRecord`.
        de.deserialize_struct("AgentRecord", &["id", "agent_type", "home"], V)
    }
}

/// The prefix of a serialized [`AgentRecord`] up to and including the data
/// space — everything a money/state audit needs, still skipping the
/// itinerary, cursor, savepoint table, and rollback log.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordDataPeek {
    /// Unique id.
    pub id: AgentId,
    /// Behaviour type name.
    pub agent_type: String,
    /// Home node index.
    pub home: u32,
    /// Private data space (SRO + WRO).
    pub data: DataSpace,
}

impl<'de> Deserialize<'de> for RecordDataPeek {
    fn deserialize<D: serde::Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> serde::de::Visitor<'de> for V {
            type Value = RecordDataPeek;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an agent record prefix with data")
            }

            fn visit_seq<A: serde::de::SeqAccess<'de>>(
                self,
                mut seq: A,
            ) -> Result<Self::Value, A::Error> {
                use serde::de::Error;
                let id = seq
                    .next_element()?
                    .ok_or_else(|| A::Error::custom("record missing id"))?;
                let agent_type = seq
                    .next_element()?
                    .ok_or_else(|| A::Error::custom("record missing agent_type"))?;
                let home = seq
                    .next_element()?
                    .ok_or_else(|| A::Error::custom("record missing home"))?;
                let data = seq
                    .next_element()?
                    .ok_or_else(|| A::Error::custom("record missing data"))?;
                Ok(RecordDataPeek {
                    id,
                    agent_type,
                    home,
                    data,
                })
            }
        }
        de.deserialize_struct("AgentRecord", &["id", "agent_type", "home", "data"], V)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_itinerary::samples;
    use mar_wire::Value;

    fn record() -> AgentRecord {
        let mut data = DataSpace::new();
        data.set_sro("notes", Value::list([]));
        data.set_wro("wallet", Value::from(100i64));
        AgentRecord::new(
            AgentId(1),
            "shopper",
            0,
            data,
            samples::fig6(),
            LoggingMode::State,
            RollbackMode::Optimized,
        )
    }

    #[test]
    fn roundtrips_through_bytes() {
        let r = record();
        let bytes = r.to_bytes().unwrap();
        let back = AgentRecord::from_bytes(&bytes).unwrap();
        assert_eq!(back, r);
        assert_eq!(r.encoded_size(), bytes.len());
    }

    #[test]
    fn transition_mode_enables_shadow() {
        let r = AgentRecord::new(
            AgentId(2),
            "t",
            0,
            DataSpace::new(),
            samples::fig6(),
            LoggingMode::Transition,
            RollbackMode::Basic,
        );
        assert!(r.data.shadow().is_some());
    }

    #[test]
    fn size_without_log_subtracts_log_bytes() {
        let r = record();
        assert_eq!(r.encoded_size_without_log(), r.encoded_size());
    }

    #[test]
    fn peek_header_reads_prefix_borrowed() {
        let r = record();
        let bytes = r.to_bytes().unwrap();
        let h = AgentRecord::peek_header(&bytes).unwrap();
        assert_eq!(h.id, r.id);
        assert_eq!(h.agent_type, "shopper");
        assert_eq!(h.home, 0);
        // The borrowed name points into the serialized buffer.
        let range = bytes.as_ptr_range();
        assert!(range.contains(&h.agent_type.as_ptr()));
    }

    #[test]
    fn peek_data_stops_before_the_log() {
        let r = record();
        let bytes = r.to_bytes().unwrap();
        let p = AgentRecord::peek_data(&bytes).unwrap();
        assert_eq!(p.id, r.id);
        assert_eq!(p.home, 0);
        assert_eq!(p.data, r.data);
        assert_eq!(p.data.wro("wallet").and_then(Value::as_i64), Some(100));
    }

    #[test]
    fn peek_rejects_garbage() {
        assert!(AgentRecord::peek_header(&[0xff, 0x01]).is_err());
    }
}
