//! Typed resource operations: the paper's invariant that every forward
//! resource effect carries its compensating operation (§4.4.1), enforced by
//! the type system instead of programmer discipline.
//!
//! A [`ResourceOp`] is a typed description of one forward operation on a
//! resource manager: it knows its target resource, its wire-level operation
//! name, how to encode its parameters, and how to decode its result. A
//! [`Compensable`] op additionally derives the `(EntryKind, CompOp)` rollback
//! entry from itself *and its result* — so the platform can execute the
//! forward call and log its compensation atomically in one
//! `ctx.invoke(op)` call, with the entry kind fixed at op-definition time
//! rather than re-validated on every step.
//!
//! [`WroOp`] is the agent-state analogue: a typed mutation of the weakly
//! reversible objects that derives its agent compensation entry (ACE) from
//! the state it replaces.
//!
//! The raw `ctx.call` + `ctx.compensate` pair remains available as the
//! escape hatch for operations without a typed wrapper; the platform's
//! property tests pin that a typed invocation and the equivalent raw pair
//! produce byte-identical rollback-log frames.

use mar_wire::{Value, WireError};

use crate::comp::op::{CompOp, EntryKind};
use crate::data::DataSpace;

/// A typed forward operation against a resource manager.
///
/// Implementations are plain structs whose fields are the operation's
/// parameters; [`params`](ResourceOp::params) encodes them into the same
/// [`Value`] map a raw `ctx.call` would pass, and
/// [`decode`](ResourceOp::decode) turns the raw result back into
/// [`Output`](ResourceOp::Output).
pub trait ResourceOp {
    /// The decoded result of the operation.
    type Output;

    /// Name of the target resource manager (node-local).
    fn resource(&self) -> &str;

    /// Wire-level operation name on that resource.
    fn op(&self) -> &str;

    /// Encodes the parameters exactly as the equivalent raw call would.
    fn params(&self) -> Value;

    /// Decodes the raw operation result.
    ///
    /// # Errors
    ///
    /// Codec errors when the resource returned a shape this op does not
    /// expect (a wiring bug, not a business refusal).
    fn decode(&self, raw: &Value) -> Result<Self::Output, WireError>;
}

/// A [`ResourceOp`] whose committed effect has a compensating operation.
///
/// The entry kind is an associated constant: it is part of the *definition*
/// of the operation, so a miswired kind is impossible at the call site (the
/// raw `ctx.compensate` path has to re-check the kind against the registry
/// on every step instead). The compensation itself is derived from the op
/// *and its result* — e.g. a flight booking's compensation needs the
/// `booking_id` the forward call returned.
///
/// Contract: `compensation(..)` must name a handler registered in the
/// platform's `CompOpRegistry` under exactly [`KIND`](Compensable::KIND);
/// `mar-resources` pins this for its own ops with a registry manifest test.
pub trait Compensable: ResourceOp {
    /// Entry kind of the derived compensation (§4.4.1: RCE / ACE / MCE).
    const KIND: EntryKind;

    /// Derives the compensating operation from the op and its result.
    fn compensation(&self, output: &Self::Output) -> CompOp;

    /// The derived rollback-log entry, kind included.
    fn entry(&self, output: &Self::Output) -> (EntryKind, CompOp) {
        (Self::KIND, self.compensation(output))
    }
}

/// A typed mutation of the agent's weakly reversible objects that derives
/// its agent compensation entry from the state it replaces.
///
/// Where [`Compensable`] pairs a *resource* effect with its compensation,
/// a `WroOp` pairs a *WRO* write with the ACE that semantically undoes it —
/// applied and logged in one `ctx.apply(op)` call. The derived entry is
/// always of kind [`EntryKind::Agent`].
pub trait WroOp {
    /// The decoded result of the mutation (usually `()` or a before-image).
    type Output;

    /// Applies the mutation to the data space and returns the result plus
    /// the compensating operation (kind [`EntryKind::Agent`] by
    /// construction).
    fn apply(&self, data: &mut DataSpace) -> (Self::Output, CompOp);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ping {
        target: String,
        n: i64,
    }

    impl ResourceOp for Ping {
        type Output = i64;

        fn resource(&self) -> &str {
            &self.target
        }

        fn op(&self) -> &str {
            "ping"
        }

        fn params(&self) -> Value {
            Value::map([("n", Value::from(self.n))])
        }

        fn decode(&self, raw: &Value) -> Result<i64, WireError> {
            raw.as_i64()
                .ok_or_else(|| WireError::Message("not an integer".to_owned()))
        }
    }

    impl Compensable for Ping {
        const KIND: EntryKind = EntryKind::Resource;

        fn compensation(&self, output: &i64) -> CompOp {
            CompOp::new("unping", Value::map([("echo", Value::from(*output))]))
        }
    }

    #[test]
    fn entry_combines_kind_and_derived_op() {
        let op = Ping {
            target: "svc".into(),
            n: 7,
        };
        assert_eq!(op.resource(), "svc");
        assert_eq!(op.decode(&Value::from(9i64)).unwrap(), 9);
        let (kind, comp) = op.entry(&9);
        assert_eq!(kind, EntryKind::Resource);
        assert_eq!(comp.name, "unping");
        assert_eq!(comp.params.get("echo").and_then(Value::as_i64), Some(9));
    }
}
