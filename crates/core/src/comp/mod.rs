//! Compensating operations: the executable content of operation entries
//! (§4.2, §4.4.1).
//!
//! A compensating operation lives in the rollback log as *data* — a
//! registered name plus parameters — because it must survive migration and
//! crashes and may execute on another node long after it was logged. The
//! three entry types of §4.4.1 are enforced at execution time:
//!
//! * **Resource compensation entries (RCE)** roll back resource state only;
//!   their handler gets no access to the agent's private state, which is
//!   what makes shipping them to the resource node without the agent legal.
//! * **Agent compensation entries (ACE)** roll back weakly reversible
//!   objects only; they run wherever the agent is.
//! * **Mixed compensation entries (MCE)** need both; the agent must travel
//!   to the step's node.

mod access;
mod op;
mod registry;
mod resource_op;

pub use access::{CompCtx, ResourceAccess};
pub use op::{CompOp, EntryKind};
pub use registry::{CompHandler, CompOpRegistry};
pub use resource_op::{Compensable, ResourceOp, WroOp};
