//! Execution contexts for compensating operations, with entry-type access
//! enforcement.

use mar_wire::Value;

use crate::data::ObjectMap;
use crate::error::CompError;

/// Access to the resources of one node, as seen by compensating operations.
/// Implemented by the platform over its resource-manager registry; calls run
/// inside the enclosing compensation transaction.
pub trait ResourceAccess {
    /// Invokes `op` on `resource` with `params`.
    ///
    /// # Errors
    ///
    /// [`CompError::Failed`] with `retryable = true` for transient failures
    /// (lock conflicts), `false` for semantic rejections.
    fn call(&mut self, resource: &str, op: &str, params: &Value) -> Result<Value, CompError>;
}

/// The context a compensation handler runs in. Which accessors succeed is
/// determined by the operation's [`crate::comp::EntryKind`] — a resource
/// compensation entry that touches the agent state is a bug in the resource
/// implementation, surfaced as [`CompError::AccessViolation`].
pub struct CompCtx<'a> {
    op_name: &'a str,
    params: &'a Value,
    now_micros: u64,
    resources: Option<&'a mut dyn ResourceAccess>,
    wro: Option<&'a mut ObjectMap>,
}

impl<'a> CompCtx<'a> {
    /// Builds a context. `resources`/`wro` are `None` when the entry kind
    /// forbids that access.
    pub fn new(
        op_name: &'a str,
        params: &'a Value,
        now_micros: u64,
        resources: Option<&'a mut dyn ResourceAccess>,
        wro: Option<&'a mut ObjectMap>,
    ) -> Self {
        CompCtx {
            op_name,
            params,
            now_micros,
            resources,
            wro,
        }
    }

    /// The operation's logged parameters.
    pub fn params(&self) -> &Value {
        self.params
    }

    /// Current virtual time in microseconds (for time-dependent refund
    /// policies).
    pub fn now_micros(&self) -> u64 {
        self.now_micros
    }

    /// Resource access — fails for agent compensation entries.
    ///
    /// # Errors
    ///
    /// [`CompError::AccessViolation`] when the entry kind forbids resource
    /// access.
    pub fn resources(&mut self) -> Result<&mut dyn ResourceAccess, CompError> {
        match self.resources.as_deref_mut() {
            Some(r) => Ok(r),
            None => Err(CompError::AccessViolation {
                op: self.op_name.to_owned(),
                tried: "resources",
            }),
        }
    }

    /// Weakly-reversible-object access — fails for resource compensation
    /// entries. (Strongly reversible objects are *never* accessible during
    /// compensation, §4.3.)
    ///
    /// # Errors
    ///
    /// [`CompError::AccessViolation`] when the entry kind forbids agent
    /// state access.
    pub fn wro(&mut self) -> Result<&mut ObjectMap, CompError> {
        match self.wro.as_deref_mut() {
            Some(w) => Ok(w),
            None => Err(CompError::AccessViolation {
                op: self.op_name.to_owned(),
                tried: "agent state",
            }),
        }
    }

    /// Typed parameter lookup helper.
    ///
    /// # Errors
    ///
    /// [`CompError::BadParams`] if the key is missing.
    pub fn param(&self, key: &str) -> Result<&Value, CompError> {
        self.params.get(key).ok_or_else(|| CompError::BadParams {
            op: self.op_name.to_owned(),
            reason: format!("missing parameter {key:?}"),
        })
    }

    /// Integer parameter helper.
    ///
    /// # Errors
    ///
    /// [`CompError::BadParams`] if the key is missing or not an integer.
    pub fn param_i64(&self, key: &str) -> Result<i64, CompError> {
        self.param(key)?
            .as_i64()
            .ok_or_else(|| CompError::BadParams {
                op: self.op_name.to_owned(),
                reason: format!("parameter {key:?} is not an integer"),
            })
    }

    /// String parameter helper.
    ///
    /// # Errors
    ///
    /// [`CompError::BadParams`] if the key is missing or not a string.
    pub fn param_str(&self, key: &str) -> Result<&str, CompError> {
        self.param(key)?
            .as_str()
            .ok_or_else(|| CompError::BadParams {
                op: self.op_name.to_owned(),
                reason: format!("parameter {key:?} is not a string"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    struct NoopResources;
    impl ResourceAccess for NoopResources {
        fn call(&mut self, _r: &str, _o: &str, _p: &Value) -> Result<Value, CompError> {
            Ok(Value::Null)
        }
    }

    #[test]
    fn rce_context_denies_agent_state() {
        let params = Value::Null;
        let mut res = NoopResources;
        let mut ctx = CompCtx::new("op", &params, 0, Some(&mut res), None);
        assert!(ctx.resources().is_ok());
        assert!(matches!(
            ctx.wro(),
            Err(CompError::AccessViolation {
                tried: "agent state",
                ..
            })
        ));
    }

    #[test]
    fn ace_context_denies_resources() {
        let params = Value::Null;
        let mut wro: ObjectMap = BTreeMap::new();
        let mut ctx = CompCtx::new("op", &params, 0, None, Some(&mut wro));
        assert!(ctx.wro().is_ok());
        assert!(matches!(
            ctx.resources(),
            Err(CompError::AccessViolation {
                tried: "resources",
                ..
            })
        ));
    }

    #[test]
    fn param_helpers() {
        let params = Value::map([
            ("amount", Value::from(25i64)),
            ("account", Value::from("alice")),
        ]);
        let ctx = CompCtx::new("op", &params, 42, None, None);
        assert_eq!(ctx.param_i64("amount").unwrap(), 25);
        assert_eq!(ctx.param_str("account").unwrap(), "alice");
        assert_eq!(ctx.now_micros(), 42);
        assert!(matches!(
            ctx.param_i64("missing"),
            Err(CompError::BadParams { .. })
        ));
        assert!(matches!(
            ctx.param_str("amount"),
            Err(CompError::BadParams { .. })
        ));
    }
}
