//! Compensating operation descriptors and entry kinds.

use std::fmt;

use mar_wire::Value;
use serde::{Deserialize, Serialize};

/// The three operation entry types of §4.4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EntryKind {
    /// Resource compensation entry: compensates resource state only; all
    /// information is in the parameters; executable on the resource node
    /// without the agent.
    Resource,
    /// Agent compensation entry: compensates weakly reversible objects only;
    /// executable on whatever node the agent currently resides.
    Agent,
    /// Mixed compensation entry: needs the weakly reversible objects *and*
    /// the resource; the agent must be on the step's node.
    Mixed,
}

impl EntryKind {
    /// Whether executing this entry requires the agent to be on the node
    /// where the step ran.
    pub fn requires_agent_at_resource(self) -> bool {
        self == EntryKind::Mixed
    }
}

impl fmt::Display for EntryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EntryKind::Resource => "RCE",
            EntryKind::Agent => "ACE",
            EntryKind::Mixed => "MCE",
        };
        f.write_str(s)
    }
}

/// A compensating operation as stored in the log: a registered handler name
/// plus its parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompOp {
    /// Name under which the handler is registered.
    pub name: String,
    /// Parameters captured at forward-execution time.
    pub params: Value,
}

impl CompOp {
    /// Constructs a compensating operation.
    pub fn new(name: impl Into<String>, params: Value) -> Self {
        CompOp {
            name: name.into(),
            params,
        }
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_mixed_pins_the_agent() {
        assert!(!EntryKind::Resource.requires_agent_at_resource());
        assert!(!EntryKind::Agent.requires_agent_at_resource());
        assert!(EntryKind::Mixed.requires_agent_at_resource());
    }

    #[test]
    fn display() {
        assert_eq!(EntryKind::Resource.to_string(), "RCE");
        let op = CompOp::new("bank.refund", Value::from(25i64));
        assert_eq!(op.to_string(), "bank.refund(25)");
    }

    #[test]
    fn serializes() {
        let op = CompOp::new("x", Value::map([("a", Value::from(1i64))]));
        let bytes = mar_wire::to_bytes(&op).unwrap();
        assert_eq!(mar_wire::from_slice::<CompOp>(&bytes).unwrap(), op);
    }
}
