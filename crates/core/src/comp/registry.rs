//! The registry mapping compensating-operation names to handlers.

use std::collections::BTreeMap;

use crate::comp::access::{CompCtx, ResourceAccess};
use crate::comp::op::{CompOp, EntryKind};
use crate::data::ObjectMap;
use crate::error::CompError;

/// A compensation handler. Handlers are registered code (the "code of one
/// compensating operation" the paper stores in operation entries — our log
/// stores the *name*, mirroring how Mole shipped Java class names rather
/// than bytecode).
pub type CompHandler = Box<dyn Fn(&mut CompCtx<'_>) -> Result<(), CompError> + Send + Sync>;

/// Registry of compensating operations, shared by all nodes of a platform
/// (like a classpath).
#[derive(Default)]
pub struct CompOpRegistry {
    handlers: BTreeMap<String, (EntryKind, CompHandler)>,
}

impl CompOpRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        CompOpRegistry::default()
    }

    /// Registers `handler` under `name` with the given entry kind.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered (compensation names are a
    /// global namespace; collisions are configuration bugs).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        kind: EntryKind,
        handler: impl Fn(&mut CompCtx<'_>) -> Result<(), CompError> + Send + Sync + 'static,
    ) {
        let name = name.into();
        let prev = self
            .handlers
            .insert(name.clone(), (kind, Box::new(handler)));
        assert!(prev.is_none(), "compensation {name:?} registered twice");
    }

    /// The entry kind declared for `name`.
    pub fn kind_of(&self, name: &str) -> Option<EntryKind> {
        self.handlers.get(name).map(|(k, _)| *k)
    }

    /// Registered operation names.
    pub fn names(&self) -> Vec<&str> {
        self.handlers.keys().map(String::as_str).collect()
    }

    /// Executes a compensating operation, wiring up exactly the accesses its
    /// entry kind permits:
    ///
    /// * `Resource` → resources only,
    /// * `Agent` → weakly reversible objects only,
    /// * `Mixed` → both.
    ///
    /// # Errors
    ///
    /// [`CompError::Unregistered`] for unknown names; handler errors
    /// otherwise (including [`CompError::AccessViolation`] if the handler
    /// oversteps its kind).
    pub fn execute<'a>(
        &self,
        op: &'a CompOp,
        now_micros: u64,
        mut resources: Option<&'a mut dyn ResourceAccess>,
        mut wro: Option<&'a mut ObjectMap>,
    ) -> Result<(), CompError> {
        let (kind, handler) = self
            .handlers
            .get(&op.name)
            .ok_or_else(|| CompError::Unregistered(op.name.clone()))?;
        let (res_access, wro_access): (
            Option<&'a mut dyn ResourceAccess>,
            Option<&'a mut ObjectMap>,
        ) = match kind {
            EntryKind::Resource => (resources.take(), None),
            EntryKind::Agent => (None, wro.take()),
            EntryKind::Mixed => (resources.take(), wro.take()),
        };
        if matches!(kind, EntryKind::Resource | EntryKind::Mixed) && res_access.is_none() {
            return Err(CompError::Failed {
                op: op.name.clone(),
                reason: "resource access required but not available here".to_owned(),
                retryable: false,
            });
        }
        if matches!(kind, EntryKind::Agent | EntryKind::Mixed) && wro_access.is_none() {
            return Err(CompError::Failed {
                op: op.name.clone(),
                reason: "agent state required but not available here".to_owned(),
                retryable: false,
            });
        }
        let mut ctx = CompCtx::new(&op.name, &op.params, now_micros, res_access, wro_access);
        handler(&mut ctx)
    }
}

impl std::fmt::Debug for CompOpRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompOpRegistry")
            .field("ops", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_wire::Value;

    struct Recorder {
        calls: Vec<(String, String)>,
    }

    impl ResourceAccess for Recorder {
        fn call(&mut self, r: &str, o: &str, _p: &Value) -> Result<Value, CompError> {
            self.calls.push((r.to_owned(), o.to_owned()));
            Ok(Value::Null)
        }
    }

    fn registry() -> CompOpRegistry {
        let mut reg = CompOpRegistry::new();
        reg.register("refund", EntryKind::Resource, |ctx| {
            let amount = ctx.param_i64("amount")?;
            ctx.resources()?
                .call("bank", "deposit", &Value::from(amount))?;
            Ok(())
        });
        reg.register("restore_wallet", EntryKind::Agent, |ctx| {
            let amount = ctx.param_i64("amount")?;
            ctx.wro()?.insert("wallet".into(), Value::from(amount));
            Ok(())
        });
        reg.register("exchange_back", EntryKind::Mixed, |ctx| {
            let amount = ctx.param_i64("amount")?;
            ctx.resources()?
                .call("exchange", "convert", &Value::from(amount))?;
            ctx.wro()?.insert("wallet".into(), Value::from(amount));
            Ok(())
        });
        // A buggy RCE that illegally touches agent state.
        reg.register("bad_rce", EntryKind::Resource, |ctx| {
            ctx.wro()?.insert("x".into(), Value::Null);
            Ok(())
        });
        reg
    }

    #[test]
    fn rce_runs_with_resources_only() {
        let reg = registry();
        let mut rec = Recorder { calls: vec![] };
        let op = CompOp::new("refund", Value::map([("amount", Value::from(5i64))]));
        reg.execute(&op, 0, Some(&mut rec), None).unwrap();
        assert_eq!(rec.calls, [("bank".to_owned(), "deposit".to_owned())]);
    }

    #[test]
    fn ace_runs_with_wro_only() {
        let reg = registry();
        let mut wro = ObjectMap::new();
        let op = CompOp::new(
            "restore_wallet",
            Value::map([("amount", Value::from(7i64))]),
        );
        reg.execute(&op, 0, None, Some(&mut wro)).unwrap();
        assert_eq!(wro.get("wallet").and_then(Value::as_i64), Some(7));
    }

    #[test]
    fn mce_needs_both() {
        let reg = registry();
        let mut rec = Recorder { calls: vec![] };
        let mut wro = ObjectMap::new();
        let op = CompOp::new("exchange_back", Value::map([("amount", Value::from(3i64))]));
        reg.execute(&op, 0, Some(&mut rec), Some(&mut wro)).unwrap();
        assert_eq!(rec.calls.len(), 1);
        assert_eq!(wro.get("wallet").and_then(Value::as_i64), Some(3));
        // Missing either access is a (non-retryable) failure.
        let err = reg.execute(&op, 0, None, Some(&mut wro)).unwrap_err();
        assert!(matches!(
            err,
            CompError::Failed {
                retryable: false,
                ..
            }
        ));
    }

    #[test]
    fn rce_touching_agent_state_is_violation() {
        let reg = registry();
        let mut rec = Recorder { calls: vec![] };
        let mut wro = ObjectMap::new();
        let op = CompOp::new("bad_rce", Value::Null);
        // Even though a WRO map is *offered*, the kind strips it.
        let err = reg
            .execute(&op, 0, Some(&mut rec), Some(&mut wro))
            .unwrap_err();
        assert!(matches!(
            err,
            CompError::AccessViolation {
                tried: "agent state",
                ..
            }
        ));
    }

    #[test]
    fn unregistered_name() {
        let reg = registry();
        let op = CompOp::new("nope", Value::Null);
        assert!(matches!(
            reg.execute(&op, 0, None, None),
            Err(CompError::Unregistered(_))
        ));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_name_panics() {
        let mut reg = registry();
        reg.register("refund", EntryKind::Resource, |_| Ok(()));
    }

    #[test]
    fn kinds_are_queryable() {
        let reg = registry();
        assert_eq!(reg.kind_of("refund"), Some(EntryKind::Resource));
        assert_eq!(reg.kind_of("restore_wallet"), Some(EntryKind::Agent));
        assert_eq!(reg.kind_of("exchange_back"), Some(EntryKind::Mixed));
        assert_eq!(reg.kind_of("nope"), None);
    }
}
