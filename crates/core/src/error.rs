//! Error types of the rollback core.

use std::fmt;

use crate::savepoint::SavepointId;

/// Errors of the rollback log, savepoint management, and planners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The requested savepoint does not exist in the rollback log (it may
    /// have been discarded when a sub-itinerary or the whole sub-task
    /// completed, §4.4.2).
    UnknownSavepoint(SavepointId),
    /// The requested savepoint exists but is no longer a legal rollback
    /// target from the current position (only the current sub-itinerary and
    /// its ancestors can be rolled back).
    NotTargetable(SavepointId),
    /// The log contents violate the SP/BOS/OE/EOS grammar.
    CorruptLog(String),
    /// The rollback log is empty but a rollback was requested.
    EmptyLog,
    /// A rollback scope could not be resolved (e.g. `Enclosing(3)` with only
    /// two active sub-itineraries).
    BadScope(String),
    /// Serialization failure.
    Codec(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownSavepoint(id) => write!(f, "unknown savepoint {id}"),
            CoreError::NotTargetable(id) => {
                write!(f, "savepoint {id} is not a legal rollback target here")
            }
            CoreError::CorruptLog(why) => write!(f, "corrupt rollback log: {why}"),
            CoreError::EmptyLog => f.write_str("rollback log is empty"),
            CoreError::BadScope(why) => write!(f, "bad rollback scope: {why}"),
            CoreError::Codec(why) => write!(f, "codec error: {why}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<mar_wire::WireError> for CoreError {
    fn from(e: mar_wire::WireError) -> Self {
        CoreError::Codec(e.to_string())
    }
}

/// Errors raised while executing compensating operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompError {
    /// No handler registered under this name.
    Unregistered(String),
    /// A handler touched state its entry type forbids (e.g. a resource
    /// compensation entry accessing the private agent state, §4.4.1).
    AccessViolation {
        /// The offending operation.
        op: String,
        /// What it tried to touch: `"resources"` or `"agent state"`.
        tried: &'static str,
    },
    /// The compensation failed. `retryable` distinguishes transient
    /// conditions (retry later, per \[4\]/\[10\]) from permanent ones.
    Failed {
        /// The operation that failed.
        op: String,
        /// Why.
        reason: String,
        /// Whether retrying later may succeed.
        retryable: bool,
    },
    /// Parameters did not have the expected shape.
    BadParams {
        /// The operation.
        op: String,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for CompError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompError::Unregistered(op) => write!(f, "no compensating operation {op:?}"),
            CompError::AccessViolation { op, tried } => {
                write!(f, "compensation {op:?} illegally accessed {tried}")
            }
            CompError::Failed {
                op,
                reason,
                retryable,
            } => write!(
                f,
                "compensation {op:?} failed ({}): {reason}",
                if *retryable { "retryable" } else { "permanent" }
            ),
            CompError::BadParams { op, reason } => {
                write!(f, "bad parameters for compensation {op:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for CompError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(CoreError::EmptyLog.to_string(), "rollback log is empty");
        let e = CompError::AccessViolation {
            op: "refund".into(),
            tried: "agent state",
        };
        assert_eq!(
            e.to_string(),
            "compensation \"refund\" illegally accessed agent state"
        );
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<CoreError>();
        assert_err::<CompError>();
    }
}
