//! Planner tests: Fig. 4 and Fig. 5 walked over synthetic forward histories.

use mar_itinerary::samples;
use mar_wire::Value;
use proptest::prelude::*;

use crate::comp::{CompOp, EntryKind};
use crate::data::DataSpace;
use crate::log::{LogEntry, LoggingMode, OpEntry};
use crate::planner::{
    compensation_round, start_rollback, AfterRound, Destination, RollbackMode, StartPlan,
};
use crate::record::{AgentId, AgentRecord};
use crate::savepoint::SavepointId;

/// Builds a fresh record (the itinerary tree is irrelevant to the planner;
/// fig6 is used as a stand-in).
fn record(mode: RollbackMode, logging: LoggingMode) -> AgentRecord {
    let mut data = DataSpace::new();
    data.set_sro("notes", Value::from(0i64));
    data.set_wro("wallet", Value::from(100i64));
    AgentRecord::new(AgentId(1), "test", 0, data, samples::fig6(), logging, mode)
}

/// Simulates the log effects of a committed forward step.
fn commit_step(rec: &mut AgentRecord, node: u32, ops: &[(EntryKind, &str)]) {
    let seq = rec.step_seq;
    rec.log.append_step(
        node,
        seq,
        &format!("m{seq}"),
        ops.iter()
            .enumerate()
            .map(|(i, (kind, name))| (*kind, CompOp::new(*name, Value::from(i as i64)))),
        vec![],
    );
    rec.step_seq += 1;
    rec.table.on_step_committed();
}

fn savepoint(rec: &mut AgentRecord, sub: &str) -> SavepointId {
    let cursor = rec.cursor.clone();
    let mode = rec.logging_mode;
    rec.table
        .on_enter_sub(sub, &mut rec.data, &cursor, &mut rec.log, mode)
}

/// Drives the planner to completion, recording each round.
fn run_rollback(
    rec: &mut AgentRecord,
    target: SavepointId,
) -> (StartPlan, Vec<crate::planner::RoundPlan>) {
    let start = start_rollback(rec, target).expect("start");
    let mut rounds = Vec::new();
    if matches!(start, StartPlan::AlreadyAtTarget(_)) {
        return (start, rounds);
    }
    loop {
        let round = compensation_round(rec, target).expect("round");
        let done = matches!(round.after, AfterRound::Reached(_));
        rounds.push(round);
        if done {
            break;
        }
        assert!(rounds.len() < 100, "rollback did not terminate");
    }
    (start, rounds)
}

#[test]
fn basic_walks_back_in_reverse_step_order() {
    let mut rec = record(RollbackMode::Basic, LoggingMode::State);
    let sp = savepoint(&mut rec, "S");
    commit_step(
        &mut rec,
        1,
        &[(EntryKind::Resource, "r0"), (EntryKind::Agent, "a0")],
    );
    commit_step(&mut rec, 2, &[(EntryKind::Resource, "r1")]);
    commit_step(&mut rec, 3, &[(EntryKind::Agent, "a2")]);

    let (start, rounds) = run_rollback(&mut rec, sp);
    // Fig. 4a: move to the node of the last EOS.
    assert_eq!(start, StartPlan::Go(Destination::Node(3)));
    // Steps compensated newest-first.
    let seqs: Vec<u64> = rounds.iter().map(|r| r.step_seq).collect();
    assert_eq!(seqs, [2, 1, 0]);
    // Basic mode: everything is local (the agent travels), nothing shipped.
    assert!(rounds.iter().all(|r| r.remote_rces.is_empty()));
    // Continue destinations retrace the path.
    match &rounds[0].after {
        AfterRound::Continue(d) => assert_eq!(*d, Destination::Node(2)),
        other => panic!("unexpected {other:?}"),
    }
    match &rounds[1].after {
        AfterRound::Continue(d) => assert_eq!(*d, Destination::Node(1)),
        other => panic!("unexpected {other:?}"),
    }
    match &rounds[2].after {
        AfterRound::Reached(plan) => assert_eq!(plan.savepoint, sp),
        other => panic!("unexpected {other:?}"),
    }
    // The log is reduced to just the savepoint entry.
    assert_eq!(rec.log.len(), 1);
}

#[test]
fn ops_within_a_step_are_compensated_in_reverse() {
    let mut rec = record(RollbackMode::Basic, LoggingMode::State);
    let sp = savepoint(&mut rec, "S");
    commit_step(
        &mut rec,
        1,
        &[
            (EntryKind::Resource, "first"),
            (EntryKind::Resource, "second"),
            (EntryKind::Resource, "third"),
        ],
    );
    let (_, rounds) = run_rollback(&mut rec, sp);
    let names: Vec<&str> = rounds[0]
        .local_ops
        .iter()
        .map(|o| o.op.name.as_str())
        .collect();
    // "executed in the order OEn,p, OEn,p-1, …" (§4.2).
    assert_eq!(names, ["third", "second", "first"]);
}

#[test]
fn optimized_avoids_moves_without_mixed_entries() {
    let mut rec = record(RollbackMode::Optimized, LoggingMode::State);
    let sp = savepoint(&mut rec, "S");
    commit_step(
        &mut rec,
        1,
        &[(EntryKind::Resource, "r0"), (EntryKind::Agent, "a0")],
    );
    commit_step(
        &mut rec,
        2,
        &[(EntryKind::Resource, "r1"), (EntryKind::Agent, "a1")],
    );

    let (start, rounds) = run_rollback(&mut rec, sp);
    // Fig. 5a: no mixed entry in the next step → stay local.
    assert_eq!(start, StartPlan::Go(Destination::Local));
    // RCEs ship to the step node; ACEs stay local.
    assert_eq!(rounds[0].step_node, 2);
    assert_eq!(rounds[0].remote_rces.len(), 1);
    assert_eq!(rounds[0].remote_rces[0].op.name, "r1");
    assert_eq!(rounds[0].local_ops.len(), 1);
    assert_eq!(rounds[0].local_ops[0].op.name, "a1");
    match &rounds[0].after {
        AfterRound::Continue(d) => assert_eq!(*d, Destination::Local),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn optimized_moves_agent_for_mixed_entries() {
    let mut rec = record(RollbackMode::Optimized, LoggingMode::State);
    let sp = savepoint(&mut rec, "S");
    commit_step(&mut rec, 1, &[(EntryKind::Resource, "r0")]);
    commit_step(
        &mut rec,
        2,
        &[(EntryKind::Mixed, "x1"), (EntryKind::Resource, "r1")],
    );

    let (start, rounds) = run_rollback(&mut rec, sp);
    // The newest step has a mixed entry: the agent must go there.
    assert_eq!(start, StartPlan::Go(Destination::Node(2)));
    // Mixed round: all ops local (agent is at the step node), none shipped.
    assert!(rounds[0].mixed);
    assert_eq!(rounds[0].local_ops.len(), 2);
    assert!(rounds[0].remote_rces.is_empty());
    // Next step has no mixed entry → local.
    match &rounds[0].after {
        AfterRound::Continue(d) => assert_eq!(*d, Destination::Local),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn savepoint_directly_before_abort_needs_no_compensation() {
    let mut rec = record(RollbackMode::Basic, LoggingMode::State);
    commit_step(&mut rec, 1, &[(EntryKind::Resource, "r0")]);
    let sp = savepoint(&mut rec, "S");
    match start_rollback(&rec, sp).unwrap() {
        StartPlan::AlreadyAtTarget(plan) => {
            assert_eq!(plan.savepoint, sp);
            assert_eq!(plan.sro.get("notes").and_then(Value::as_i64), Some(0));
        }
        other => panic!("unexpected {other:?}"),
    }
    // The log is untouched by planning.
    assert_eq!(rec.log.last_eos().map(|e| e.step_seq), Some(0));
}

#[test]
fn unknown_savepoint_is_rejected() {
    let mut rec = record(RollbackMode::Basic, LoggingMode::State);
    savepoint(&mut rec, "S");
    let missing = SavepointId(777);
    assert!(matches!(
        start_rollback(&rec, missing),
        Err(crate::CoreError::UnknownSavepoint(_))
    ));
    assert!(matches!(
        compensation_round(&mut rec, missing),
        Err(crate::CoreError::UnknownSavepoint(_))
    ));
}

#[test]
fn marker_only_round_reaches_target_without_ops() {
    let mut rec = record(RollbackMode::Optimized, LoggingMode::State);
    let target = savepoint(&mut rec, "A");
    // Entering B immediately: marker savepoint, no steps at all.
    let _marker = savepoint(&mut rec, "B");
    let (start, rounds) = run_rollback(&mut rec, target);
    assert_eq!(start, StartPlan::Go(Destination::Local));
    assert_eq!(rounds.len(), 1);
    assert_eq!(rounds[0].op_count(), 0);
    match &rounds[0].after {
        AfterRound::Reached(plan) => assert_eq!(plan.savepoint, target),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn marker_target_resolves_referenced_image() {
    let mut rec = record(RollbackMode::Basic, LoggingMode::State);
    rec.data.set_sro("notes", Value::from(42i64));
    let _outer = savepoint(&mut rec, "A"); // full image, notes=42
    let marker = savepoint(&mut rec, "B"); // marker → A
    rec.data.set_sro("notes", Value::from(99i64)); // changed during step
    commit_step(&mut rec, 1, &[(EntryKind::Resource, "r0")]);
    let (_, rounds) = run_rollback(&mut rec, marker);
    match &rounds.last().unwrap().after {
        AfterRound::Reached(plan) => {
            assert_eq!(plan.savepoint, marker);
            assert_eq!(plan.sro.get("notes").and_then(Value::as_i64), Some(42));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn transition_logging_restores_via_shadow() {
    let mut rec = record(RollbackMode::Basic, LoggingMode::Transition);
    rec.data.set_sro("notes", Value::from(1i64));
    let target = savepoint(&mut rec, "A"); // shadow := notes=1
    rec.data.set_sro("notes", Value::from(2i64));
    commit_step(&mut rec, 1, &[(EntryKind::Resource, "r0")]);
    let _b = savepoint(&mut rec, "B"); // delta: notes 2→1; shadow := 2
    rec.data.set_sro("notes", Value::from(3i64));
    commit_step(&mut rec, 2, &[(EntryKind::Resource, "r1")]);

    let (_, rounds) = run_rollback(&mut rec, target);
    match &rounds.last().unwrap().after {
        AfterRound::Reached(plan) => {
            assert_eq!(
                plan.sro.get("notes").and_then(Value::as_i64),
                Some(1),
                "shadow must have been rolled back through B's delta"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn corrupt_log_is_detected() {
    let mut rec = record(RollbackMode::Basic, LoggingMode::State);
    let sp = savepoint(&mut rec, "S");
    // An operation entry with no BOS/EOS framing.
    rec.log.push(LogEntry::Operation(OpEntry {
        kind: EntryKind::Resource,
        op: CompOp::new("bad", Value::Null),
        step_seq: 0,
    }));
    assert!(matches!(
        compensation_round(&mut rec, sp),
        Err(crate::CoreError::CorruptLog(_))
    ));
}

// ---- batching layer ---------------------------------------------------------

use crate::planner::{plan_batch, plan_single, RollbackCursor};

/// Drives the batch planner to completion, recording each batch.
fn run_batched(rec: &mut AgentRecord, target: SavepointId) -> Vec<crate::planner::BatchPlan> {
    let mut batches = Vec::new();
    loop {
        let batch = plan_batch(rec, target).expect("batch");
        let done = matches!(batch.after, AfterRound::Reached(_));
        batches.push(batch);
        if done {
            return batches;
        }
        assert!(batches.len() < 100, "batched rollback did not terminate");
    }
}

#[test]
fn cursor_partitions_same_node_runs() {
    let mut rec = record(RollbackMode::Basic, LoggingMode::State);
    let sp = savepoint(&mut rec, "S");
    for node in [1, 1, 1, 2, 2, 3] {
        commit_step(&mut rec, node, &[(EntryKind::Resource, "r")]);
    }
    let runs = RollbackCursor::new(&rec.log, RollbackMode::Basic, sp).runs();
    // Newest-first: 3 alone, then the node-2 pair, then the node-1 triple.
    let shape: Vec<(u32, usize)> = runs.iter().map(|r| (r.node, r.len)).collect();
    assert_eq!(shape, [(3, 1), (2, 2), (1, 3)]);
    assert_eq!(runs[2].newest_seq, 2);
    assert_eq!(runs[2].oldest_seq, 0);
    // The cursor is read-only: the log is untouched.
    assert_eq!(rec.log.last_eos().unwrap().step_seq, 5);
}

#[test]
fn cursor_stops_at_target_and_skips_savepoints() {
    let mut rec = record(RollbackMode::Basic, LoggingMode::State);
    let _outer = savepoint(&mut rec, "A");
    commit_step(&mut rec, 1, &[(EntryKind::Resource, "r")]);
    let target = savepoint(&mut rec, "B");
    commit_step(&mut rec, 1, &[(EntryKind::Resource, "r")]);
    let _inner = savepoint(&mut rec, "C"); // savepoint *between* steps
    commit_step(&mut rec, 1, &[(EntryKind::Resource, "r")]);
    let runs = RollbackCursor::new(&rec.log, RollbackMode::Basic, target).runs();
    // Only the two steps above B; the intervening savepoint C does not
    // break the run.
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].len, 2);
}

#[test]
fn basic_mode_fuses_same_node_chain_into_one_batch() {
    let mut rec = record(RollbackMode::Basic, LoggingMode::State);
    let sp = savepoint(&mut rec, "S");
    for _ in 0..4 {
        commit_step(
            &mut rec,
            2,
            &[(EntryKind::Resource, "r"), (EntryKind::Agent, "a")],
        );
    }
    let batches = run_batched(&mut rec, sp);
    assert_eq!(batches.len(), 1, "one transaction instead of four");
    assert_eq!(batches[0].rounds_fused(), 4);
    assert_eq!(batches[0].step_node(), Some(2));
    // Ops still newest-first across the fused steps.
    let seqs: Vec<u64> = batches[0].steps.iter().map(|s| s.step_seq).collect();
    assert_eq!(seqs, [3, 2, 1, 0]);
    assert_eq!(batches[0].op_count(), 8);
    match &batches[0].after {
        AfterRound::Reached(plan) => assert_eq!(plan.savepoint, sp),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(rec.log.len(), 1, "log popped down to the savepoint");
}

#[test]
fn optimized_mode_fuses_rce_lists_and_isolates_mixed_steps() {
    let mut rec = record(RollbackMode::Optimized, LoggingMode::State);
    let sp = savepoint(&mut rec, "S");
    commit_step(&mut rec, 1, &[(EntryKind::Resource, "r0")]);
    commit_step(
        &mut rec,
        1,
        &[(EntryKind::Resource, "r1"), (EntryKind::Agent, "a1")],
    );
    commit_step(&mut rec, 1, &[(EntryKind::Mixed, "x2")]);
    commit_step(&mut rec, 1, &[(EntryKind::Resource, "r3")]);
    let batches = run_batched(&mut rec, sp);
    // Newest-first: [step3], [step2 mixed, solo], [steps 1+0 fused].
    let shape: Vec<usize> = batches.iter().map(|b| b.rounds_fused()).collect();
    assert_eq!(shape, [1, 1, 2]);
    assert!(batches[1].mixed());
    // The fused batch ships ONE list carrying both steps' RCEs,
    // newest-first, and keeps the ACE local.
    let rces: Vec<&str> = batches[2]
        .remote_rces()
        .map(|o| o.op.name.as_str())
        .collect();
    assert_eq!(rces, ["r1", "r0"]);
    let locals: Vec<&str> = batches[2].local_ops().map(|o| o.op.name.as_str()).collect();
    assert_eq!(locals, ["a1"]);
}

#[test]
fn different_nodes_do_not_fuse() {
    let mut rec = record(RollbackMode::Optimized, LoggingMode::State);
    let sp = savepoint(&mut rec, "S");
    commit_step(&mut rec, 1, &[(EntryKind::Resource, "r0")]);
    commit_step(&mut rec, 2, &[(EntryKind::Resource, "r1")]);
    let batches = run_batched(&mut rec, sp);
    assert_eq!(batches.len(), 2);
    assert_eq!(batches[0].step_node(), Some(2));
    assert_eq!(batches[1].step_node(), Some(1));
}

#[test]
fn savepoints_only_batch_is_empty_and_reaches() {
    let mut rec = record(RollbackMode::Optimized, LoggingMode::State);
    let target = savepoint(&mut rec, "A");
    let _marker = savepoint(&mut rec, "B");
    let batch = plan_batch(&mut rec, target).unwrap();
    assert_eq!(batch.rounds_fused(), 0);
    assert_eq!(batch.step_node(), None);
    assert!(!batch.has_remote_rces());
    match &batch.after {
        AfterRound::Reached(plan) => assert_eq!(plan.savepoint, target),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn plan_single_never_fuses() {
    let mut rec = record(RollbackMode::Basic, LoggingMode::State);
    let sp = savepoint(&mut rec, "S");
    for _ in 0..3 {
        commit_step(&mut rec, 2, &[(EntryKind::Resource, "r")]);
    }
    let batch = plan_single(&mut rec, sp).unwrap();
    assert_eq!(batch.rounds_fused(), 1);
    match &batch.after {
        AfterRound::Continue(d) => assert_eq!(*d, Destination::Node(2)),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn batch_rejects_unknown_savepoint() {
    let mut rec = record(RollbackMode::Basic, LoggingMode::State);
    savepoint(&mut rec, "S");
    assert!(matches!(
        plan_batch(&mut rec, SavepointId(777)),
        Err(crate::CoreError::UnknownSavepoint(_))
    ));
}

/// Regression for the marker-cycle bound: a legitimate chain is followed no
/// matter how long, while an actual reference cycle still errors (the old
/// hop bound used the *post-rollback* segment count, which a visited set
/// replaces exactly).
#[test]
fn marker_chains_resolve_and_cycles_error() {
    use crate::log::{LogEntry, SpEntry, SroPayload};
    use mar_itinerary::Cursor;

    let mut rec = record(RollbackMode::Basic, LoggingMode::State);
    let push_sp = |rec: &mut AgentRecord, id: u64, sro: SroPayload| {
        let cursor = Cursor::new(&rec.itinerary);
        rec.log.push(LogEntry::Savepoint(SpEntry {
            id: SavepointId(id),
            sub_id: None,
            explicit: true,
            cursor,
            table: rec.table.clone(),
            sro,
        }));
    };
    // A long legitimate chain: SP0 carries the image, SP1..SP8 are markers.
    push_sp(&mut rec, 0, SroPayload::Full(crate::data::ObjectMap::new()));
    for id in 1..=8u64 {
        push_sp(&mut rec, id, SroPayload::Ref(SavepointId(id - 1)));
    }
    match start_rollback(&rec, SavepointId(8)).unwrap() {
        StartPlan::AlreadyAtTarget(plan) => assert_eq!(plan.savepoint, SavepointId(8)),
        other => panic!("unexpected {other:?}"),
    }

    // A corrupt two-marker cycle must be detected, not spun on.
    let mut bad = record(RollbackMode::Basic, LoggingMode::State);
    push_sp(&mut bad, 1, SroPayload::Ref(SavepointId(2)));
    push_sp(&mut bad, 2, SroPayload::Ref(SavepointId(1)));
    assert!(matches!(
        start_rollback(&bad, SavepointId(2)),
        Err(crate::CoreError::CorruptLog(_))
    ));
}

/// Random forward histories: basic and optimized rollback must produce the
/// same restore plan and compensate the same multiset of operations.
fn arb_steps() -> impl Strategy<Value = Vec<(u32, Vec<EntryKind>)>> {
    proptest::collection::vec(
        (
            1u32..5,
            proptest::collection::vec(
                prop_oneof![
                    Just(EntryKind::Resource),
                    Just(EntryKind::Agent),
                    Just(EntryKind::Mixed),
                ],
                0..4,
            ),
        ),
        1..8,
    )
}

proptest! {
    #[test]
    fn modes_compensate_identically(steps in arb_steps()) {
        let build = |mode: RollbackMode| {
            let mut rec = record(mode, LoggingMode::State);
            let sp = savepoint(&mut rec, "S");
            for (node, kinds) in &steps {
                let ops: Vec<(EntryKind, &str)> =
                    kinds.iter().map(|k| (*k, "op")).collect();
                commit_step(&mut rec, *node, &ops);
            }
            (rec, sp)
        };
        let (mut basic, sp_b) = build(RollbackMode::Basic);
        let (mut opt, sp_o) = build(RollbackMode::Optimized);
        let (_, rounds_b) = run_rollback(&mut basic, sp_b);
        let (_, rounds_o) = run_rollback(&mut opt, sp_o);

        // Same number of rounds (one per step).
        prop_assert_eq!(rounds_b.len(), rounds_o.len());
        for (rb, ro) in rounds_b.iter().zip(&rounds_o) {
            prop_assert_eq!(rb.step_seq, ro.step_seq);
            // Same multiset of operations, wherever they run.
            prop_assert_eq!(rb.op_count(), ro.op_count());
            // Basic never ships.
            prop_assert!(rb.remote_rces.is_empty());
            // Optimized ships RCEs exactly when the step has no mixed entry.
            if ro.mixed {
                prop_assert!(ro.remote_rces.is_empty());
            } else {
                prop_assert!(ro
                    .remote_rces
                    .iter()
                    .all(|o| o.kind == EntryKind::Resource));
                prop_assert!(ro
                    .local_ops
                    .iter()
                    .all(|o| o.kind == EntryKind::Agent));
            }
        }
        // Identical restore plans.
        match (&rounds_b.last().unwrap().after, &rounds_o.last().unwrap().after) {
            (AfterRound::Reached(a), AfterRound::Reached(b)) => {
                prop_assert_eq!(&a.sro, &b.sro);
                prop_assert_eq!(a.savepoint, sp_b);
                prop_assert_eq!(b.savepoint, sp_o);
            }
            other => prop_assert!(false, "both must reach: {other:?}"),
        }
        // Both logs end with just the savepoint.
        prop_assert_eq!(basic.log.len(), 1);
        prop_assert_eq!(opt.log.len(), 1);
    }

    /// The optimized planner's agent transfers equal the number of
    /// mixed-entry steps; the basic planner always transfers once per step.
    #[test]
    fn transfer_counts_match_theory(steps in arb_steps()) {
        let mut rec = record(RollbackMode::Optimized, LoggingMode::State);
        let sp = savepoint(&mut rec, "S");
        let mut mixed_steps = 0;
        for (node, kinds) in &steps {
            let ops: Vec<(EntryKind, &str)> = kinds.iter().map(|k| (*k, "op")).collect();
            if kinds.contains(&EntryKind::Mixed) {
                mixed_steps += 1;
            }
            commit_step(&mut rec, *node, &ops);
        }
        let (start, rounds) = run_rollback(&mut rec, sp);
        let mut transfers = match start {
            StartPlan::Go(Destination::Node(_)) => 1,
            _ => 0,
        };
        for r in &rounds {
            if let AfterRound::Continue(Destination::Node(_)) = r.after {
                transfers += 1;
            }
        }
        prop_assert_eq!(transfers, mixed_steps, "one transfer per mixed step");
    }
}
