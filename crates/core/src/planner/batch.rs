//! The batching layer over the Fig. 4b / Fig. 5b round planner.
//!
//! [`compensation_round`] plans one compensation transaction per compensated
//! step, so rolling back k steps costs k transactions (k 2PCs) and — in
//! basic mode — up to k agent hops, even when every step ran on the same
//! node. This module fuses maximal runs of consecutive steps whose
//! compensation executes at the same destination into a single
//! [`BatchPlan`]: one compensation transaction, one 2PC, one RCE list, with
//! the compensating operations still applied newest-first across the fused
//! steps (§4.2's order is preserved because fusion never reorders rounds,
//! it only merges their transaction boundaries).
//!
//! # Fusion rule
//!
//! Two adjacent compensation units (steps, newest-first, ignoring
//! intervening savepoint entries) fuse when their compensation work lands
//! on the same destination:
//!
//! * **Basic mode** (Fig. 4): the agent executes everything at the step's
//!   node, so units fuse iff their `eos.node` is equal — the agent then
//!   makes *one* hop for the whole run instead of one per step.
//! * **Optimized mode** (Fig. 5): mixed steps pin the agent to their node
//!   and therefore never fuse; non-mixed units fuse iff their `eos.node` is
//!   equal, so the run's resource compensation entries travel as one RCE
//!   list to one resource node (one 2PC participant) while the agent
//!   compensation entries run where the agent is.
//!
//! A multi-round rollback therefore costs O(distinct destination runs)
//! transactions instead of O(k).
//!
//! # Layering
//!
//! [`RollbackCursor`] is the pure lookahead: it walks the segment-indexed
//! log newest-first (the PR-1 segment walk makes this a suffix scan that
//! stops at the target savepoint) and partitions the remaining work into
//! maximal fusable runs *without mutating anything*. [`plan_batch`] then
//! drives [`compensation_round`] — the executable specification of a single
//! round — once per fused step and merges the results, so every batched
//! plan is, step for step, exactly what the unbatched planner would have
//! produced (property-checked in `tests/planner_batch_props.rs`).

use crate::error::CoreError;
use crate::log::{LogEntry, OpEntry, RollbackLog};
use crate::planner::{compensation_round, AfterRound, RollbackMode, RoundPlan};
use crate::record::AgentRecord;
use crate::savepoint::SavepointId;

/// One step's worth of pending compensation work, as seen by the
/// [`RollbackCursor`] lookahead (a read-only projection of an EOS entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompUnit {
    /// The step's sequence number.
    pub step_seq: u64,
    /// The node the step executed on (where its RCEs must run).
    pub node: u32,
    /// Whether the step logged a mixed compensation entry.
    pub mixed: bool,
}

/// A maximal run of consecutive [`CompUnit`]s that fuse into one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRun {
    /// The shared `eos.node` of the run.
    pub node: u32,
    /// Whether any fused step logged a mixed compensation entry. In
    /// optimized mode a mixed run is always a single step (mixed units
    /// never fuse); basic-mode runs fuse regardless and may contain
    /// several.
    pub mixed: bool,
    /// Number of fused steps (≥ 1).
    pub len: usize,
    /// Sequence number of the newest step in the run.
    pub newest_seq: u64,
    /// Sequence number of the oldest step in the run.
    pub oldest_seq: u64,
}

/// Whether `next` extends a run currently characterized by `(node, mixed)`.
fn fuses(mode: RollbackMode, node: u32, mixed: bool, next: &CompUnit) -> bool {
    match mode {
        // The agent is at the run's node anyway; any same-node step joins.
        RollbackMode::Basic => node == next.node,
        // Mixed steps pin the agent and stay solo; non-mixed steps join
        // iff their RCE list targets the same resource node.
        RollbackMode::Optimized => !mixed && !next.mixed && node == next.node,
    }
}

/// Read-only lookahead over the compensation work between the abort point
/// and a target savepoint, newest-first. Yields [`CompUnit`]s via
/// [`Iterator`], or whole fused [`BatchRun`]s via [`Self::next_run`].
///
/// The walk is a suffix scan of the segment-indexed log: it touches only
/// entries above the target savepoint and stops there.
pub struct RollbackCursor<'a> {
    units: std::iter::Peekable<Box<dyn Iterator<Item = CompUnit> + 'a>>,
    mode: RollbackMode,
}

impl<'a> RollbackCursor<'a> {
    /// Starts a walk from the newest log entry down to (exclusive) the
    /// savepoint entry of `target`. The caller is responsible for `target`
    /// being in the log; a missing target simply yields every unit.
    pub fn new(log: &'a RollbackLog, mode: RollbackMode, target: SavepointId) -> Self {
        let units: Box<dyn Iterator<Item = CompUnit> + 'a> = Box::new(
            log.iter_rev()
                .take_while(move |e| !matches!(e, LogEntry::Savepoint(sp) if sp.id == target))
                .filter_map(|e| match e {
                    LogEntry::EndOfStep(eos) => Some(CompUnit {
                        step_seq: eos.step_seq,
                        node: eos.node,
                        mixed: eos.has_mixed,
                    }),
                    _ => None,
                }),
        );
        RollbackCursor {
            units: units.peekable(),
            mode,
        }
    }

    /// Consumes and returns the maximal fusable run at the current
    /// position, or `None` when only savepoint entries remain above the
    /// target.
    pub fn next_run(&mut self) -> Option<BatchRun> {
        let first = self.units.next()?;
        let mut run = BatchRun {
            node: first.node,
            mixed: first.mixed,
            len: 1,
            newest_seq: first.step_seq,
            oldest_seq: first.step_seq,
        };
        while let Some(next) = self.units.peek() {
            if !fuses(self.mode, run.node, run.mixed, next) {
                break;
            }
            run.len += 1;
            run.mixed |= next.mixed;
            run.oldest_seq = next.step_seq;
            self.units.next();
        }
        Some(run)
    }

    /// Drains the cursor into the full run partition (diagnostics and the
    /// property tests' independent oracle).
    pub fn runs(mut self) -> Vec<BatchRun> {
        let mut out = Vec::new();
        while let Some(run) = self.next_run() {
            out.push(run);
        }
        out
    }
}

impl Iterator for RollbackCursor<'_> {
    type Item = CompUnit;

    fn next(&mut self) -> Option<CompUnit> {
        self.units.next()
    }
}

/// One fused step inside a [`BatchPlan`] — exactly the fields of the
/// [`RoundPlan`] the single-round planner emitted for it, minus the
/// continuation (which belongs to the batch).
#[derive(Debug, Clone, PartialEq)]
pub struct FusedStep {
    /// The compensated step's sequence number.
    pub step_seq: u64,
    /// The node that executed the step.
    pub step_node: u32,
    /// The step method (diagnostics).
    pub method: String,
    /// Whether the step logged a mixed compensation entry.
    pub mixed: bool,
    /// Operations executing where the agent resides, newest-first.
    pub local_ops: Vec<OpEntry>,
    /// Resource compensation entries for `step_node`, newest-first.
    pub remote_rces: Vec<OpEntry>,
}

impl FusedStep {
    /// Field-wise equality with the [`RoundPlan`] the single-round planner
    /// would emit for the same step (the equivalence the property tests
    /// check).
    pub fn matches_round(&self, round: &RoundPlan) -> bool {
        self.step_seq == round.step_seq
            && self.step_node == round.step_node
            && self.method == round.method
            && self.mixed == round.mixed
            && self.local_ops == round.local_ops
            && self.remote_rces == round.remote_rces
    }
}

/// One batched compensation transaction: a maximal fused run of steps plus
/// the continuation. Executed atomically by the platform — one 2PC, one
/// shipped RCE list — in place of `steps.len()` single-round transactions.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPlan {
    /// The fused steps, newest-first. Empty iff only savepoint entries
    /// stood between the abort point and the target (`after` is then
    /// [`AfterRound::Reached`]).
    pub steps: Vec<FusedStep>,
    /// How the rollback continues after this transaction commits.
    pub after: AfterRound,
}

impl BatchPlan {
    /// Number of single-round transactions this batch replaces.
    pub fn rounds_fused(&self) -> usize {
        self.steps.len()
    }

    /// The shared `eos.node` of the fused steps (`None` for the empty
    /// savepoints-only batch).
    pub fn step_node(&self) -> Option<u32> {
        self.steps.first().map(|s| s.step_node)
    }

    /// Whether the batch compensates a mixed step (always a solo batch in
    /// optimized mode; basic-mode runs may contain several).
    pub fn mixed(&self) -> bool {
        self.steps.iter().any(|s| s.mixed)
    }

    /// Operations to execute where the agent resides, in execution order
    /// (newest step first, each step's ops newest-first).
    pub fn local_ops(&self) -> impl Iterator<Item = &OpEntry> {
        self.steps.iter().flat_map(|s| s.local_ops.iter())
    }

    /// Resource compensation entries for [`Self::step_node`], in execution
    /// order across the fused steps.
    pub fn remote_rces(&self) -> impl Iterator<Item = &OpEntry> {
        self.steps.iter().flat_map(|s| s.remote_rces.iter())
    }

    /// Whether any resource compensation entries must run remotely.
    pub fn has_remote_rces(&self) -> bool {
        self.steps.iter().any(|s| !s.remote_rces.is_empty())
    }

    /// Total number of compensating operations in the batch.
    pub fn op_count(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.local_ops.len() + s.remote_rces.len())
            .sum()
    }
}

/// Plans one batched compensation transaction: the maximal fusable run at
/// the top of the log (see the [module docs](self) for the fusion rule),
/// popped from the log exactly as `run_len` consecutive
/// [`compensation_round`] calls would have done.
///
/// Like the single-round planner, this mutates the record and must run on a
/// *copy* inside the compensation transaction; an abort re-plans from the
/// unchanged stable state.
///
/// # Errors
///
/// [`CoreError::UnknownSavepoint`] if `target` is missing,
/// [`CoreError::CorruptLog`] if the log violates the entry grammar.
pub fn plan_batch(record: &mut AgentRecord, target: SavepointId) -> Result<BatchPlan, CoreError> {
    plan_fused(record, target, usize::MAX)
}

/// Plans a batch of exactly one round — the unbatched Fig. 4b / Fig. 5b
/// behaviour boxed in the batch interface, so the platform driver has a
/// single execution path whether batching is enabled or not.
///
/// # Errors
///
/// Same as [`plan_batch`].
pub fn plan_single(record: &mut AgentRecord, target: SavepointId) -> Result<BatchPlan, CoreError> {
    plan_fused(record, target, 1)
}

fn plan_fused(
    record: &mut AgentRecord,
    target: SavepointId,
    limit: usize,
) -> Result<BatchPlan, CoreError> {
    if !record.log.contains_savepoint(target) {
        return Err(CoreError::UnknownSavepoint(target));
    }
    let run_len = {
        let mut cursor = RollbackCursor::new(&record.log, record.rollback_mode, target);
        cursor.next_run().map_or(0, |run| run.len.min(limit))
    };
    if run_len == 0 {
        // Only savepoint entries above the target: the single-round planner
        // emits one op-less "reached" round; the batch is empty.
        let round = compensation_round(record, target)?;
        debug_assert!(round.local_ops.is_empty() && round.remote_rces.is_empty());
        return Ok(BatchPlan {
            steps: Vec::new(),
            after: round.after,
        });
    }
    let mut steps = Vec::with_capacity(run_len);
    let mut after = None;
    for _ in 0..run_len {
        debug_assert!(
            after.is_none() || matches!(after, Some(AfterRound::Continue(_))),
            "a fused run never extends past a reached target"
        );
        let RoundPlan {
            step_seq,
            step_node,
            method,
            mixed,
            local_ops,
            remote_rces,
            after: round_after,
        } = compensation_round(record, target)?;
        after = Some(round_after);
        steps.push(FusedStep {
            step_seq,
            step_node,
            method,
            mixed,
            local_ops,
            remote_rces,
        });
    }
    Ok(BatchPlan {
        steps,
        after: after.expect("run_len >= 1 planned at least one round"),
    })
}
