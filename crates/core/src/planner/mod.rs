//! The rollback planners: the algorithms of Fig. 4 (basic) and Fig. 5
//! (optimized) as pure functions over the agent record.
//!
//! A planner decides *what* each compensation transaction does — which
//! entries are popped, which compensating operations run where, whether the
//! agent has to move — while the platform executes the plan inside an
//! actual compensation transaction. Because planning is pure, a transaction
//! abort (crash, lock conflict) simply re-plans from the unchanged stable
//! state, which is precisely the paper's restart argument (§4.3).
//!
//! [`compensation_round`] is the single-round planner (one transaction per
//! compensated step); the [`batch`] layer fuses maximal same-destination
//! runs of such rounds into one [`BatchPlan`] — one transaction, one 2PC —
//! which is what the platform executes by default.

pub mod batch;
mod plan;

pub use batch::{
    plan_batch, plan_single, BatchPlan, BatchRun, CompUnit, FusedStep, RollbackCursor,
};
pub use plan::{AfterRound, Destination, RestorePlan, RollbackMode, RoundPlan, StartPlan};

use crate::data::ObjectMap;
use crate::error::CoreError;
use crate::log::{LogEntry, LoggingMode, SpEntry, SroPayload};
use crate::record::AgentRecord;
use crate::savepoint::SavepointId;

/// Fig. 4a / Fig. 5a: after the aborting step transaction is rolled back,
/// decide how the rollback begins. Read-only: the log is not modified.
///
/// # Errors
///
/// [`CoreError::UnknownSavepoint`] if `target` is not in the log.
pub fn start_rollback(record: &AgentRecord, target: SavepointId) -> Result<StartPlan, CoreError> {
    if !record.log.contains_savepoint(target) {
        return Err(CoreError::UnknownSavepoint(target));
    }
    // "The first case is that the desired savepoint was set directly before
    // the aborting step transaction." (Fig. 4a)
    if let Some(sp) = record.log.top_savepoint() {
        if sp.id == target {
            return Ok(StartPlan::AlreadyAtTarget(Box::new(resolve_restore(
                record, sp,
            )?)));
        }
    }
    Ok(StartPlan::Go(first_destination(record)))
}

/// Where the first compensation transaction runs (the "next node" of
/// Fig. 4a / the optimized decision of Fig. 5a).
fn first_destination(record: &AgentRecord) -> Destination {
    match record.log.last_eos() {
        Some(eos) => match record.rollback_mode {
            RollbackMode::Basic => Destination::Node(eos.node),
            RollbackMode::Optimized => {
                if eos.has_mixed {
                    Destination::Node(eos.node)
                } else {
                    Destination::Local
                }
            }
        },
        // Only savepoint entries above the target: no resource compensation
        // anywhere — the rollback completes wherever the agent is.
        None => Destination::Local,
    }
}

/// Fig. 4b / Fig. 5b: plans one compensation transaction. Pops the
/// compensated step's entries (and any intervening savepoint entries) from
/// the log and — under transition logging — advances the SRO shadow for
/// every savepoint entry read (§4.3 discussion).
///
/// The caller must run this on a *copy* of the record inside the
/// compensation transaction; the mutation becomes durable only at commit.
///
/// # Errors
///
/// [`CoreError::UnknownSavepoint`] if `target` is missing,
/// [`CoreError::CorruptLog`] if the log violates the entry grammar.
pub fn compensation_round(
    record: &mut AgentRecord,
    target: SavepointId,
) -> Result<RoundPlan, CoreError> {
    if !record.log.contains_savepoint(target) {
        return Err(CoreError::UnknownSavepoint(target));
    }

    // Phase A: pop savepoints above the target ("if last log entry is
    // savepoint: LOG.pop()", generalized to adjacent savepoints).
    pop_savepoints_above_target(record, target);

    // Reached without compensating anything? (Only markers/savepoints stood
    // between the abort point and the target.)
    if let Some(sp) = record.log.top_savepoint() {
        if sp.id == target {
            let restore = resolve_restore(record, &sp.clone())?;
            return Ok(RoundPlan {
                step_seq: record.step_seq,
                step_node: 0,
                method: String::new(),
                mixed: false,
                local_ops: Vec::new(),
                remote_rces: Vec::new(),
                after: AfterRound::Reached(Box::new(restore)),
            });
        }
    }

    // Phase B: the end-of-step entry of the step to compensate.
    let eos = record.log.pop_eos()?;

    // Phase C: operation entries until the begin-of-step entry. Popping
    // yields them newest-first, which *is* the compensation order ("in the
    // reverse order they appear in the log", §4.2).
    let mut ops = Vec::new();
    loop {
        match record.log.pop() {
            Some(LogEntry::Operation(oe)) => {
                if oe.step_seq != eos.step_seq {
                    return Err(CoreError::CorruptLog(format!(
                        "operation entry of step {} inside step {}",
                        oe.step_seq, eos.step_seq
                    )));
                }
                ops.push(oe);
            }
            Some(LogEntry::BeginOfStep(bos)) => {
                if bos.step_seq != eos.step_seq {
                    return Err(CoreError::CorruptLog(format!(
                        "BOS {} does not match EOS {}",
                        bos.step_seq, eos.step_seq
                    )));
                }
                break;
            }
            Some(other) => {
                return Err(CoreError::CorruptLog(format!(
                    "unexpected {} inside step {}",
                    other.tag(),
                    eos.step_seq
                )));
            }
            None => {
                return Err(CoreError::CorruptLog("log ended inside a step".to_owned()));
            }
        }
    }

    // Phase D: split per mode (Fig. 5b). In the mixed case — and always in
    // basic mode — everything executes where the agent is.
    let split = record.rollback_mode == RollbackMode::Optimized && !eos.has_mixed;
    let (local_ops, remote_rces) = if split {
        let (rces, aces): (Vec<_>, Vec<_>) = ops
            .into_iter()
            .partition(|oe| oe.kind == crate::comp::EntryKind::Resource);
        (aces, rces)
    } else {
        (ops, Vec::new())
    };

    // Phase E: pop further savepoints and decide how to continue.
    pop_savepoints_above_target(record, target);
    let after = match record.log.last() {
        Some(LogEntry::Savepoint(sp)) if sp.id == target => {
            let restore = resolve_restore(record, &sp.clone())?;
            AfterRound::Reached(Box::new(restore))
        }
        Some(LogEntry::EndOfStep(next_eos)) => {
            let dest = match record.rollback_mode {
                RollbackMode::Basic => Destination::Node(next_eos.node),
                RollbackMode::Optimized => {
                    if next_eos.has_mixed {
                        Destination::Node(next_eos.node)
                    } else {
                        Destination::Local
                    }
                }
            };
            AfterRound::Continue(dest)
        }
        Some(other) => {
            return Err(CoreError::CorruptLog(format!(
                "expected SP or EOS after compensating step {}, found {}",
                eos.step_seq,
                other.tag()
            )));
        }
        None => return Err(CoreError::UnknownSavepoint(target)),
    };

    Ok(RoundPlan {
        step_seq: eos.step_seq,
        step_node: eos.node,
        method: eos.method,
        mixed: eos.has_mixed,
        local_ops,
        remote_rces,
        after,
    })
}

/// Pops non-target savepoint entries off the top of the log, applying their
/// backward deltas to the SRO shadow (transition logging). Walks the log's
/// savepoint segments directly: each popped savepoint is O(1), with no
/// entry scans in between.
fn pop_savepoints_above_target(record: &mut AgentRecord, target: SavepointId) {
    while record.log.top_savepoint().is_some_and(|sp| sp.id != target) {
        let sp = record
            .log
            .pop_top_savepoint()
            .expect("top_savepoint checked in loop condition");
        if let SroPayload::Delta(delta) = &sp.sro {
            record.data.apply_delta_to_shadow(delta);
        }
    }
}

/// Builds the restore plan for the reached target savepoint.
fn resolve_restore(record: &AgentRecord, sp: &SpEntry) -> Result<RestorePlan, CoreError> {
    let sro: ObjectMap = match record.logging_mode {
        LoggingMode::Transition => {
            // All savepoints above the target have been popped and their
            // deltas applied: the shadow *is* the SRO state at the target.
            record.data.shadow().cloned().ok_or_else(|| {
                CoreError::CorruptLog("transition logging without shadow copy".to_owned())
            })?
        }
        LoggingMode::State => match &sp.sro {
            SroPayload::Full(image) => image.clone(),
            SroPayload::Ref(ref_id) => {
                // Marker: an earlier savepoint carries the image; it is
                // still in the log because references always point below
                // the target. Marker *chains* (log compaction demotes
                // duplicate images to markers, and a marker written after
                // such a demotion references a marker) are followed to
                // their data-bearing root. A visited set detects (corrupt)
                // reference cycles exactly: unlike a hop-count bound tied
                // to the *post-rollback* segment count, it can never
                // misreport a legitimate long chain near the log head.
                let mut cur = *ref_id;
                let mut visited = std::collections::BTreeSet::from([sp.id]);
                loop {
                    if !visited.insert(cur) {
                        return Err(CoreError::CorruptLog(format!(
                            "marker cycle while resolving {}",
                            sp.id
                        )));
                    }
                    let referenced = record
                        .log
                        .find_savepoint(cur)
                        .ok_or(CoreError::UnknownSavepoint(cur))?;
                    match &referenced.sro {
                        SroPayload::Full(image) => break image.clone(),
                        SroPayload::Ref(next) => {
                            cur = *next;
                        }
                        other => {
                            return Err(CoreError::CorruptLog(format!(
                                "marker {} resolves to non-image savepoint ({:?})",
                                sp.id, other
                            )));
                        }
                    }
                }
            }
            SroPayload::Delta(_) => {
                return Err(CoreError::CorruptLog(
                    "delta savepoint under state logging".to_owned(),
                ));
            }
        },
    };
    Ok(RestorePlan {
        savepoint: sp.id,
        sro,
        cursor: sp.cursor.clone(),
        table: sp.table.clone(),
    })
}

#[cfg(test)]
mod tests;
