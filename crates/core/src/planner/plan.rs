//! Plan data types produced by the rollback planners.

use mar_itinerary::Cursor;
use serde::{Deserialize, Serialize};

use crate::data::ObjectMap;
use crate::log::OpEntry;
use crate::savepoint::{SavepointId, SavepointTable};

/// Which rollback mechanism an agent uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RollbackMode {
    /// Fig. 4: the agent moves back along its path, one node per
    /// compensation transaction.
    Basic,
    /// Fig. 5: the agent moves only for steps with mixed compensation
    /// entries; resource compensation entries are shipped to the resource
    /// node and run concurrently with local agent compensation entries.
    #[default]
    Optimized,
}

/// Everything needed to reinstate the agent at the target savepoint:
/// restored SRO image, rewound cursor, and savepoint bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct RestorePlan {
    /// The reached savepoint.
    pub savepoint: SavepointId,
    /// The SRO state to restore.
    pub sro: ObjectMap,
    /// Where forward execution resumes.
    pub cursor: Cursor,
    /// Savepoint bookkeeping as of the savepoint.
    pub table: SavepointTable,
}

/// Where the next compensation transaction executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// The agent must be enqueued at this node (basic mode; optimized mode
    /// only when the next step's entries include a mixed entry).
    Node(u32),
    /// The agent stays where it is (optimized mode, no mixed entry).
    Local,
}

/// Outcome of Fig. 4a / Fig. 5a — how the rollback begins.
#[derive(Debug, Clone, PartialEq)]
pub enum StartPlan {
    /// The target savepoint was constituted directly before the aborting
    /// step: no compensation needed, restore immediately.
    AlreadyAtTarget(Box<RestorePlan>),
    /// Compensation rounds are needed, starting at the given destination.
    Go(Destination),
}

/// What happens after a compensation round's transaction commits.
#[derive(Debug, Clone, PartialEq)]
pub enum AfterRound {
    /// The target savepoint is reached: restore and resume forward
    /// execution.
    Reached(Box<RestorePlan>),
    /// More steps must be compensated.
    Continue(Destination),
}

/// One compensation transaction (Fig. 4b / Fig. 5b): which step is being
/// compensated, which operations run where, and how to continue.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundPlan {
    /// The compensated step's sequence number.
    pub step_seq: u64,
    /// The node that executed the step (where RCEs must run).
    pub step_node: u32,
    /// The step method (diagnostics).
    pub method: String,
    /// Whether the step's entries include a mixed compensation entry.
    pub mixed: bool,
    /// Operations to execute where the agent resides, in order. In basic
    /// mode (and for mixed steps) this is *all* of the step's entries; in
    /// split mode it is the agent compensation entries only.
    pub local_ops: Vec<OpEntry>,
    /// Resource compensation entries to ship to `step_node` (optimized,
    /// non-mixed steps only), executed there inside the same compensation
    /// transaction, concurrently with `local_ops` (§4.4.1).
    pub remote_rces: Vec<OpEntry>,
    /// How the rollback continues.
    pub after: AfterRound,
}

impl RoundPlan {
    /// Total number of compensating operations in this round.
    pub fn op_count(&self) -> usize {
        self.local_ops.len() + self.remote_rces.len()
    }
}
