//! Migration-vs-RPC cost model, after Straßer & Schwehm \[16\].
//!
//! §4.4.1 notes that when compensating operations can also reach resources
//! via RPC, a performance model "similar to that introduced in \[16\]" decides
//! whether the agent (or an RCE list) should be transferred to the resource
//! node or the resource accessed remotely. This module implements that
//! decision for the simulator's latency model.

use serde::{Deserialize, Serialize};

/// Link parameters mirroring `mar-simnet`'s latency model: a fixed cost
/// per message plus a per-kilobyte cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Fixed one-way message cost in microseconds.
    pub base_us: u64,
    /// Additional cost per 1024 payload bytes, in microseconds.
    pub per_kb_us: u64,
}

impl LinkParams {
    /// One-way latency for a message of `bytes` payload bytes.
    pub fn message_us(&self, bytes: usize) -> u64 {
        self.base_us + self.per_kb_us * (bytes as u64) / 1024
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        // Matches `LatencyModel::lan()`.
        LinkParams {
            base_us: 1_000,
            per_kb_us: 100,
        }
    }
}

/// The migration-vs-RPC decision model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CostModel {
    /// Link parameters used for both migration and RPC traffic.
    pub link: LinkParams,
}

impl CostModel {
    /// Creates a model over the given link.
    pub fn new(link: LinkParams) -> Self {
        CostModel { link }
    }

    /// Cost of migrating the agent (with its rollback log) to the resource
    /// node, performing `n_ops` local interactions (assumed free), and
    /// migrating back. `round_trip = false` models one-way moves — e.g. the
    /// backward walk of the basic rollback, which continues from the
    /// destination instead of returning.
    pub fn migration_us(&self, agent_bytes: usize, log_bytes: usize, round_trip: bool) -> u64 {
        let one_way = self.link.message_us(agent_bytes + log_bytes);
        if round_trip {
            one_way * 2
        } else {
            one_way
        }
    }

    /// Cost of performing `n_ops` interactions via RPC: one request/response
    /// pair per operation.
    pub fn rpc_us(&self, n_ops: usize, req_bytes: usize, resp_bytes: usize) -> u64 {
        (n_ops as u64) * (self.link.message_us(req_bytes) + self.link.message_us(resp_bytes))
    }

    /// `true` when migrating beats RPC for this interaction pattern.
    pub fn prefer_migration(
        &self,
        agent_bytes: usize,
        log_bytes: usize,
        round_trip: bool,
        n_ops: usize,
        req_bytes: usize,
        resp_bytes: usize,
    ) -> bool {
        self.migration_us(agent_bytes, log_bytes, round_trip)
            < self.rpc_us(n_ops, req_bytes, resp_bytes)
    }

    /// Decides RCE delivery for one batched compensation round: `true` to
    /// migrate the agent (record + rollback log) to the resource node,
    /// `false` to ship the RCE list. Unlike the per-op RPC pattern of
    /// [`Self::prefer_migration`], a fused RCE list crosses the wire *once*
    /// regardless of how many operations it carries, so this compares a
    /// one-way agent migration (the rollback continues from the resource
    /// node; nothing comes back) against a single list-sized message plus
    /// its vote-sized 2PC reply.
    pub fn migrate_for_batch(
        &self,
        agent_bytes: usize,
        log_bytes: usize,
        rce_list_bytes: usize,
    ) -> bool {
        /// Encoded size of a 2PC vote message — the reply leg of a shipped
        /// RCE list.
        const VOTE_BYTES: usize = 32;
        self.prefer_migration(agent_bytes, log_bytes, false, 1, rce_list_bytes, VOTE_BYTES)
    }

    /// Whether a pre-transfer log compaction pass can pay for itself on
    /// this link: the pass can shave at most `candidate_bytes` (the log's
    /// savepoint payload bytes — step frames are never touched) off the
    /// wire, each worth [`LinkParams::per_kb_us`], against a CPU cost of a
    /// small fixed setup plus `cpu_us_per_kb` per payload kilobyte scanned.
    /// Sub-kilobyte payloads round to zero wire savings and are always
    /// skipped — there is nothing worth saving; a free link
    /// (`per_kb_us == 0`) never pays.
    pub fn compaction_pays(&self, candidate_bytes: usize, cpu_us_per_kb: u64) -> bool {
        /// Setup cost of one pass (state reconstruction buffers, the
        /// oldest→newest walk scaffolding), in microseconds.
        const PASS_BASE_US: u64 = 2;
        let kb = (candidate_bytes as u64) / 1024;
        self.link.per_kb_us * kb > PASS_BASE_US + cpu_us_per_kb * kb
    }

    /// The smallest number of operations at which migration becomes cheaper
    /// than RPC (the crossover point of the \[16\]-style model), or `None` if
    /// RPC always wins (zero-cost RPC is impossible, so this only happens
    /// with degenerate parameters).
    pub fn crossover_ops(
        &self,
        agent_bytes: usize,
        log_bytes: usize,
        round_trip: bool,
        req_bytes: usize,
        resp_bytes: usize,
    ) -> Option<u64> {
        let mig = self.migration_us(agent_bytes, log_bytes, round_trip);
        let per_op = self.link.message_us(req_bytes) + self.link.message_us(resp_bytes);
        if per_op == 0 {
            return None;
        }
        Some(mig / per_op + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(LinkParams {
            base_us: 1_000,
            per_kb_us: 100,
        })
    }

    #[test]
    fn message_cost_scales_with_size() {
        let m = model();
        assert_eq!(m.link.message_us(0), 1_000);
        assert_eq!(m.link.message_us(10 * 1024), 2_000);
    }

    #[test]
    fn few_ops_prefer_rpc_many_prefer_migration() {
        let m = model();
        // Small interaction, huge agent: RPC wins.
        assert!(!m.prefer_migration(100_000, 50_000, true, 1, 100, 100));
        // Many ops against a small agent: migration wins.
        assert!(m.prefer_migration(2_000, 500, true, 50, 100, 100));
    }

    #[test]
    fn crossover_is_consistent_with_preference() {
        let m = model();
        let (agent, log, req, resp) = (20_000, 10_000, 200, 400);
        let k = m.crossover_ops(agent, log, true, req, resp).unwrap();
        assert!(
            m.prefer_migration(agent, log, true, k as usize, req, resp),
            "at the crossover migration must win"
        );
        assert!(
            !m.prefer_migration(agent, log, true, (k - 1) as usize, req, resp),
            "below the crossover RPC must win"
        );
    }

    #[test]
    fn log_size_pushes_crossover_up() {
        let m = model();
        let small = m.crossover_ops(10_000, 0, true, 100, 100).unwrap();
        let large = m.crossover_ops(10_000, 100_000, true, 100, 100).unwrap();
        assert!(
            large > small,
            "a bigger rollback log must make migration less attractive ({small} vs {large})"
        );
    }

    #[test]
    fn batch_delivery_weighs_list_size_against_agent_size() {
        let m = model();
        // Small agent, fat RCE list: carrying the list inside the agent's
        // one-way hop beats shipping it.
        assert!(m.migrate_for_batch(1_000, 500, 40_000));
        // Fat agent + log, slim list: ship the list.
        assert!(!m.migrate_for_batch(60_000, 120_000, 300));
    }

    #[test]
    fn compaction_gate_follows_link_and_payload_size() {
        let m = model();
        // 32 KiB of savepoint payload on a LAN: the pass pays easily.
        assert!(m.compaction_pays(32 * 1024, 1));
        // Tiny payloads round to zero wire savings: skip.
        assert!(!m.compaction_pays(512, 1));
        // A free link can never be paid for.
        let free = CostModel::new(LinkParams {
            base_us: 1_000,
            per_kb_us: 0,
        });
        assert!(!free.compaction_pays(1 << 20, 1));
        // CPU slower than the wire: skip.
        assert!(!m.compaction_pays(32 * 1024, 1_000));
    }

    #[test]
    fn one_way_migration_is_half() {
        let m = model();
        assert_eq!(
            m.migration_us(1024, 0, true),
            2 * m.migration_us(1024, 0, false)
        );
    }
}
