//! Migration-vs-RPC cost model, after Straßer & Schwehm \[16\].
//!
//! §4.4.1 notes that when compensating operations can also reach resources
//! via RPC, a performance model "similar to that introduced in \[16\]" decides
//! whether the agent (or an RCE list) should be transferred to the resource
//! node or the resource accessed remotely. This module implements that
//! decision for the simulator's latency model.

use serde::{Deserialize, Serialize};

/// Link parameters mirroring `mar-simnet`'s latency model: a fixed cost
/// per message plus a per-kilobyte cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Fixed one-way message cost in microseconds.
    pub base_us: u64,
    /// Additional cost per 1024 payload bytes, in microseconds.
    pub per_kb_us: u64,
}

impl LinkParams {
    /// One-way latency for a message of `bytes` payload bytes.
    pub fn message_us(&self, bytes: usize) -> u64 {
        self.base_us + self.per_kb_us * (bytes as u64) / 1024
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        // Matches `LatencyModel::lan()`.
        LinkParams {
            base_us: 1_000,
            per_kb_us: 100,
        }
    }
}

/// The migration-vs-RPC decision model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CostModel {
    /// Link parameters used for both migration and RPC traffic.
    pub link: LinkParams,
}

impl CostModel {
    /// Creates a model over the given link.
    pub fn new(link: LinkParams) -> Self {
        CostModel { link }
    }

    /// Cost of migrating the agent (with its rollback log) to the resource
    /// node, performing `n_ops` local interactions (assumed free), and
    /// migrating back. `round_trip = false` models one-way moves — e.g. the
    /// backward walk of the basic rollback, which continues from the
    /// destination instead of returning.
    pub fn migration_us(&self, agent_bytes: usize, log_bytes: usize, round_trip: bool) -> u64 {
        let one_way = self.link.message_us(agent_bytes + log_bytes);
        if round_trip {
            one_way * 2
        } else {
            one_way
        }
    }

    /// Cost of performing `n_ops` interactions via RPC: one request/response
    /// pair per operation.
    pub fn rpc_us(&self, n_ops: usize, req_bytes: usize, resp_bytes: usize) -> u64 {
        (n_ops as u64) * (self.link.message_us(req_bytes) + self.link.message_us(resp_bytes))
    }

    /// `true` when migrating beats RPC for this interaction pattern.
    pub fn prefer_migration(
        &self,
        agent_bytes: usize,
        log_bytes: usize,
        round_trip: bool,
        n_ops: usize,
        req_bytes: usize,
        resp_bytes: usize,
    ) -> bool {
        self.migration_us(agent_bytes, log_bytes, round_trip)
            < self.rpc_us(n_ops, req_bytes, resp_bytes)
    }

    /// The smallest number of operations at which migration becomes cheaper
    /// than RPC (the crossover point of the \[16\]-style model), or `None` if
    /// RPC always wins (zero-cost RPC is impossible, so this only happens
    /// with degenerate parameters).
    pub fn crossover_ops(
        &self,
        agent_bytes: usize,
        log_bytes: usize,
        round_trip: bool,
        req_bytes: usize,
        resp_bytes: usize,
    ) -> Option<u64> {
        let mig = self.migration_us(agent_bytes, log_bytes, round_trip);
        let per_op = self.link.message_us(req_bytes) + self.link.message_us(resp_bytes);
        if per_op == 0 {
            return None;
        }
        Some(mig / per_op + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(LinkParams {
            base_us: 1_000,
            per_kb_us: 100,
        })
    }

    #[test]
    fn message_cost_scales_with_size() {
        let m = model();
        assert_eq!(m.link.message_us(0), 1_000);
        assert_eq!(m.link.message_us(10 * 1024), 2_000);
    }

    #[test]
    fn few_ops_prefer_rpc_many_prefer_migration() {
        let m = model();
        // Small interaction, huge agent: RPC wins.
        assert!(!m.prefer_migration(100_000, 50_000, true, 1, 100, 100));
        // Many ops against a small agent: migration wins.
        assert!(m.prefer_migration(2_000, 500, true, 50, 100, 100));
    }

    #[test]
    fn crossover_is_consistent_with_preference() {
        let m = model();
        let (agent, log, req, resp) = (20_000, 10_000, 200, 400);
        let k = m.crossover_ops(agent, log, true, req, resp).unwrap();
        assert!(
            m.prefer_migration(agent, log, true, k as usize, req, resp),
            "at the crossover migration must win"
        );
        assert!(
            !m.prefer_migration(agent, log, true, (k - 1) as usize, req, resp),
            "below the crossover RPC must win"
        );
    }

    #[test]
    fn log_size_pushes_crossover_up() {
        let m = model();
        let small = m.crossover_ops(10_000, 0, true, 100, 100).unwrap();
        let large = m.crossover_ops(10_000, 100_000, true, 100, 100).unwrap();
        assert!(
            large > small,
            "a bigger rollback log must make migration less attractive ({small} vs {large})"
        );
    }

    #[test]
    fn one_way_migration_is_half() {
        let m = model();
        assert_eq!(
            m.migration_us(1024, 0, true),
            2 * m.migration_us(1024, 0, false)
        );
    }
}
