//! Span surgery for the itinerary field of encoded agent records.
//!
//! The itinerary is the record's one large *immutable* field: it never
//! changes after launch, so shipping it on every migration is pure
//! overhead once the receiving node has seen it. The interning protocol
//! (platform layer) therefore replaces the inline itinerary span of an
//! in-flight record with a tiny **by-reference** framing — a one-field
//! struct holding the [`mar_wire::content_hash64`] of the inline span —
//! and splices the inline bytes back in before anything durable sees the
//! record.
//!
//! This module is the byte-level toolkit for that: locate the span inside
//! an encoded record, classify it as inline or by-reference, build the
//! reference framing, and splice a replacement span in. The two forms are
//! distinguishable by their sequence arity (the inline itinerary struct
//! has [`ITINERARY_FIELDS`] fields, the reference exactly one), so no new
//! wire tags are needed and every pre-existing decoder keeps working on
//! inline records.
//!
//! Invariant the platform maintains: **stable storage never holds a
//! by-reference record.** References exist only inside in-flight 2PC
//! `Prepare` payloads; the receiver rehydrates before persisting anything.

use std::ops::Range;

use crate::error::CoreError;
use crate::resident::RECORD_FIELDS;

/// Encoded fields preceding the itinerary in the record layout
/// (`id`, `agent_type`, `home`, `data`).
const FIELDS_BEFORE_ITINERARY: usize = 4;
/// Sequence arity of an inline itinerary (`id`, `entries`, `order`).
pub const ITINERARY_FIELDS: u64 = 3;
/// Sequence arity of the by-reference framing (`hash`).
pub const REF_FIELDS: u64 = 1;

/// What an itinerary span turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The full inline itinerary encoding.
    Inline,
    /// A content-address reference: the hash of the inline encoding.
    Ref(u64),
}

/// Locates the itinerary span inside an encoded record (inline **or**
/// by-reference form) without decoding any field.
///
/// # Errors
///
/// Codec errors for inputs that are not framed like a record.
pub fn itinerary_span(record: &[u8]) -> Result<Range<usize>, CoreError> {
    let (fields, n) = mar_wire::read_seq_header(record)?;
    if fields != RECORD_FIELDS {
        return Err(CoreError::CorruptLog(format!(
            "record has {fields} fields, expected {RECORD_FIELDS}"
        )));
    }
    let mut off = n;
    for _ in 0..FIELDS_BEFORE_ITINERARY {
        off += mar_wire::skip_value(&record[off..])?;
    }
    let start = off;
    let end = start + mar_wire::skip_value(&record[start..])?;
    Ok(start..end)
}

/// Classifies an itinerary span as inline or by-reference.
///
/// # Errors
///
/// Codec errors for spans framed as neither form, including a reference
/// span with trailing bytes after its hash.
pub fn classify_span(span: &[u8]) -> Result<SpanKind, CoreError> {
    let (fields, n) = mar_wire::read_seq_header(span)?;
    match fields {
        ITINERARY_FIELDS => Ok(SpanKind::Inline),
        REF_FIELDS => {
            let (hash, m) = mar_wire::from_slice_prefix::<u64>(&span[n..])?;
            if n + m != span.len() {
                return Err(mar_wire::WireError::TrailingBytes(span.len() - n - m).into());
            }
            Ok(SpanKind::Ref(hash))
        }
        other => Err(CoreError::CorruptLog(format!(
            "itinerary span has {other} fields, expected {ITINERARY_FIELDS} (inline) \
             or {REF_FIELDS} (reference)"
        ))),
    }
}

/// Encodes the by-reference framing for `hash`.
#[must_use]
pub fn encode_ref(hash: u64) -> Vec<u8> {
    let mut ser = mar_wire::BinSerializer::with_capacity(12);
    ser.begin_struct(REF_FIELDS as usize);
    ser.value(&hash).expect("u64 always encodes");
    ser.into_bytes()
}

/// Rebuilds `record` with `span` (from [`itinerary_span`]) replaced by
/// `replacement` — used in both directions: strip (inline → ref) and
/// rehydrate (ref → inline).
#[must_use]
pub fn splice_span(record: &[u8], span: Range<usize>, replacement: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(record.len() - span.len() + replacement.len());
    out.extend_from_slice(&record[..span.start]);
    out.extend_from_slice(replacement);
    out.extend_from_slice(&record[span.end..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataSpace;
    use crate::log::LoggingMode;
    use crate::planner::RollbackMode;
    use crate::record::{AgentId, AgentRecord};
    use mar_itinerary::samples;

    fn record_bytes() -> Vec<u8> {
        AgentRecord::new(
            AgentId(3),
            "traveller",
            0,
            DataSpace::new(),
            samples::fig6(),
            LoggingMode::State,
            RollbackMode::Optimized,
        )
        .to_bytes()
        .unwrap()
    }

    #[test]
    fn span_is_the_itinerary_encoding() {
        let bytes = record_bytes();
        let span = itinerary_span(&bytes).unwrap();
        let expected = mar_wire::to_bytes(&samples::fig6()).unwrap();
        assert_eq!(&bytes[span], &expected[..]);
    }

    #[test]
    fn strip_and_rehydrate_roundtrip_byte_identically() {
        let bytes = record_bytes();
        let span = itinerary_span(&bytes).unwrap();
        let inline = bytes[span.clone()].to_vec();
        let hash = mar_wire::content_hash64(&inline);

        let stripped = splice_span(&bytes, span, &encode_ref(hash));
        assert!(stripped.len() < bytes.len());
        let span2 = itinerary_span(&stripped).unwrap();
        assert!(matches!(
            classify_span(&stripped[span2.clone()]),
            Ok(SpanKind::Ref(h)) if h == hash
        ));

        let back = splice_span(&stripped, span2, &inline);
        assert_eq!(back, bytes);
    }

    #[test]
    fn classify_rejects_other_arities_and_trailing_bytes() {
        let bytes = record_bytes();
        // The whole record is a 12-field sequence: not an itinerary span.
        assert!(classify_span(&bytes).is_err());
        let mut padded = encode_ref(7);
        padded.push(0);
        assert!(classify_span(&padded).is_err());
        assert!(classify_span(&[]).is_err());
    }

    #[test]
    fn span_location_fails_on_garbage() {
        assert!(itinerary_span(&[0xff, 0x01]).is_err());
        let bytes = record_bytes();
        assert!(itinerary_span(&bytes[..3]).is_err());
    }
}
