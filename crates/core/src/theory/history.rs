//! Operations and histories (§3.1).

use std::fmt;
use std::rc::Rc;

use crate::theory::state::AugState;

/// An operation `f` on the augmented state. Unlike \[8\], operations may read
/// and write any number of entities.
pub trait Operation {
    /// Applies the operation, mutating the state.
    fn apply(&self, state: &mut AugState);

    /// A short name for diagnostics.
    fn name(&self) -> String;
}

/// A history `X = <f1, f2, …, fn>`: a total order of operations, which also
/// denotes the composed function `f1 • f2 • … • fn`.
#[derive(Clone, Default)]
pub struct History {
    ops: Vec<Rc<dyn Operation>>,
}

impl History {
    /// The empty history (the identity function `I`).
    pub fn identity() -> Self {
        History::default()
    }

    /// Builds a history from operations.
    pub fn of<I: IntoIterator<Item = Rc<dyn Operation>>>(ops: I) -> Self {
        History {
            ops: ops.into_iter().collect(),
        }
    }

    /// Appends an operation.
    pub fn push(&mut self, op: Rc<dyn Operation>) {
        self.ops.push(op);
    }

    /// Concatenates two histories: `self` then `other`.
    pub fn then(&self, other: &History) -> History {
        let mut ops = self.ops.clone();
        ops.extend(other.ops.iter().cloned());
        History { ops }
    }

    /// Applies the history as a function: `X(S)`.
    pub fn apply(&self, initial: &AugState) -> AugState {
        let mut s = initial.clone();
        for op in &self.ops {
            op.apply(&mut s);
        }
        s
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for the identity history.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations in order.
    pub fn ops(&self) -> &[Rc<dyn Operation>] {
        &self.ops
    }
}

impl fmt::Debug for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<{}>",
            self.ops
                .iter()
                .map(|o| o.name())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory::ops::{AddOp, SetOp};
    use mar_wire::Value;

    #[test]
    fn identity_maps_state_to_itself() {
        let s = AugState::from_pairs([("a", Value::from(3i64))]);
        assert!(History::identity().apply(&s).semantically_eq(&s));
    }

    #[test]
    fn application_order_matters() {
        let s = AugState::new();
        let set_then_add = History::of([
            Rc::new(SetOp::new("x", Value::from(10i64))) as Rc<dyn Operation>,
            Rc::new(AddOp::new("x", 5)),
        ]);
        let add_then_set = History::of([
            Rc::new(AddOp::new("x", 5)) as Rc<dyn Operation>,
            Rc::new(SetOp::new("x", Value::from(10i64))),
        ]);
        assert_eq!(set_then_add.apply(&s).get_i64("x"), 15);
        assert_eq!(add_then_set.apply(&s).get_i64("x"), 10);
    }

    #[test]
    fn then_concatenates() {
        let a = History::of([Rc::new(AddOp::new("x", 1)) as Rc<dyn Operation>]);
        let b = History::of([Rc::new(AddOp::new("x", 2)) as Rc<dyn Operation>]);
        let ab = a.then(&b);
        assert_eq!(ab.len(), 2);
        assert_eq!(ab.apply(&AugState::new()).get_i64("x"), 3);
    }

    #[test]
    fn debug_lists_names() {
        let h = History::of([Rc::new(AddOp::new("x", 1)) as Rc<dyn Operation>]);
        assert_eq!(format!("{h:?}"), "<add(x,1)>");
    }
}
