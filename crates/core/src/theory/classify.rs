//! The classification of compensation types (§3.2).

use std::fmt;

use serde::{Deserialize, Serialize};

/// How well an operation can be compensated (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CompensationClass {
    /// Compensation produces *sound* histories: dependent transactions are
    /// unaffected (`X(S) = Y(S)`); requires the compensating operations to
    /// commute with everything in `dep(T)`. Rare in practice.
    Sound,
    /// Compensation is possible, but `(T • CT)(S) ≠ S` is accepted: the
    /// result is only an *equivalent* state (fresh coin serial numbers, a
    /// credit note, a fee) and dependent transactions may have seen `T`.
    Acceptable,
    /// Compensation may fail at execution time (e.g. withdrawing a
    /// compensated deposit from an account another transaction has already
    /// drained); needs retry or escalation strategies (\[4\], \[10\]).
    Failable,
    /// The operation cannot be compensated at all (e.g. deleting bulk data
    /// without logging it); a step containing one cannot be rolled back
    /// after commit.
    Impossible,
}

impl CompensationClass {
    /// Whether a committed step containing this operation can still be
    /// rolled back.
    pub fn reversible(self) -> bool {
        self != CompensationClass::Impossible
    }
}

impl fmt::Display for CompensationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompensationClass::Sound => "sound",
            CompensationClass::Acceptable => "acceptable",
            CompensationClass::Failable => "failable",
            CompensationClass::Impossible => "impossible",
        };
        f.write_str(s)
    }
}

/// A catalogued operation with its compensation class and the paper's
/// rationale.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassifiedOp {
    /// Operation name, e.g. `"bank.deposit(overdraftable)"`.
    pub op: String,
    /// Its class.
    pub class: CompensationClass,
    /// Why (one sentence, citing the paper's example).
    pub rationale: String,
}

/// The catalogue of example operations discussed in §3.2, used by the E10
/// experiment and as live documentation for resource authors.
pub fn classify_catalog() -> Vec<ClassifiedOp> {
    let entry = |op: &str, class: CompensationClass, why: &str| ClassifiedOp {
        op: op.to_owned(),
        class,
        rationale: why.to_owned(),
    };
    vec![
        entry(
            "bank.deposit/withdraw (overdraft allowed)",
            CompensationClass::Sound,
            "deposit(x) and withdraw(x) commute when the account may be overdrawn, so T, CT and dep(T) form sound histories",
        ),
        entry(
            "shop.buy (goods still deliverable elsewhere)",
            CompensationClass::Acceptable,
            "a dependent buyer simply bought elsewhere; compensating the purchase later does not disturb it",
        ),
        entry(
            "mint.pay-with-digital-cash",
            CompensationClass::Acceptable,
            "compensation returns the same amount in coins with different serial numbers — an equivalent, not identical, state",
        ),
        entry(
            "shop.buy (refund charges a fee / credit note after deadline)",
            CompensationClass::Acceptable,
            "the agent holds different information after compensation (fee deducted or credit note) and must handle the changed situation",
        ),
        entry(
            "bank.deposit (no overdraft)",
            CompensationClass::Failable,
            "the compensating withdraw needs sufficient funds; a concurrent withdrawal can make it fail",
        ),
        entry(
            "db.bulk-delete (unlogged)",
            CompensationClass::Impossible,
            "compensation would require logging all deleted data; a step containing it cannot be rolled back after commit",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_covers_all_classes() {
        let cat = classify_catalog();
        for class in [
            CompensationClass::Sound,
            CompensationClass::Acceptable,
            CompensationClass::Failable,
            CompensationClass::Impossible,
        ] {
            assert!(
                cat.iter().any(|c| c.class == class),
                "catalogue misses {class}"
            );
        }
    }

    #[test]
    fn reversibility() {
        assert!(CompensationClass::Sound.reversible());
        assert!(CompensationClass::Failable.reversible());
        assert!(!CompensationClass::Impossible.reversible());
    }

    #[test]
    fn ordering_reflects_strength() {
        assert!(CompensationClass::Sound < CompensationClass::Acceptable);
        assert!(CompensationClass::Acceptable < CompensationClass::Failable);
        assert!(CompensationClass::Failable < CompensationClass::Impossible);
    }

    #[test]
    fn display() {
        assert_eq!(CompensationClass::Acceptable.to_string(), "acceptable");
    }
}
