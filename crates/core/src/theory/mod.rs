//! The formal model of §3: augmented states, histories, commutativity, and
//! soundness of compensation (after Korth, Levy & Silberschatz \[8\]).
//!
//! The *augmented state* merges the state of all resources an agent accesses
//! with the agent's private data space, so a step — and its compensation —
//! can be described as a sequence of operations on one state space.
//!
//! These tools are executable: histories are applied to sampled states to
//! check equivalence (`X ≡ Y` over a sample), commutativity, and the
//! soundness criterion `X(S) = Y(S)` with `X` the history of `T`, `CT` and
//! `dep(T)` and `Y` the history of `dep(T)` alone.

mod classify;
mod history;
mod ops;
mod soundness;
mod state;

pub use classify::{classify_catalog, ClassifiedOp, CompensationClass};
pub use history::{History, Operation};
pub use ops::{AddOp, CondTransferOp, ReadDecideOp, SetOp, WithdrawOp};
pub use soundness::{commute, compensates_to_identity, equivalent, is_sound, sample_states};
pub use state::AugState;
