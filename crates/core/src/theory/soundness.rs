//! Executable checks for history equivalence, commutativity, and soundness
//! (§3.1–3.2).
//!
//! True equivalence `X ≡ Y` quantifies over *all* states; these checks
//! sample a caller-supplied (or generated) state family, so a `true` result
//! is evidence, not proof — while `false` is a definite counterexample.
//! That is exactly how the theory is used in the test suite: the paper's
//! positive examples pass over wide samples, and its counterexamples are
//! caught.

use std::rc::Rc;

use mar_wire::Value;

use crate::theory::history::{History, Operation};
use crate::theory::state::AugState;

/// Checks `X(S) = Y(S)` for every sampled state.
pub fn equivalent(x: &History, y: &History, samples: &[AugState]) -> bool {
    samples
        .iter()
        .all(|s| x.apply(s).semantically_eq(&y.apply(s)))
}

/// Checks whether two operations commute (`f•g ≡ g•f`) over the samples.
pub fn commute(f: &Rc<dyn Operation>, g: &Rc<dyn Operation>, samples: &[AugState]) -> bool {
    let fg = History::of([f.clone(), g.clone()]);
    let gf = History::of([g.clone(), f.clone()]);
    equivalent(&fg, &gf, samples)
}

/// The soundness criterion of \[8\]: with `X` the history `T • dep(T) • CT`
/// and `Y = dep(T)`, the history is *sound* iff `X(S) = Y(S)` — the outcome
/// of the dependent transactions is as if `T` never ran.
pub fn is_sound(t: &History, ct: &History, dep: &History, samples: &[AugState]) -> bool {
    let x = t.then(dep).then(ct);
    equivalent(&x, dep, samples)
}

/// Checks `T • CT ≡ I` (implied by soundness; §3.2 note).
pub fn compensates_to_identity(t: &History, ct: &History, samples: &[AugState]) -> bool {
    equivalent(&t.then(ct), &History::identity(), samples)
}

/// Generates a family of sample states over the given entity names with
/// deterministic, spread-out integer values (including negatives and zero).
pub fn sample_states(entities: &[&str], count: usize) -> Vec<AugState> {
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let mut s = AugState::new();
        for (j, name) in entities.iter().enumerate() {
            // A deterministic, irregular spread: primes keep values from
            // accidentally aligning across entities.
            let v = (i as i64 * 31 + j as i64 * 17) % 97 - 20;
            s.set(*name, Value::from(v));
        }
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory::ops::{AddOp, ReadDecideOp, WithdrawOp};

    fn rc<T: Operation + 'static>(op: T) -> Rc<dyn Operation> {
        Rc::new(op)
    }

    #[test]
    fn deposit_withdraw_commute_with_overdraft() {
        // §3.2: "If the account may be overdrawn, these two operations
        // commute."
        let samples = sample_states(&["acct"], 50);
        let dep = rc(AddOp::new("acct", 20));
        let wdr = rc(AddOp::new("acct", -8));
        assert!(commute(&dep, &wdr, &samples));
    }

    #[test]
    fn conditional_reader_breaks_commutativity() {
        // §3.2: a transaction using the balance to decide ("if I have
        // enough money …") does not commute with deposit/withdraw.
        let samples = sample_states(&["acct", "flag"], 50);
        let dep = rc(AddOp::new("acct", 20));
        let decide = rc(ReadDecideOp::new("acct", 10, "flag"));
        assert!(!commute(&dep, &decide, &samples));
    }

    #[test]
    fn overdraft_bank_history_is_sound() {
        let samples = sample_states(&["acct"], 50);
        let t = History::of([rc(AddOp::new("acct", 20))]);
        let ct = History::of([rc(AddOp::new("acct", -20))]);
        let dep = History::of([rc(AddOp::new("acct", 5)), rc(AddOp::new("acct", -3))]);
        assert!(is_sound(&t, &ct, &dep, &samples));
        assert!(compensates_to_identity(&t, &ct, &samples));
    }

    #[test]
    fn dependent_reader_makes_history_unsound() {
        let samples = sample_states(&["acct", "flag"], 50);
        let t = History::of([rc(AddOp::new("acct", 20))]);
        let ct = History::of([rc(AddOp::new("acct", -20))]);
        let dep = History::of([rc(ReadDecideOp::new("acct", 10, "flag"))]);
        // dep saw the deposited money; compensating T cannot undo the
        // decision — the history is not sound.
        assert!(!is_sound(&t, &ct, &dep, &samples));
    }

    #[test]
    fn no_overdraft_compensation_is_not_identity() {
        // Deposit then compensating-withdraw on a no-overdraft account:
        // if a dependent withdrawal drained the account first, the
        // compensation cannot run — T•CT is not the identity over all
        // interleavings. Here we show the direct failure case: start below
        // zero is impossible, but a dependent withdrawal in between breaks
        // the chain.
        let samples = sample_states(&["acct"], 50);
        let t = History::of([rc(AddOp::new("acct", 20))]);
        let ct = History::of([rc(WithdrawOp::new("acct", 20))]);
        let dep = History::of([rc(WithdrawOp::new("acct", 15))]);
        // T deposits 20, dep withdraws 15, CT tries to withdraw 20 and
        // fails whenever fewer than 20 remain → unsound.
        assert!(!is_sound(&t, &ct, &dep, &samples));
    }

    #[test]
    fn identity_is_equivalent_to_itself() {
        let samples = sample_states(&["x"], 10);
        assert!(equivalent(
            &History::identity(),
            &History::identity(),
            &samples
        ));
    }

    #[test]
    fn sample_states_are_deterministic_and_varied() {
        let a = sample_states(&["x", "y"], 20);
        let b = sample_states(&["x", "y"], 20);
        assert_eq!(a.len(), 20);
        for (s1, s2) in a.iter().zip(&b) {
            assert!(s1.semantically_eq(s2));
        }
        // Values vary across samples.
        let distinct: std::collections::BTreeSet<i64> = a.iter().map(|s| s.get_i64("x")).collect();
        assert!(distinct.len() > 5);
    }
}
