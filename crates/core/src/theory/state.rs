//! The augmented state space.

use std::collections::BTreeMap;
use std::fmt;

use mar_wire::Value;
use serde::{Deserialize, Serialize};

/// An augmented state: named entities covering both resource state and the
/// agent's private data space (§3.1).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AugState {
    entities: BTreeMap<String, Value>,
}

impl AugState {
    /// The empty state.
    pub fn new() -> Self {
        AugState::default()
    }

    /// Builds a state from `(name, value)` pairs.
    pub fn from_pairs<K: Into<String>, I: IntoIterator<Item = (K, Value)>>(pairs: I) -> Self {
        AugState {
            entities: pairs.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        }
    }

    /// Reads an entity.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entities.get(name)
    }

    /// Reads an entity as an integer, defaulting to 0 — convenient for
    /// account-style entities.
    pub fn get_i64(&self, name: &str) -> i64 {
        self.entities.get(name).and_then(Value::as_i64).unwrap_or(0)
    }

    /// Writes an entity.
    pub fn set(&mut self, name: impl Into<String>, value: Value) {
        self.entities.insert(name.into(), value);
    }

    /// Removes an entity.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.entities.remove(name)
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True if no entities exist.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Structural equality up to numeric coercion (`I64(5) == U64(5)`).
    pub fn semantically_eq(&self, other: &AugState) -> bool {
        self.entities.len() == other.entities.len()
            && self
                .entities
                .iter()
                .zip(&other.entities)
                .all(|((ka, va), (kb, vb))| ka == kb && va.semantically_eq(vb))
    }
}

impl fmt::Display for AugState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (k, v)) in self.entities.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let mut s = AugState::from_pairs([("acct", Value::from(100i64))]);
        assert_eq!(s.get_i64("acct"), 100);
        assert_eq!(s.get_i64("missing"), 0);
        s.set("acct", Value::from(50i64));
        assert_eq!(s.get_i64("acct"), 50);
        assert_eq!(s.len(), 1);
        s.remove("acct");
        assert!(s.is_empty());
    }

    #[test]
    fn semantic_equality() {
        let a = AugState::from_pairs([("x", Value::I64(5))]);
        let b = AugState::from_pairs([("x", Value::U64(5))]);
        assert!(a.semantically_eq(&b));
        let c = AugState::from_pairs([("x", Value::I64(6))]);
        assert!(!a.semantically_eq(&c));
    }

    #[test]
    fn display() {
        let s = AugState::from_pairs([("a", Value::from(1i64))]);
        assert_eq!(s.to_string(), "{a=1}");
    }
}
