//! A small library of concrete operations used to exercise the theory —
//! the paper's running examples (§3.2): bank deposits/withdrawals with and
//! without overdraft, and a conditional transaction whose behaviour depends
//! on what it reads.

use mar_wire::Value;

use crate::theory::history::Operation;
use crate::theory::state::AugState;

/// Unconditionally sets an entity.
#[derive(Debug, Clone)]
pub struct SetOp {
    key: String,
    value: Value,
}

impl SetOp {
    /// Creates the operation.
    pub fn new(key: impl Into<String>, value: Value) -> Self {
        SetOp {
            key: key.into(),
            value,
        }
    }
}

impl Operation for SetOp {
    fn apply(&self, state: &mut AugState) {
        state.set(self.key.clone(), self.value.clone());
    }
    fn name(&self) -> String {
        format!("set({},{})", self.key, self.value)
    }
}

/// Adds a (possibly negative) amount to an integer entity — `deposit(x)` /
/// `withdraw(x)` on an account that *may* be overdrawn. These commute.
#[derive(Debug, Clone)]
pub struct AddOp {
    key: String,
    delta: i64,
}

impl AddOp {
    /// Creates the operation.
    pub fn new(key: impl Into<String>, delta: i64) -> Self {
        AddOp {
            key: key.into(),
            delta,
        }
    }
}

impl Operation for AddOp {
    fn apply(&self, state: &mut AugState) {
        let cur = state.get_i64(&self.key);
        state.set(self.key.clone(), Value::from(cur + self.delta));
    }
    fn name(&self) -> String {
        format!("add({},{})", self.key, self.delta)
    }
}

/// `withdraw(x)` on an account that must **not** be overdrawn: the operation
/// only applies when funds suffice. Such withdrawals make compensation
/// *failable* (§3.2: compensating a deposit may be impossible when another
/// transaction already withdrew the money).
#[derive(Debug, Clone)]
pub struct WithdrawOp {
    key: String,
    amount: i64,
}

impl WithdrawOp {
    /// Creates the operation.
    pub fn new(key: impl Into<String>, amount: i64) -> Self {
        WithdrawOp {
            key: key.into(),
            amount,
        }
    }
}

impl Operation for WithdrawOp {
    fn apply(&self, state: &mut AugState) {
        let cur = state.get_i64(&self.key);
        if cur >= self.amount {
            state.set(self.key.clone(), Value::from(cur - self.amount));
        }
        // Insufficient funds: the operation has no effect (the real system
        // would reject the transaction; for history algebra the no-op models
        // the failed branch).
    }
    fn name(&self) -> String {
        format!("withdraw({},{})", self.key, self.amount)
    }
}

/// The paper's soundness-breaking example: a transaction that reads the
/// balance to decide what to do ("if I have enough money, then …"). It does
/// not commute with deposits/withdrawals.
#[derive(Debug, Clone)]
pub struct ReadDecideOp {
    account: String,
    threshold: i64,
    flag: String,
}

impl ReadDecideOp {
    /// Creates the operation: sets `flag` to whether `account >= threshold`.
    pub fn new(account: impl Into<String>, threshold: i64, flag: impl Into<String>) -> Self {
        ReadDecideOp {
            account: account.into(),
            threshold,
            flag: flag.into(),
        }
    }
}

impl Operation for ReadDecideOp {
    fn apply(&self, state: &mut AugState) {
        let enough = state.get_i64(&self.account) >= self.threshold;
        state.set(self.flag.clone(), Value::Bool(enough));
    }
    fn name(&self) -> String {
        format!("decide({}>={})", self.account, self.threshold)
    }
}

/// Conditional transfer: moves `amount` from one account to another when
/// funds suffice, else does nothing. Used for dependency scenarios.
#[derive(Debug, Clone)]
pub struct CondTransferOp {
    from: String,
    to: String,
    amount: i64,
}

impl CondTransferOp {
    /// Creates the operation.
    pub fn new(from: impl Into<String>, to: impl Into<String>, amount: i64) -> Self {
        CondTransferOp {
            from: from.into(),
            to: to.into(),
            amount,
        }
    }
}

impl Operation for CondTransferOp {
    fn apply(&self, state: &mut AugState) {
        let have = state.get_i64(&self.from);
        if have >= self.amount {
            state.set(self.from.clone(), Value::from(have - self.amount));
            let dst = state.get_i64(&self.to);
            state.set(self.to.clone(), Value::from(dst + self.amount));
        }
    }
    fn name(&self) -> String {
        format!("xfer({}→{},{})", self.from, self.to, self.amount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates() {
        let mut s = AugState::new();
        AddOp::new("a", 5).apply(&mut s);
        AddOp::new("a", -2).apply(&mut s);
        assert_eq!(s.get_i64("a"), 3);
    }

    #[test]
    fn withdraw_respects_balance() {
        let mut s = AugState::from_pairs([("a", Value::from(10i64))]);
        WithdrawOp::new("a", 4).apply(&mut s);
        assert_eq!(s.get_i64("a"), 6);
        WithdrawOp::new("a", 100).apply(&mut s);
        assert_eq!(s.get_i64("a"), 6, "insufficient funds: no effect");
    }

    #[test]
    fn read_decide_reads_state() {
        let mut s = AugState::from_pairs([("a", Value::from(10i64))]);
        ReadDecideOp::new("a", 5, "ok").apply(&mut s);
        assert_eq!(s.get("ok").and_then(Value::as_bool), Some(true));
        s.set("a", Value::from(1i64));
        ReadDecideOp::new("a", 5, "ok").apply(&mut s);
        assert_eq!(s.get("ok").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn cond_transfer_moves_funds_or_not() {
        let mut s = AugState::from_pairs([("a", Value::from(10i64)), ("b", Value::from(0i64))]);
        CondTransferOp::new("a", "b", 7).apply(&mut s);
        assert_eq!((s.get_i64("a"), s.get_i64("b")), (3, 7));
        CondTransferOp::new("a", "b", 7).apply(&mut s);
        assert_eq!((s.get_i64("a"), s.get_i64("b")), (3, 7));
    }
}
