//! # mar-txn
//!
//! The transactional substrate under the mobile-agent platform: no-wait
//! two-phase locking, before-image undo, transactional key-value stores,
//! resource managers, and presumed-abort two-phase commit.
//!
//! The paper executes every agent step inside a *step transaction* spanning
//! the executing node's resources and the next node's stable agent input
//! queue (§2), and every compensation inside a *compensation transaction*
//! with the same guarantees (§4.3). This crate supplies exactly those
//! mechanisms:
//!
//! * [`TxStore`] — in-place updates + [`UndoLog`] + [`LockTable`] give
//!   atomic, isolated local branches ("changes … are undone automatically").
//! * [`ResourceManager`] / [`RmRegistry`] — named transactional resources
//!   invoked from steps and compensating operations.
//! * [`Coordinator`] / [`Participant`] — presumed-abort 2PC state machines
//!   driven by a hosting service; see the module docs of [`mod@twopc`] for
//!   the crash-atomicity contract.
//!
//! Locking is deliberately *no-wait* (conflicts abort instead of blocking):
//! deadlock-free, deterministic under simulation, and still serializable —
//! the abort-and-retry loop is exactly the paper's "abort and restart the
//! step transaction".

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod id;
mod lock;
mod msg;
mod rm;
mod store;
pub mod twopc;
mod undo;

pub use error::TxnError;
pub use id::{TxnId, TxnIdGen};
pub use lock::{LockMode, LockTable};
pub use msg::{RemoteWork, TxEnvelope, TxMsg};
pub use rm::{OpCtx, ResourceManager, RmRegistry};
pub use store::TxStore;
pub use twopc::{Action, Coordinator, Participant, PreparedEntry};
pub use undo::{UndoLog, UndoRecord};
