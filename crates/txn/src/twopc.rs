//! Presumed-abort two-phase commit, as pure state machines.
//!
//! The step transaction of the paper spans at most two nodes: the node
//! executing the step (coordinator, which also holds all resource branches
//! locally) and the next node's agent input queue (one remote participant).
//! The optimized rollback adds a second pattern: a compensation transaction
//! whose remote participant executes a resource-compensation-entry list.
//! Both reduce to the same protocol, implemented here for any number of
//! participants.
//!
//! # Host contract
//!
//! [`Coordinator`] and [`Participant`] return [`Action`] lists; the hosting
//! service must execute them **in order, within the same event handler** —
//! handlers are atomic with respect to crashes in the simulator, which gives
//! the usual "log record + state change forced together" durability
//! atomicity of a real write-ahead log:
//!
//! * `PersistDecision` must write the decision record *and* the local
//!   branch's committed state in the same handler.
//! * `ApplyWork`/`DiscardWork` + `MarkDone` must likewise be handled
//!   together.
//!
//! After a crash, the host reconstructs both machines from stable storage
//! ([`Coordinator::recover`], [`Participant::recover`]) and kicks their
//! retry methods on a timer.

use std::collections::{BTreeMap, BTreeSet};

use mar_simnet::NodeId;
use serde::{Deserialize, Serialize};

use crate::id::TxnId;
use crate::msg::RemoteWork;

/// Effects the host must carry out, in order. See the module docs for the
/// atomicity contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Durably record a *commit* decision with its participant set, together
    /// with the local branch's committed state (coordinator side).
    PersistDecision {
        /// The transaction.
        txn: TxnId,
        /// Participants that still need the decision.
        participants: Vec<NodeId>,
    },
    /// Remove the decision record (all participants acknowledged).
    ForgetDecision {
        /// The transaction.
        txn: TxnId,
    },
    /// Send a `Prepare` carrying `work` to a participant.
    SendPrepare {
        /// Destination participant.
        to: NodeId,
        /// The transaction.
        txn: TxnId,
        /// Work to prepare remotely.
        work: RemoteWork,
    },
    /// Send the decision to a participant.
    SendDecision {
        /// Destination participant.
        to: NodeId,
        /// The transaction.
        txn: TxnId,
        /// Commit or abort.
        commit: bool,
    },
    /// Commit the local branch (resources, queue ops) now.
    CommitLocal {
        /// The transaction.
        txn: TxnId,
    },
    /// Abort the local branch now.
    AbortLocal {
        /// The transaction.
        txn: TxnId,
    },
    /// Terminal: the transaction's fate is settled at this coordinator.
    Resolved {
        /// The transaction.
        txn: TxnId,
        /// Final outcome.
        committed: bool,
    },
    /// Durably store prepared work (participant side).
    PersistPrepared {
        /// The transaction.
        txn: TxnId,
        /// Coordinator to query on recovery.
        coordinator: NodeId,
        /// The prepared work.
        work: RemoteWork,
    },
    /// Send a vote to the coordinator.
    SendVote {
        /// Destination coordinator.
        to: NodeId,
        /// The transaction.
        txn: TxnId,
        /// `true` = prepared.
        ok: bool,
    },
    /// Apply previously prepared work (the decision was commit).
    ApplyWork {
        /// The transaction.
        txn: TxnId,
        /// The work to apply.
        work: RemoteWork,
    },
    /// Discard previously prepared work (the decision was abort).
    DiscardWork {
        /// The transaction.
        txn: TxnId,
    },
    /// Durably replace the prepared record with a "done" marker, so stale
    /// retransmissions can never re-apply the work.
    MarkDone {
        /// The transaction.
        txn: TxnId,
    },
    /// Acknowledge the decision to the coordinator.
    SendAck {
        /// Destination coordinator.
        to: NodeId,
        /// The transaction.
        txn: TxnId,
    },
    /// Ask the coordinator for the outcome of an in-doubt transaction.
    SendQuery {
        /// Destination coordinator.
        to: NodeId,
        /// The transaction.
        txn: TxnId,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum CoState {
    Preparing,
    Committing,
}

#[derive(Debug, Clone)]
struct CoTxn {
    state: CoState,
    work: Vec<(NodeId, RemoteWork)>,
    votes: BTreeSet<NodeId>,
    acks: BTreeSet<NodeId>,
}

/// Coordinator side of presumed-abort 2PC (volatile; rebuilt on recovery).
#[derive(Debug, Default)]
pub struct Coordinator {
    txns: BTreeMap<TxnId, CoTxn>,
}

impl Coordinator {
    /// Creates an empty coordinator.
    pub fn new() -> Self {
        Coordinator::default()
    }

    /// Starts committing a transaction whose local branch is ready.
    ///
    /// With no remote branches the transaction commits immediately; with
    /// branches, prepares go out first.
    pub fn commit_request(
        &mut self,
        txn: TxnId,
        branches: Vec<(NodeId, RemoteWork)>,
    ) -> Vec<Action> {
        if branches.is_empty() {
            return vec![
                Action::CommitLocal { txn },
                Action::Resolved {
                    txn,
                    committed: true,
                },
            ];
        }
        let actions = branches
            .iter()
            .map(|(to, work)| Action::SendPrepare {
                to: *to,
                txn,
                work: work.clone(),
            })
            .collect();
        self.txns.insert(
            txn,
            CoTxn {
                state: CoState::Preparing,
                work: branches,
                votes: BTreeSet::new(),
                acks: BTreeSet::new(),
            },
        );
        actions
    }

    /// Aborts a transaction this coordinator started (e.g. local failure
    /// while waiting for votes).
    pub fn abort_request(&mut self, txn: TxnId) -> Vec<Action> {
        let mut actions = vec![Action::AbortLocal { txn }];
        if let Some(co) = self.txns.remove(&txn) {
            for (to, _) in &co.work {
                actions.push(Action::SendDecision {
                    to: *to,
                    txn,
                    commit: false,
                });
            }
        }
        actions.push(Action::Resolved {
            txn,
            committed: false,
        });
        actions
    }

    /// Replaces the work shipped to one branch and re-sends its `Prepare`.
    ///
    /// Used when a participant cannot interpret the original payload (e.g.
    /// it carried a cache reference the receiver could not resolve) and the
    /// coordinator must retransmit a self-contained version. Only valid
    /// while the transaction is still preparing and the branch has not
    /// voted; otherwise it is a stale report and nothing happens. The
    /// stored work is updated so later retries also carry the replacement.
    pub fn replace_work(&mut self, txn: TxnId, to: NodeId, work: RemoteWork) -> Vec<Action> {
        let Some(co) = self.txns.get_mut(&txn) else {
            return Vec::new();
        };
        if co.state != CoState::Preparing || co.votes.contains(&to) {
            return Vec::new();
        }
        let Some(slot) = co.work.iter_mut().find(|(n, _)| *n == to) else {
            return Vec::new();
        };
        slot.1 = work.clone();
        vec![Action::SendPrepare { to, txn, work }]
    }

    /// The work currently stored for one branch of an in-flight transaction.
    pub fn branch_work(&self, txn: TxnId, to: NodeId) -> Option<&RemoteWork> {
        self.txns
            .get(&txn)?
            .work
            .iter()
            .find(|(n, _)| *n == to)
            .map(|(_, w)| w)
    }

    /// Handles a vote from a participant.
    pub fn on_vote(&mut self, txn: TxnId, from: NodeId, ok: bool) -> Vec<Action> {
        let Some(co) = self.txns.get_mut(&txn) else {
            return Vec::new(); // stale vote for a settled transaction
        };
        if co.state != CoState::Preparing {
            return Vec::new();
        }
        if !ok {
            return self.abort_request(txn);
        }
        co.votes.insert(from);
        let participants: Vec<NodeId> = co.work.iter().map(|(n, _)| *n).collect();
        if participants.iter().any(|n| !co.votes.contains(n)) {
            return Vec::new(); // still waiting
        }
        co.state = CoState::Committing;
        let mut actions = vec![
            Action::PersistDecision {
                txn,
                participants: participants.clone(),
            },
            Action::CommitLocal { txn },
        ];
        for to in participants {
            actions.push(Action::SendDecision {
                to,
                txn,
                commit: true,
            });
        }
        actions
    }

    /// Handles a decision acknowledgement.
    pub fn on_ack(&mut self, txn: TxnId, from: NodeId) -> Vec<Action> {
        let Some(co) = self.txns.get_mut(&txn) else {
            return Vec::new();
        };
        if co.state != CoState::Committing {
            return Vec::new();
        }
        co.acks.insert(from);
        let all_acked = co.work.iter().all(|(n, _)| co.acks.contains(n));
        if !all_acked {
            return Vec::new();
        }
        self.txns.remove(&txn);
        vec![
            Action::ForgetDecision { txn },
            Action::Resolved {
                txn,
                committed: true,
            },
        ]
    }

    /// Answers an outcome query.
    ///
    /// * Unknown transaction → abort (presumed abort: a forgotten
    ///   transaction can only have been aborted, or fully acknowledged).
    /// * Committing → commit.
    /// * Still preparing → **no reply**: answering "abort" here would let a
    ///   prepared participant discard work the coordinator may yet commit.
    ///   The coordinator's own retry loop re-sends prepares until the vote
    ///   arrives (or the host aborts the transaction).
    pub fn on_query(&mut self, txn: TxnId, from: NodeId) -> Vec<Action> {
        match self.txns.get(&txn).map(|co| &co.state) {
            Some(CoState::Committing) => vec![Action::SendDecision {
                to: from,
                txn,
                commit: true,
            }],
            Some(CoState::Preparing) => Vec::new(),
            None => vec![Action::SendDecision {
                to: from,
                txn,
                commit: false,
            }],
        }
    }

    /// Re-sends whatever the in-flight transactions are waiting on. The host
    /// calls this on a periodic timer.
    pub fn on_retry(&mut self) -> Vec<Action> {
        let mut actions = Vec::new();
        for (txn, co) in &self.txns {
            match co.state {
                CoState::Preparing => {
                    for (to, work) in &co.work {
                        if !co.votes.contains(to) {
                            actions.push(Action::SendPrepare {
                                to: *to,
                                txn: *txn,
                                work: work.clone(),
                            });
                        }
                    }
                }
                CoState::Committing => {
                    for (to, _) in &co.work {
                        if !co.acks.contains(to) {
                            actions.push(Action::SendDecision {
                                to: *to,
                                txn: *txn,
                                commit: true,
                            });
                        }
                    }
                }
            }
        }
        actions
    }

    /// Rebuilds committing transactions from persisted decision records
    /// after a crash, returning decision re-sends.
    ///
    /// Transactions that were still *preparing* at crash time left no
    /// record; their participants will query and learn "abort" by
    /// presumption.
    pub fn recover(&mut self, decisions: Vec<(TxnId, Vec<NodeId>)>) -> Vec<Action> {
        let mut actions = Vec::new();
        for (txn, participants) in decisions {
            let work = participants
                .iter()
                .map(|n| (*n, RemoteWork::new("recovered", Vec::new())))
                .collect();
            self.txns.insert(
                txn,
                CoTxn {
                    state: CoState::Committing,
                    work,
                    votes: BTreeSet::new(),
                    acks: BTreeSet::new(),
                },
            );
            for to in participants {
                actions.push(Action::SendDecision {
                    to,
                    txn,
                    commit: true,
                });
            }
        }
        actions
    }

    /// Transactions still in flight (for host timers / tests).
    pub fn in_flight(&self) -> usize {
        self.txns.len()
    }
}

/// Durable record of prepared work on a participant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreparedEntry {
    /// Coordinator to query for the outcome.
    pub coordinator: NodeId,
    /// The prepared work.
    pub work: RemoteWork,
}

/// Participant side of presumed-abort 2PC.
#[derive(Debug, Default)]
pub struct Participant {
    prepared: BTreeMap<TxnId, PreparedEntry>,
    done: BTreeSet<TxnId>,
}

impl Participant {
    /// Creates an empty participant.
    pub fn new() -> Self {
        Participant::default()
    }

    /// Handles a `Prepare`. `accept` is the host's verdict on whether the
    /// work is executable (e.g. the queue exists).
    pub fn on_prepare(
        &mut self,
        txn: TxnId,
        coordinator: NodeId,
        work: RemoteWork,
        accept: bool,
    ) -> Vec<Action> {
        if self.done.contains(&txn) {
            // Stale retransmission of an already-settled transaction.
            return vec![Action::SendVote {
                to: coordinator,
                txn,
                ok: true,
            }];
        }
        if self.prepared.contains_key(&txn) {
            return vec![Action::SendVote {
                to: coordinator,
                txn,
                ok: true,
            }];
        }
        if !accept {
            return vec![Action::SendVote {
                to: coordinator,
                txn,
                ok: false,
            }];
        }
        let entry = PreparedEntry { coordinator, work };
        self.prepared.insert(txn, entry.clone());
        vec![
            Action::PersistPrepared {
                txn,
                coordinator,
                work: entry.work,
            },
            Action::SendVote {
                to: coordinator,
                txn,
                ok: true,
            },
        ]
    }

    /// Handles a decision from `from` (normally the coordinator).
    pub fn on_decision(&mut self, txn: TxnId, commit: bool, from: NodeId) -> Vec<Action> {
        match self.prepared.remove(&txn) {
            Some(entry) => {
                self.done.insert(txn);
                let mut actions = Vec::new();
                if commit {
                    actions.push(Action::ApplyWork {
                        txn,
                        work: entry.work,
                    });
                } else {
                    actions.push(Action::DiscardWork { txn });
                }
                actions.push(Action::MarkDone { txn });
                actions.push(Action::SendAck {
                    to: entry.coordinator,
                    txn,
                });
                actions
            }
            None => {
                // Duplicate decision (our ack was lost) — ack idempotently.
                vec![Action::SendAck { to: from, txn }]
            }
        }
    }

    /// Queries the coordinator for every in-doubt transaction. The host
    /// calls this on a periodic timer and after recovery.
    pub fn on_retry(&self) -> Vec<Action> {
        self.prepared
            .iter()
            .map(|(txn, e)| Action::SendQuery {
                to: e.coordinator,
                txn: *txn,
            })
            .collect()
    }

    /// Rebuilds state from stable storage after a crash.
    pub fn recover(&mut self, prepared: Vec<(TxnId, PreparedEntry)>, done: Vec<TxnId>) {
        self.prepared = prepared.into_iter().collect();
        self.done = done.into_iter().collect();
    }

    /// Number of in-doubt transactions.
    pub fn in_doubt(&self) -> usize {
        self.prepared.len()
    }

    /// Whether `txn` already settled here.
    pub fn is_done(&self, txn: TxnId) -> bool {
        self.done.contains(&txn)
    }

    /// Whether this participant already holds or settled `txn`'s branch —
    /// a retransmitted `Prepare` for such a transaction must not be
    /// validated (= tentatively executed) again by the host;
    /// [`Self::on_prepare`] will simply re-send the vote.
    pub fn is_known(&self, txn: TxnId) -> bool {
        self.done.contains(&txn) || self.prepared.contains_key(&txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    fn work() -> RemoteWork {
        RemoteWork::new("enqueue", vec![1, 2])
    }

    #[test]
    fn local_only_commit_is_immediate() {
        let mut co = Coordinator::new();
        let actions = co.commit_request(txn(1), Vec::new());
        assert_eq!(
            actions,
            vec![
                Action::CommitLocal { txn: txn(1) },
                Action::Resolved {
                    txn: txn(1),
                    committed: true
                }
            ]
        );
        assert_eq!(co.in_flight(), 0);
    }

    #[test]
    fn happy_path_two_phase() {
        let mut co = Coordinator::new();
        let mut pa = Participant::new();
        let p = NodeId(2);

        let a1 = co.commit_request(txn(1), vec![(p, work())]);
        assert!(matches!(a1[0], Action::SendPrepare { to, .. } if to == p));

        let a2 = pa.on_prepare(txn(1), NodeId(0), work(), true);
        assert!(matches!(a2[0], Action::PersistPrepared { .. }));
        assert!(matches!(a2[1], Action::SendVote { ok: true, .. }));

        let a3 = co.on_vote(txn(1), p, true);
        assert_eq!(
            a3[0],
            Action::PersistDecision {
                txn: txn(1),
                participants: vec![p]
            }
        );
        assert_eq!(a3[1], Action::CommitLocal { txn: txn(1) });
        assert!(matches!(a3[2], Action::SendDecision { commit: true, .. }));

        let a4 = pa.on_decision(txn(1), true, NodeId(0));
        assert!(matches!(a4[0], Action::ApplyWork { .. }));
        assert!(matches!(a4[1], Action::MarkDone { .. }));
        assert!(matches!(a4[2], Action::SendAck { .. }));

        let a5 = co.on_ack(txn(1), p);
        assert_eq!(a5[0], Action::ForgetDecision { txn: txn(1) });
        assert!(matches!(
            a5[1],
            Action::Resolved {
                committed: true,
                ..
            }
        ));
        assert_eq!(co.in_flight(), 0);
        assert_eq!(pa.in_doubt(), 0);
    }

    #[test]
    fn replace_work_resends_and_sticks_for_retries() {
        let mut co = Coordinator::new();
        let p1 = NodeId(2);
        let p2 = NodeId(3);
        co.commit_request(txn(1), vec![(p1, work()), (p2, work())]);

        let fat = RemoteWork::new("enqueue", vec![9, 9, 9]);
        let a = co.replace_work(txn(1), p1, fat.clone());
        assert_eq!(
            a,
            vec![Action::SendPrepare {
                to: p1,
                txn: txn(1),
                work: fat.clone(),
            }]
        );
        assert_eq!(co.branch_work(txn(1), p1), Some(&fat));
        assert_eq!(co.branch_work(txn(1), p2), Some(&work()));

        // Retries keep shipping the replacement, not the original payload.
        let retries = co.on_retry();
        assert!(retries.iter().any(
            |a| matches!(a, Action::SendPrepare { to, work: w, .. } if *to == p1 && *w == fat)
        ));

        // A branch that already voted can no longer be replaced.
        co.on_vote(txn(1), p2, true);
        assert_eq!(co.replace_work(txn(1), p2, fat.clone()), Vec::new());

        // Stale reports for settled transactions are ignored.
        co.on_vote(txn(1), p1, true);
        assert_eq!(co.replace_work(txn(1), p1, fat), Vec::new());
    }

    #[test]
    fn refused_vote_aborts() {
        let mut co = Coordinator::new();
        let p = NodeId(2);
        co.commit_request(txn(1), vec![(p, work())]);
        let actions = co.on_vote(txn(1), p, false);
        assert_eq!(actions[0], Action::AbortLocal { txn: txn(1) });
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::SendDecision { commit: false, .. })));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Resolved {
                committed: false,
                ..
            }
        )));
    }

    #[test]
    fn decision_on_unprepared_participant_just_acks() {
        let mut pa = Participant::new();
        let actions = pa.on_decision(txn(9), true, NodeId(4));
        assert_eq!(
            actions,
            vec![Action::SendAck {
                to: NodeId(4),
                txn: txn(9)
            }]
        );
    }

    #[test]
    fn stale_prepare_after_done_cannot_reapply() {
        let mut pa = Participant::new();
        pa.on_prepare(txn(1), NodeId(0), work(), true);
        pa.on_decision(txn(1), true, NodeId(0));
        assert!(pa.is_done(txn(1)));
        // A delayed duplicate Prepare must not re-prepare.
        let actions = pa.on_prepare(txn(1), NodeId(0), work(), true);
        assert_eq!(
            actions,
            vec![Action::SendVote {
                to: NodeId(0),
                txn: txn(1),
                ok: true
            }]
        );
        assert_eq!(pa.in_doubt(), 0);
    }

    #[test]
    fn query_of_unknown_txn_presumes_abort() {
        let mut co = Coordinator::new();
        let actions = co.on_query(txn(5), NodeId(3));
        assert_eq!(
            actions,
            vec![Action::SendDecision {
                to: NodeId(3),
                txn: txn(5),
                commit: false
            }]
        );
    }

    #[test]
    fn query_while_preparing_gets_no_answer() {
        let mut co = Coordinator::new();
        let p = NodeId(2);
        co.commit_request(txn(1), vec![(p, work())]);
        // The participant is in doubt, but the coordinator has not decided:
        // an "abort" reply here would contradict a later commit.
        assert!(co.on_query(txn(1), p).is_empty());
        // After the vote arrives the same query gets a commit.
        co.on_vote(txn(1), p, true);
        assert_eq!(
            co.on_query(txn(1), p),
            vec![Action::SendDecision {
                to: p,
                txn: txn(1),
                commit: true
            }]
        );
    }

    #[test]
    fn retry_resends_missing_pieces() {
        let mut co = Coordinator::new();
        let (p1, p2) = (NodeId(1), NodeId(2));
        co.commit_request(txn(1), vec![(p1, work()), (p2, work())]);
        co.on_vote(txn(1), p1, true);
        // Still preparing: only p2's prepare is re-sent.
        let retries = co.on_retry();
        assert_eq!(retries.len(), 1);
        assert!(matches!(retries[0], Action::SendPrepare { to, .. } if to == p2));

        co.on_vote(txn(1), p2, true);
        co.on_ack(txn(1), p1);
        let retries = co.on_retry();
        assert_eq!(retries.len(), 1);
        assert!(matches!(retries[0], Action::SendDecision { to, commit: true, .. } if to == p2));
    }

    #[test]
    fn coordinator_recovery_resends_commit_decisions() {
        let mut co = Coordinator::new();
        let actions = co.recover(vec![(txn(7), vec![NodeId(3)])]);
        assert_eq!(
            actions,
            vec![Action::SendDecision {
                to: NodeId(3),
                txn: txn(7),
                commit: true
            }]
        );
        // Ack completes it.
        let done = co.on_ack(txn(7), NodeId(3));
        assert!(done.contains(&Action::ForgetDecision { txn: txn(7) }));
    }

    #[test]
    fn participant_recovery_queries_coordinator() {
        let mut pa = Participant::new();
        pa.recover(
            vec![(
                txn(4),
                PreparedEntry {
                    coordinator: NodeId(9),
                    work: work(),
                },
            )],
            vec![txn(3)],
        );
        assert!(pa.is_done(txn(3)));
        let actions = pa.on_retry();
        assert_eq!(
            actions,
            vec![Action::SendQuery {
                to: NodeId(9),
                txn: txn(4)
            }]
        );
        // Presumed abort arrives.
        let a = pa.on_decision(txn(4), false, NodeId(9));
        assert!(matches!(a[0], Action::DiscardWork { .. }));
    }

    #[test]
    fn votes_from_strangers_do_not_commit() {
        let mut co = Coordinator::new();
        let p = NodeId(2);
        co.commit_request(txn(1), vec![(p, work())]);
        // A vote from a node that is not a participant must not trigger commit.
        let actions = co.on_vote(txn(1), NodeId(99), true);
        assert!(actions.is_empty());
        assert_eq!(co.in_flight(), 1);
    }
}
