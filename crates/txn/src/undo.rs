//! Before-image undo logs.
//!
//! Uncommitted changes are applied in place; the undo log remembers the
//! first before-image per key so an abort restores the exact prior state.
//! This is the "changes to resources during the step transaction are undone
//! automatically" machinery of the paper's §2.

use std::collections::BTreeSet;

/// One undo record: the value `key` had before the transaction first wrote
/// it (`None` = the key did not exist).
///
/// Undo logs are volatile by design: a node crash destroys them together
/// with the uncommitted in-place changes they would have reverted, because
/// committed state is only persisted at commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndoRecord {
    /// The written key.
    pub key: String,
    /// Value before the first write, or `None` if absent.
    pub before: Option<Vec<u8>>,
}

/// Undo log of a single transaction at a single resource manager.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UndoLog {
    records: Vec<UndoRecord>,
    /// Keys already recorded — only the *first* before-image matters.
    seen: BTreeSet<String>,
}

impl UndoLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        UndoLog::default()
    }

    /// Records the before-image for `key` unless one is already present.
    pub fn remember(&mut self, key: &str, before: Option<Vec<u8>>) {
        if !self.seen.insert(key.to_owned()) {
            return;
        }
        self.records.push(UndoRecord {
            key: key.to_owned(),
            before,
        });
    }

    /// Applies the undo records in reverse order through `restore`.
    ///
    /// `restore(key, None)` must delete the key; `restore(key, Some(v))`
    /// must write `v`.
    pub fn unwind<F: FnMut(&str, Option<&[u8]>)>(&self, mut restore: F) {
        for rec in self.records.iter().rev() {
            restore(&rec.key, rec.before.as_deref());
        }
    }

    /// Number of recorded before-images.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_first_before_image_kept() {
        let mut log = UndoLog::new();
        log.remember("a", Some(vec![1]));
        log.remember("a", Some(vec![2]));
        assert_eq!(log.len(), 1);
        let mut restored = Vec::new();
        log.unwind(|k, v| restored.push((k.to_owned(), v.map(<[u8]>::to_vec))));
        assert_eq!(restored, [("a".to_owned(), Some(vec![1]))]);
    }

    #[test]
    fn unwind_is_reverse_order() {
        let mut log = UndoLog::new();
        log.remember("a", None);
        log.remember("b", Some(vec![9]));
        let mut order = Vec::new();
        log.unwind(|k, _| order.push(k.to_owned()));
        assert_eq!(order, ["b", "a"]);
    }

    #[test]
    fn none_means_delete() {
        use std::collections::BTreeMap;
        let mut store: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        store.insert("x".into(), vec![5]);
        let mut log = UndoLog::new();
        log.remember("x", None); // key was absent before the txn
        log.unwind(|k, v| match v {
            Some(v) => {
                store.insert(k.to_owned(), v.to_vec());
            }
            None => {
                store.remove(k);
            }
        });
        assert!(store.is_empty());
    }

    #[test]
    fn empty_log() {
        let log = UndoLog::new();
        assert!(log.is_empty());
        let mut called = false;
        log.unwind(|_, _| called = true);
        assert!(!called);
    }
}
