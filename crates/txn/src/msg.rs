//! Wire messages of the distributed commit protocol.

use mar_simnet::NodeId;
use serde::{Deserialize, Serialize};

use crate::id::TxnId;

/// A unit of remote work prepared at a participant: the host interprets
/// `kind` (e.g. `"enqueue-agent"`, `"run-rce-list"`) and applies `payload`
/// when the transaction commits.
///
/// The payload is a [`mar_wire::Bytes`] buffer: work items routinely carry
/// whole serialized agent records, and the compact `TAG_BYTES` framing
/// hands them through prepare/persist/apply as single memcpys instead of
/// re-transcoding them byte by byte.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemoteWork {
    /// Host-interpreted discriminator.
    pub kind: String,
    /// Opaque encoded work description.
    pub payload: mar_wire::Bytes,
}

impl RemoteWork {
    /// Constructs a work item.
    pub fn new(kind: impl Into<String>, payload: impl Into<mar_wire::Bytes>) -> Self {
        RemoteWork {
            kind: kind.into(),
            payload: payload.into(),
        }
    }

    /// Size in bytes of the payload (for transfer metrics).
    pub fn size(&self) -> usize {
        self.kind.len() + self.payload.len()
    }
}

/// Messages exchanged between transaction coordinator and participants
/// (presumed-abort two-phase commit).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxMsg {
    /// Phase 1: ask a participant to durably prepare `work`.
    Prepare {
        /// The transaction.
        txn: TxnId,
        /// Work to prepare.
        work: RemoteWork,
    },
    /// Participant's vote.
    Vote {
        /// The transaction.
        txn: TxnId,
        /// `true` = prepared, `false` = refused.
        ok: bool,
    },
    /// Phase 2: the coordinator's decision.
    Decision {
        /// The transaction.
        txn: TxnId,
        /// `true` = commit, `false` = abort.
        commit: bool,
    },
    /// Participant confirms it applied/discarded the prepared work.
    Ack {
        /// The transaction.
        txn: TxnId,
    },
    /// Participant asks for the outcome after a timeout or recovery.
    /// Unknown transactions are answered with abort (presumed abort).
    Query {
        /// The transaction.
        txn: TxnId,
    },
}

impl TxMsg {
    /// The transaction this message belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            TxMsg::Prepare { txn, .. }
            | TxMsg::Vote { txn, .. }
            | TxMsg::Decision { txn, .. }
            | TxMsg::Ack { txn }
            | TxMsg::Query { txn } => *txn,
        }
    }
}

/// Envelope identifying the sender, since the protocol logic needs to know
/// which node a vote/ack came from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxEnvelope {
    /// The sending node.
    pub from: NodeId,
    /// The protocol message.
    pub msg: TxMsg,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_roundtrip_on_wire() {
        let msgs = vec![
            TxMsg::Prepare {
                txn: TxnId::new(NodeId(1), 2),
                work: RemoteWork::new("enqueue", vec![1, 2, 3]),
            },
            TxMsg::Vote {
                txn: TxnId::new(NodeId(1), 2),
                ok: true,
            },
            TxMsg::Decision {
                txn: TxnId::new(NodeId(1), 2),
                commit: false,
            },
            TxMsg::Ack {
                txn: TxnId::new(NodeId(1), 2),
            },
            TxMsg::Query {
                txn: TxnId::new(NodeId(1), 2),
            },
        ];
        for m in msgs {
            let env = TxEnvelope {
                from: NodeId(7),
                msg: m.clone(),
            };
            let bytes = mar_wire::to_bytes(&env).unwrap();
            let back: TxEnvelope = mar_wire::from_slice(&bytes).unwrap();
            assert_eq!(back.msg, m);
            assert_eq!(back.msg.txn(), TxnId::new(NodeId(1), 2));
        }
    }

    #[test]
    fn remote_work_size() {
        let w = RemoteWork::new("abc", vec![0; 10]);
        assert_eq!(w.size(), 13);
    }
}
