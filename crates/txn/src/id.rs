//! Transaction identifiers.

use std::fmt;

use mar_simnet::NodeId;
use serde::{Deserialize, Serialize};

/// Globally unique transaction identifier: the coordinating node plus a
/// node-local sequence number.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TxnId {
    /// The node coordinating this transaction.
    pub coordinator: NodeId,
    /// Sequence number unique on the coordinator.
    pub seq: u64,
}

impl TxnId {
    /// Constructs a transaction id.
    pub const fn new(coordinator: NodeId, seq: u64) -> Self {
        TxnId { coordinator, seq }
    }

    /// A compact stable-storage key fragment, e.g. `"3.17"`.
    pub fn key(&self) -> String {
        format!("{}.{}", self.coordinator.0, self.seq)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}:{}", self.coordinator.0, self.seq)
    }
}

/// Allocates [`TxnId`]s for one coordinator node.
///
/// The counter is volatile; after a crash the host must restore it past any
/// previously issued id (e.g. from the highest id found in stable records)
/// via [`TxnIdGen::bump_past`], or start a fresh epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TxnIdGen {
    node: NodeId,
    next: u64,
}

impl TxnIdGen {
    /// Creates a generator for `node` starting at `first_seq`.
    pub fn new(node: NodeId, first_seq: u64) -> Self {
        TxnIdGen {
            node,
            next: first_seq,
        }
    }

    /// Issues the next id.
    pub fn next_id(&mut self) -> TxnId {
        let id = TxnId::new(self.node, self.next);
        self.next += 1;
        id
    }

    /// Ensures all future ids have `seq > seq_floor`.
    pub fn bump_past(&mut self, seq_floor: u64) {
        if self.next <= seq_floor {
            self.next = seq_floor + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_ordered() {
        let mut g = TxnIdGen::new(NodeId(2), 0);
        let a = g.next_id();
        let b = g.next_id();
        assert_ne!(a, b);
        assert!(a < b);
        assert_eq!(a.coordinator, NodeId(2));
    }

    #[test]
    fn bump_past_skips_reissued_ids() {
        let mut g = TxnIdGen::new(NodeId(0), 0);
        g.next_id();
        g.bump_past(10);
        assert_eq!(g.next_id().seq, 11);
        g.bump_past(5); // lower floor: no effect
        assert_eq!(g.next_id().seq, 12);
    }

    #[test]
    fn display_and_key() {
        let id = TxnId::new(NodeId(3), 17);
        assert_eq!(id.to_string(), "T3:17");
        assert_eq!(id.key(), "3.17");
    }

    #[test]
    fn serializes() {
        let id = TxnId::new(NodeId(1), 2);
        let bytes = mar_wire::to_bytes(&id).unwrap();
        assert_eq!(mar_wire::from_slice::<TxnId>(&bytes).unwrap(), id);
    }
}
