//! Error types of the transactional substrate.

use std::fmt;

use crate::id::TxnId;

/// Errors surfaced by lock acquisition, stores, and resource managers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// The lock is held in a conflicting mode by another transaction.
    ///
    /// With no-wait locking the correct reaction is to abort and retry the
    /// whole transaction after a backoff.
    WouldBlock {
        /// The contended key.
        key: String,
        /// One of the conflicting holders.
        holder: TxnId,
    },
    /// The transaction is not known (already committed/aborted, or never
    /// began at this manager).
    UnknownTxn(TxnId),
    /// An operation was invoked on a resource that does not exist.
    NoSuchResource(String),
    /// A resource rejected an operation (business rule, e.g. overdraft).
    Rejected {
        /// The resource that rejected the operation.
        resource: String,
        /// Human-readable reason.
        reason: String,
    },
    /// An operation or its parameters were malformed.
    BadRequest(String),
    /// Serialization failure.
    Codec(String),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::WouldBlock { key, holder } => {
                write!(f, "lock on {key:?} held by {holder}")
            }
            TxnError::UnknownTxn(t) => write!(f, "unknown transaction {t}"),
            TxnError::NoSuchResource(r) => write!(f, "no such resource {r:?}"),
            TxnError::Rejected { resource, reason } => {
                write!(f, "{resource} rejected operation: {reason}")
            }
            TxnError::BadRequest(m) => write!(f, "bad request: {m}"),
            TxnError::Codec(m) => write!(f, "codec error: {m}"),
        }
    }
}

impl std::error::Error for TxnError {}

impl From<mar_wire::WireError> for TxnError {
    fn from(e: mar_wire::WireError) -> Self {
        TxnError::Codec(e.to_string())
    }
}

impl TxnError {
    /// True if retrying the transaction later may succeed (lock conflicts),
    /// false for semantic rejections.
    pub fn is_transient(&self) -> bool {
        matches!(self, TxnError::WouldBlock { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_simnet::NodeId;

    #[test]
    fn transient_classification() {
        let wb = TxnError::WouldBlock {
            key: "k".into(),
            holder: TxnId::new(NodeId(0), 1),
        };
        assert!(wb.is_transient());
        assert!(!TxnError::BadRequest("x".into()).is_transient());
        assert!(!TxnError::Rejected {
            resource: "bank".into(),
            reason: "overdraft".into()
        }
        .is_transient());
    }

    #[test]
    fn display() {
        let e = TxnError::NoSuchResource("shop".into());
        assert_eq!(e.to_string(), "no such resource \"shop\"");
    }
}
