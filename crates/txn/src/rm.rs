//! Resource managers and their registry.
//!
//! A resource manager exposes named operations invoked from agent steps and
//! from compensating operations. All operations of a step run inside the
//! *step transaction* (paper §2); commit/abort fans out to every manager on
//! the node.

use std::collections::BTreeMap;

use mar_simnet::SimTime;
use mar_wire::Value;

use crate::error::TxnError;
use crate::id::TxnId;

/// Per-invocation context handed to resource operations.
#[derive(Debug, Clone, Copy)]
pub struct OpCtx {
    /// The enclosing (step or compensation) transaction.
    pub txn: TxnId,
    /// Current virtual time — used by time-dependent policies such as
    /// refund windows.
    pub now: SimTime,
}

/// A transactional resource hosted on a node.
///
/// Implementations keep their state in a [`crate::TxStore`] (or anything
/// with equivalent undo/lock semantics) so that `abort` really reverts.
/// Managers must be `Send`: the hosting node may be processed by any of the
/// simulator's worker-thread shards.
pub trait ResourceManager: Send {
    /// The resource's registry name (unique per node), e.g. `"bank"`.
    fn name(&self) -> &str;

    /// Executes `op` with `params` inside transaction `ctx.txn`.
    ///
    /// # Errors
    ///
    /// [`TxnError::WouldBlock`] on lock conflicts (caller aborts and
    /// retries), [`TxnError::Rejected`] for business rules, or
    /// [`TxnError::BadRequest`] for malformed parameters.
    fn invoke(&mut self, ctx: OpCtx, op: &str, params: &Value) -> Result<Value, TxnError>;

    /// Makes the transaction's effects on this resource permanent.
    fn commit(&mut self, txn: TxnId);

    /// Reverts the transaction's effects on this resource.
    fn abort(&mut self, txn: TxnId);

    /// Serializes committed state for stable storage.
    ///
    /// # Errors
    ///
    /// Codec errors only.
    fn snapshot(&self) -> Result<Vec<u8>, TxnError>;

    /// Restores committed state after a crash.
    ///
    /// # Errors
    ///
    /// Codec errors only.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), TxnError>;

    /// Reports the committed money this resource holds, as a map from
    /// currency code to amount — the raw material of the conservation
    /// audits in the test suite. Resources that hold no money (registries,
    /// read-only services) keep the default.
    fn audit_money(&self) -> Value {
        Value::Null
    }
}

/// The set of resource managers on one node.
#[derive(Default)]
pub struct RmRegistry {
    rms: BTreeMap<String, Box<dyn ResourceManager>>,
}

impl RmRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        RmRegistry::default()
    }

    /// Registers a resource manager.
    ///
    /// # Panics
    ///
    /// Panics if a resource with the same name already exists.
    pub fn register(&mut self, rm: Box<dyn ResourceManager>) {
        let name = rm.name().to_owned();
        let prev = self.rms.insert(name.clone(), rm);
        assert!(prev.is_none(), "resource {name:?} registered twice");
    }

    /// Invokes an operation on the named resource.
    ///
    /// # Errors
    ///
    /// [`TxnError::NoSuchResource`] if the resource is absent, otherwise
    /// whatever the resource returns.
    pub fn invoke(
        &mut self,
        ctx: OpCtx,
        resource: &str,
        op: &str,
        params: &Value,
    ) -> Result<Value, TxnError> {
        let rm = self
            .rms
            .get_mut(resource)
            .ok_or_else(|| TxnError::NoSuchResource(resource.to_owned()))?;
        rm.invoke(ctx, op, params)
    }

    /// Commits `txn` on every resource.
    pub fn commit_all(&mut self, txn: TxnId) {
        for rm in self.rms.values_mut() {
            rm.commit(txn);
        }
    }

    /// Aborts `txn` on every resource.
    pub fn abort_all(&mut self, txn: TxnId) {
        for rm in self.rms.values_mut() {
            rm.abort(txn);
        }
    }

    /// Snapshots every resource as `(name, bytes)` pairs.
    ///
    /// # Errors
    ///
    /// Codec errors only.
    pub fn snapshot_all(&self) -> Result<Vec<(String, Vec<u8>)>, TxnError> {
        self.rms
            .iter()
            .map(|(name, rm)| Ok((name.clone(), rm.snapshot()?)))
            .collect()
    }

    /// Restores a resource by name (ignores unknown names so nodes can be
    /// reconfigured between runs).
    ///
    /// # Errors
    ///
    /// Codec errors from the resource.
    pub fn restore_one(&mut self, name: &str, bytes: &[u8]) -> Result<(), TxnError> {
        if let Some(rm) = self.rms.get_mut(name) {
            rm.restore(bytes)?;
        }
        Ok(())
    }

    /// Direct access to a resource (test inspection).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Box<dyn ResourceManager>> {
        self.rms.get_mut(name)
    }

    /// Direct read access to a resource.
    pub fn get(&self, name: &str) -> Option<&dyn ResourceManager> {
        self.rms.get(name).map(Box::as_ref)
    }

    /// Sums `audit_money` over all resources, per currency.
    pub fn audit_money(&self) -> std::collections::BTreeMap<String, i64> {
        let mut out = std::collections::BTreeMap::new();
        for rm in self.rms.values() {
            if let Value::Map(m) = rm.audit_money() {
                for (cur, v) in m {
                    if let Some(amount) = v.as_i64() {
                        *out.entry(cur).or_insert(0) += amount;
                    }
                }
            }
        }
        out
    }

    /// Registered resource names.
    pub fn names(&self) -> Vec<String> {
        self.rms.keys().cloned().collect()
    }

    /// Number of registered resources.
    pub fn len(&self) -> usize {
        self.rms.len()
    }

    /// True if no resources are registered.
    pub fn is_empty(&self) -> bool {
        self.rms.is_empty()
    }
}

impl std::fmt::Debug for RmRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RmRegistry")
            .field("resources", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TxStore;
    use mar_simnet::NodeId;

    /// A trivial counter resource used to exercise the registry plumbing.
    struct Counter {
        store: TxStore,
    }

    impl Counter {
        fn new() -> Self {
            let mut store = TxStore::new();
            store.seed("n", mar_wire::to_bytes(&0i64).unwrap());
            Counter { store }
        }
    }

    impl ResourceManager for Counter {
        fn name(&self) -> &str {
            "counter"
        }

        fn invoke(&mut self, ctx: OpCtx, op: &str, params: &Value) -> Result<Value, TxnError> {
            match op {
                "add" => {
                    let delta = params
                        .as_i64()
                        .ok_or_else(|| TxnError::BadRequest("add expects an integer".to_owned()))?;
                    let cur: i64 =
                        mar_wire::from_slice(self.store.read(ctx.txn, "n")?.unwrap_or(&[]))?;
                    let next = cur + delta;
                    self.store.write(ctx.txn, "n", mar_wire::to_bytes(&next)?)?;
                    Ok(Value::from(next))
                }
                "get" => {
                    let cur: i64 =
                        mar_wire::from_slice(self.store.read(ctx.txn, "n")?.unwrap_or(&[]))?;
                    Ok(Value::from(cur))
                }
                other => Err(TxnError::BadRequest(format!("unknown op {other}"))),
            }
        }

        fn commit(&mut self, txn: TxnId) {
            self.store.commit(txn);
        }
        fn abort(&mut self, txn: TxnId) {
            self.store.abort(txn);
        }
        fn snapshot(&self) -> Result<Vec<u8>, TxnError> {
            Ok(self.store.snapshot()?)
        }
        fn restore(&mut self, bytes: &[u8]) -> Result<(), TxnError> {
            Ok(self.store.restore(bytes)?)
        }
    }

    fn ctx(seq: u64) -> OpCtx {
        OpCtx {
            txn: TxnId::new(NodeId(0), seq),
            now: SimTime::ZERO,
        }
    }

    #[test]
    fn invoke_commit_abort_cycle() {
        let mut reg = RmRegistry::new();
        reg.register(Box::new(Counter::new()));
        let v = reg
            .invoke(ctx(1), "counter", "add", &Value::from(5i64))
            .unwrap();
        assert_eq!(v.as_i64(), Some(5));
        reg.commit_all(ctx(1).txn);

        reg.invoke(ctx(2), "counter", "add", &Value::from(3i64))
            .unwrap();
        reg.abort_all(ctx(2).txn);
        let v = reg.invoke(ctx(3), "counter", "get", &Value::Null).unwrap();
        assert_eq!(v.as_i64(), Some(5), "aborted add must not stick");
    }

    #[test]
    fn unknown_resource_and_op() {
        let mut reg = RmRegistry::new();
        reg.register(Box::new(Counter::new()));
        assert!(matches!(
            reg.invoke(ctx(1), "nope", "get", &Value::Null),
            Err(TxnError::NoSuchResource(_))
        ));
        assert!(matches!(
            reg.invoke(ctx(1), "counter", "nope", &Value::Null),
            Err(TxnError::BadRequest(_))
        ));
    }

    #[test]
    fn snapshot_restore_via_registry() {
        let mut reg = RmRegistry::new();
        reg.register(Box::new(Counter::new()));
        reg.invoke(ctx(1), "counter", "add", &Value::from(9i64))
            .unwrap();
        reg.commit_all(ctx(1).txn);
        let snaps = reg.snapshot_all().unwrap();

        let mut reg2 = RmRegistry::new();
        reg2.register(Box::new(Counter::new()));
        for (name, bytes) in &snaps {
            reg2.restore_one(name, bytes).unwrap();
        }
        let v = reg2.invoke(ctx(2), "counter", "get", &Value::Null).unwrap();
        assert_eq!(v.as_i64(), Some(9));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = RmRegistry::new();
        reg.register(Box::new(Counter::new()));
        reg.register(Box::new(Counter::new()));
    }
}
