//! A transactional key-value store: the state engine behind every resource
//! manager.
//!
//! Writes are applied in place under no-wait 2PL with before-image undo.
//! Committed state can be snapshotted to bytes so the hosting node can
//! persist it to stable storage at commit (committed resource state survives
//! crashes; uncommitted changes die with the node, which *is* the abort).

use std::collections::BTreeMap;

use mar_wire::{from_slice, to_bytes, WireResult};

use crate::error::TxnError;
use crate::id::TxnId;
use crate::lock::{LockMode, LockTable};
use crate::undo::UndoLog;

/// Transactional byte-value store with per-key locking.
#[derive(Debug, Default)]
pub struct TxStore {
    data: BTreeMap<String, Vec<u8>>,
    locks: LockTable,
    undo: BTreeMap<TxnId, UndoLog>,
}

impl TxStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TxStore::default()
    }

    /// Reads `key` under a shared lock.
    ///
    /// # Errors
    ///
    /// [`TxnError::WouldBlock`] if another transaction holds a conflicting
    /// lock.
    pub fn read(&mut self, txn: TxnId, key: &str) -> Result<Option<&[u8]>, TxnError> {
        self.locks.acquire(txn, key, LockMode::Shared)?;
        Ok(self.data.get(key).map(Vec::as_slice))
    }

    /// Writes `value` under `key` with an exclusive lock, recording the
    /// before-image for abort.
    ///
    /// # Errors
    ///
    /// [`TxnError::WouldBlock`] on lock conflict.
    pub fn write(&mut self, txn: TxnId, key: &str, value: Vec<u8>) -> Result<(), TxnError> {
        self.locks.acquire(txn, key, LockMode::Exclusive)?;
        let before = self.data.get(key).cloned();
        self.undo.entry(txn).or_default().remember(key, before);
        self.data.insert(key.to_owned(), value);
        Ok(())
    }

    /// Deletes `key` under an exclusive lock.
    ///
    /// # Errors
    ///
    /// [`TxnError::WouldBlock`] on lock conflict.
    pub fn remove(&mut self, txn: TxnId, key: &str) -> Result<(), TxnError> {
        self.locks.acquire(txn, key, LockMode::Exclusive)?;
        let before = self.data.get(key).cloned();
        self.undo.entry(txn).or_default().remember(key, before);
        self.data.remove(key);
        Ok(())
    }

    /// Keys under `prefix`, taking shared locks on each returned key.
    ///
    /// # Errors
    ///
    /// [`TxnError::WouldBlock`] if any matching key is locked exclusively by
    /// another transaction.
    pub fn scan_keys(&mut self, txn: TxnId, prefix: &str) -> Result<Vec<String>, TxnError> {
        let keys: Vec<String> = self
            .data
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &keys {
            self.locks.acquire(txn, k, LockMode::Shared)?;
        }
        Ok(keys)
    }

    /// Commits `txn`: drops its undo log and releases its locks.
    pub fn commit(&mut self, txn: TxnId) {
        self.undo.remove(&txn);
        self.locks.release_all(txn);
    }

    /// Aborts `txn`: restores all before-images and releases its locks.
    pub fn abort(&mut self, txn: TxnId) {
        if let Some(log) = self.undo.remove(&txn) {
            log.unwind(|key, before| match before {
                Some(v) => {
                    self.data.insert(key.to_owned(), v.to_vec());
                }
                None => {
                    self.data.remove(key);
                }
            });
        }
        self.locks.release_all(txn);
    }

    /// Whether `txn` has pending (uncommitted) changes or locks.
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.undo.contains_key(&txn) || self.locks.has_locks(txn)
    }

    /// Non-transactional write for initial setup before the world starts.
    pub fn seed(&mut self, key: impl Into<String>, value: Vec<u8>) {
        self.data.insert(key.into(), value);
    }

    /// Non-transactional read (test inspection / snapshots).
    pub fn peek(&self, key: &str) -> Option<&[u8]> {
        self.data.get(key).map(Vec::as_slice)
    }

    /// Serializes the committed state (callers must only invoke this when no
    /// transaction is active, i.e. at commit boundaries).
    ///
    /// # Errors
    ///
    /// Codec errors only.
    pub fn snapshot(&self) -> WireResult<Vec<u8>> {
        to_bytes(&self.data)
    }

    /// Replaces the committed state from a snapshot (crash recovery).
    ///
    /// # Errors
    ///
    /// Codec errors only.
    pub fn restore(&mut self, bytes: &[u8]) -> WireResult<()> {
        self.data = from_slice(bytes)?;
        self.undo.clear();
        self.locks = LockTable::new();
        Ok(())
    }

    /// Lock conflict count (for experiments).
    pub fn conflicts(&self) -> u64 {
        self.locks.conflicts()
    }

    /// Number of keys in the committed + in-flight state.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Iterates over all current `(key, value)` pairs (non-transactional).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.data.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_simnet::NodeId;

    fn t(n: u64) -> TxnId {
        TxnId::new(NodeId(0), n)
    }

    #[test]
    fn write_then_abort_restores() {
        let mut s = TxStore::new();
        s.seed("a", vec![1]);
        s.write(t(1), "a", vec![2]).unwrap();
        s.write(t(1), "b", vec![3]).unwrap();
        assert_eq!(s.peek("a"), Some(&[2u8][..]));
        s.abort(t(1));
        assert_eq!(s.peek("a"), Some(&[1u8][..]));
        assert_eq!(s.peek("b"), None);
        assert!(!s.is_active(t(1)));
    }

    #[test]
    fn write_then_commit_persists() {
        let mut s = TxStore::new();
        s.write(t(1), "a", vec![7]).unwrap();
        s.commit(t(1));
        assert_eq!(s.peek("a"), Some(&[7u8][..]));
        // Lock released: another txn can write.
        s.write(t(2), "a", vec![8]).unwrap();
        s.commit(t(2));
        assert_eq!(s.peek("a"), Some(&[8u8][..]));
    }

    #[test]
    fn isolation_under_no_wait() {
        let mut s = TxStore::new();
        s.seed("a", vec![1]);
        s.write(t(1), "a", vec![2]).unwrap();
        // Reader is refused instead of seeing the dirty value.
        let err = s.read(t(2), "a").unwrap_err();
        assert!(err.is_transient());
        s.abort(t(1));
        assert_eq!(s.read(t(2), "a").unwrap(), Some(&[1u8][..]));
    }

    #[test]
    fn remove_is_undoable() {
        let mut s = TxStore::new();
        s.seed("a", vec![1]);
        s.remove(t(1), "a").unwrap();
        assert_eq!(s.peek("a"), None);
        s.abort(t(1));
        assert_eq!(s.peek("a"), Some(&[1u8][..]));
    }

    #[test]
    fn scan_locks_matches() {
        let mut s = TxStore::new();
        s.seed("q/1", vec![]);
        s.seed("q/2", vec![]);
        s.seed("r/1", vec![]);
        let keys = s.scan_keys(t(1), "q/").unwrap();
        assert_eq!(keys, ["q/1", "q/2"]);
        // Writer conflicts with the scan's shared locks.
        assert!(s.write(t(2), "q/1", vec![1]).is_err());
        s.commit(t(1));
        assert!(s.write(t(2), "q/1", vec![1]).is_ok());
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut s = TxStore::new();
        s.write(t(1), "k", vec![1, 2]).unwrap();
        s.commit(t(1));
        let snap = s.snapshot().unwrap();
        let mut s2 = TxStore::new();
        s2.restore(&snap).unwrap();
        assert_eq!(s2.peek("k"), Some(&[1u8, 2][..]));
        assert_eq!(s2.len(), 1);
    }

    #[test]
    fn abort_unknown_txn_is_noop() {
        let mut s = TxStore::new();
        s.seed("a", vec![1]);
        s.abort(t(5));
        assert_eq!(s.peek("a"), Some(&[1u8][..]));
    }
}
