//! Strict two-phase locking with a no-wait policy.
//!
//! Lock conflicts return [`TxnError::WouldBlock`] immediately instead of
//! queueing the requester. The caller aborts and retries the transaction
//! after a (randomized) backoff. No-wait keeps the simulation deterministic,
//! cannot deadlock, and — combined with strictness (all locks held until
//! commit/abort) — still yields serializable histories, which is all the
//! paper's step/compensation transactions require.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::TxnError;
use crate::id::TxnId;

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) access.
    Shared,
    /// Exclusive (write) access.
    Exclusive,
}

#[derive(Debug, Default)]
struct Entry {
    sharers: BTreeSet<TxnId>,
    exclusive: Option<TxnId>,
}

/// A per-resource-manager lock table.
#[derive(Debug, Default)]
pub struct LockTable {
    entries: BTreeMap<String, Entry>,
    held: BTreeMap<TxnId, BTreeSet<String>>,
    conflicts: u64,
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Acquires `key` in `mode` for `txn`, upgrading a shared lock to
    /// exclusive when `txn` is the sole sharer.
    ///
    /// # Errors
    ///
    /// [`TxnError::WouldBlock`] on any conflict with another transaction.
    pub fn acquire(&mut self, txn: TxnId, key: &str, mode: LockMode) -> Result<(), TxnError> {
        let entry = self.entries.entry(key.to_owned()).or_default();
        match mode {
            LockMode::Shared => {
                if let Some(holder) = entry.exclusive {
                    if holder != txn {
                        self.conflicts += 1;
                        return Err(TxnError::WouldBlock {
                            key: key.to_owned(),
                            holder,
                        });
                    }
                    // Already exclusive: shared access is implied.
                    return Ok(());
                }
                entry.sharers.insert(txn);
            }
            LockMode::Exclusive => {
                if let Some(holder) = entry.exclusive {
                    if holder != txn {
                        self.conflicts += 1;
                        return Err(TxnError::WouldBlock {
                            key: key.to_owned(),
                            holder,
                        });
                    }
                    return Ok(());
                }
                if let Some(&other) = entry.sharers.iter().find(|&&s| s != txn) {
                    self.conflicts += 1;
                    return Err(TxnError::WouldBlock {
                        key: key.to_owned(),
                        holder: other,
                    });
                }
                // Upgrade (or fresh acquire): txn is sole sharer or none.
                entry.sharers.remove(&txn);
                entry.exclusive = Some(txn);
            }
        }
        self.held.entry(txn).or_default().insert(key.to_owned());
        Ok(())
    }

    /// Releases every lock held by `txn` (strict 2PL release at end of
    /// transaction).
    pub fn release_all(&mut self, txn: TxnId) {
        let Some(keys) = self.held.remove(&txn) else {
            return;
        };
        for key in keys {
            if let Some(entry) = self.entries.get_mut(&key) {
                entry.sharers.remove(&txn);
                if entry.exclusive == Some(txn) {
                    entry.exclusive = None;
                }
                if entry.sharers.is_empty() && entry.exclusive.is_none() {
                    self.entries.remove(&key);
                }
            }
        }
    }

    /// Whether `txn` holds `key` in a mode at least as strong as `mode`.
    pub fn holds(&self, txn: TxnId, key: &str, mode: LockMode) -> bool {
        let Some(entry) = self.entries.get(key) else {
            return false;
        };
        match mode {
            LockMode::Shared => entry.sharers.contains(&txn) || entry.exclusive == Some(txn),
            LockMode::Exclusive => entry.exclusive == Some(txn),
        }
    }

    /// Number of conflicts observed so far (for the experiments).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of keys with at least one lock held.
    pub fn locked_keys(&self) -> usize {
        self.entries.len()
    }

    /// Whether `txn` holds any lock.
    pub fn has_locks(&self, txn: TxnId) -> bool {
        self.held.get(&txn).is_some_and(|k| !k.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_simnet::NodeId;

    fn t(n: u64) -> TxnId {
        TxnId::new(NodeId(0), n)
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), "a", LockMode::Shared).unwrap();
        lt.acquire(t(2), "a", LockMode::Shared).unwrap();
        assert!(lt.holds(t(1), "a", LockMode::Shared));
        assert!(lt.holds(t(2), "a", LockMode::Shared));
    }

    #[test]
    fn exclusive_conflicts_with_shared() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), "a", LockMode::Shared).unwrap();
        let err = lt.acquire(t(2), "a", LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, TxnError::WouldBlock { holder, .. } if holder == t(1)));
        assert_eq!(lt.conflicts(), 1);
    }

    #[test]
    fn exclusive_blocks_everything() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), "a", LockMode::Exclusive).unwrap();
        assert!(lt.acquire(t(2), "a", LockMode::Shared).is_err());
        assert!(lt.acquire(t(2), "a", LockMode::Exclusive).is_err());
        // Holder itself is unaffected (reentrant).
        lt.acquire(t(1), "a", LockMode::Shared).unwrap();
        lt.acquire(t(1), "a", LockMode::Exclusive).unwrap();
    }

    #[test]
    fn upgrade_when_sole_sharer() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), "a", LockMode::Shared).unwrap();
        lt.acquire(t(1), "a", LockMode::Exclusive).unwrap();
        assert!(lt.holds(t(1), "a", LockMode::Exclusive));
    }

    #[test]
    fn upgrade_denied_with_other_sharers() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), "a", LockMode::Shared).unwrap();
        lt.acquire(t(2), "a", LockMode::Shared).unwrap();
        assert!(lt.acquire(t(1), "a", LockMode::Exclusive).is_err());
        // Still holds its shared lock after the failed upgrade.
        assert!(lt.holds(t(1), "a", LockMode::Shared));
    }

    #[test]
    fn release_all_frees_keys() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), "a", LockMode::Exclusive).unwrap();
        lt.acquire(t(1), "b", LockMode::Shared).unwrap();
        assert!(lt.has_locks(t(1)));
        lt.release_all(t(1));
        assert!(!lt.has_locks(t(1)));
        assert_eq!(lt.locked_keys(), 0);
        lt.acquire(t(2), "a", LockMode::Exclusive).unwrap();
    }

    #[test]
    fn release_unknown_txn_is_noop() {
        let mut lt = LockTable::new();
        lt.release_all(t(9));
        assert_eq!(lt.locked_keys(), 0);
    }
}
