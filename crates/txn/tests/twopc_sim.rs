//! End-to-end tests of presumed-abort 2PC driven through the simulator,
//! including node crashes at every interesting point of the protocol.
//!
//! The host service here is a miniature of what the agent platform does:
//! it executes the [`Action`] lists emitted by the state machines, persists
//! protocol records in stable storage, and retries on a timer.

use mar_simnet::{Address, Ctx, NodeId, Service, SimDuration, World, WorldConfig};
use mar_txn::{
    twopc::Action, Coordinator, Participant, PreparedEntry, RemoteWork, TxEnvelope, TxMsg, TxnId,
};
use mar_wire::{from_slice, to_bytes};

const TM: &str = "tm";
const RETRY_TAG: u64 = 1;
const RETRY_EVERY: SimDuration = SimDuration::from_millis(50);

/// External request to start a distributed commit.
#[derive(serde::Serialize, serde::Deserialize)]
struct StartCommit {
    seq: u64,
    participant: NodeId,
    /// Key/value the participant should write when the txn commits.
    key: String,
    value: Vec<u8>,
}

#[derive(Default)]
struct TmHost {
    co: Coordinator,
    pa: Participant,
    resolved: Vec<(TxnId, bool)>,
}

impl TmHost {
    fn send_tx(&self, ctx: &mut Ctx<'_>, to: NodeId, msg: TxMsg) {
        let env = TxEnvelope {
            from: ctx.node(),
            msg,
        };
        ctx.send(Address::new(to, TM), to_bytes(&env).expect("encode"));
    }

    fn run_actions(&mut self, ctx: &mut Ctx<'_>, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::PersistDecision { txn, participants } => {
                    ctx.stable_put(
                        format!("2pc/decision/{}", txn.key()),
                        to_bytes(&participants).unwrap(),
                    );
                }
                Action::ForgetDecision { txn } => {
                    ctx.stable_delete(&format!("2pc/decision/{}", txn.key()));
                }
                Action::SendPrepare { to, txn, work } => {
                    self.send_tx(ctx, to, TxMsg::Prepare { txn, work });
                }
                Action::SendDecision { to, txn, commit } => {
                    self.send_tx(ctx, to, TxMsg::Decision { txn, commit });
                }
                Action::CommitLocal { txn } => {
                    ctx.stable_put(format!("local_commit/{}", txn.key()), vec![1]);
                }
                Action::AbortLocal { txn } => {
                    ctx.stable_put(format!("local_abort/{}", txn.key()), vec![1]);
                }
                Action::Resolved { txn, committed } => {
                    self.resolved.push((txn, committed));
                }
                Action::PersistPrepared {
                    txn,
                    coordinator,
                    work,
                } => {
                    let entry = PreparedEntry { coordinator, work };
                    ctx.stable_put(
                        format!("2pc/prepared/{}", txn.key()),
                        to_bytes(&entry).unwrap(),
                    );
                }
                Action::SendVote { to, txn, ok } => {
                    self.send_tx(ctx, to, TxMsg::Vote { txn, ok });
                }
                Action::ApplyWork { txn, work } => {
                    let (key, value): (String, Vec<u8>) =
                        from_slice(&work.payload).expect("work payload");
                    // Exactly-once check: count applications per txn.
                    let ck = format!("applied_count/{}", txn.key());
                    let n = ctx.stable_get(&ck).map(|b| b[0]).unwrap_or(0);
                    ctx.stable_put(ck, vec![n + 1]);
                    ctx.stable_put(key, value);
                }
                Action::DiscardWork { txn } => {
                    ctx.stable_put(format!("discarded/{}", txn.key()), vec![1]);
                }
                Action::MarkDone { txn } => {
                    ctx.stable_delete(&format!("2pc/prepared/{}", txn.key()));
                    ctx.stable_put(format!("2pc/done/{}", txn.key()), vec![1]);
                }
                Action::SendAck { to, txn } => {
                    self.send_tx(ctx, to, TxMsg::Ack { txn });
                }
                Action::SendQuery { to, txn } => {
                    self.send_tx(ctx, to, TxMsg::Query { txn });
                }
            }
        }
    }
}

impl Service for TmHost {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Address, payload: &[u8]) {
        if from.node == NodeId::EXTERNAL {
            let start: StartCommit = from_slice(payload).expect("start msg");
            let txn = TxnId::new(ctx.node(), start.seq);
            let work = RemoteWork::new("put", to_bytes(&(start.key, start.value)).unwrap());
            let actions = self.co.commit_request(txn, vec![(start.participant, work)]);
            self.run_actions(ctx, actions);
            return;
        }
        let env: TxEnvelope = from_slice(payload).expect("tx envelope");
        let actions = match env.msg {
            TxMsg::Prepare { txn, work } => self.pa.on_prepare(txn, env.from, work, true),
            TxMsg::Vote { txn, ok } => self.co.on_vote(txn, env.from, ok),
            TxMsg::Decision { txn, commit } => self.pa.on_decision(txn, commit, env.from),
            TxMsg::Ack { txn } => self.co.on_ack(txn, env.from),
            TxMsg::Query { txn } => self.co.on_query(txn, env.from),
        };
        self.run_actions(ctx, actions);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
        let mut actions = self.co.on_retry();
        actions.extend(self.pa.on_retry());
        self.run_actions(ctx, actions);
        ctx.set_timer(RETRY_EVERY, RETRY_TAG);
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Recover coordinator decisions.
        let mut decisions = Vec::new();
        for key in ctx.stable().keys_with_prefix("2pc/decision/") {
            let participants: Vec<NodeId> =
                from_slice(ctx.stable_get(&key).unwrap()).expect("decision record");
            let txn = parse_txn(key.rsplit('/').next().unwrap());
            decisions.push((txn, participants));
        }
        let co_actions = self.co.recover(decisions);
        // Recover participant state.
        let mut prepared = Vec::new();
        for key in ctx.stable().keys_with_prefix("2pc/prepared/") {
            let entry: PreparedEntry =
                from_slice(ctx.stable_get(&key).unwrap()).expect("prepared record");
            let txn = parse_txn(key.rsplit('/').next().unwrap());
            prepared.push((txn, entry));
        }
        let done = ctx
            .stable()
            .keys_with_prefix("2pc/done/")
            .iter()
            .map(|k| parse_txn(k.rsplit('/').next().unwrap()))
            .collect();
        self.pa.recover(prepared, done);
        let pa_actions = self.pa.on_retry();
        self.run_actions(ctx, co_actions);
        self.run_actions(ctx, pa_actions);
        ctx.set_timer(RETRY_EVERY, RETRY_TAG);
    }
}

fn parse_txn(key: &str) -> TxnId {
    let (node, seq) = key.split_once('.').expect("txn key");
    TxnId::new(NodeId(node.parse().unwrap()), seq.parse().unwrap())
}

fn build_world(seed: u64) -> (World, NodeId, NodeId) {
    let mut w = World::new(WorldConfig::with_seed(seed));
    let a = w.add_node();
    let b = w.add_node();
    for n in [a, b] {
        w.add_service(n, TM, || Box::new(TmHost::default()));
    }
    w.start();
    (w, a, b)
}

fn start_commit(w: &mut World, coordinator: NodeId, participant: NodeId, seq: u64) {
    let msg = StartCommit {
        seq,
        participant,
        key: format!("data/k{seq}"),
        value: vec![seq as u8],
    };
    w.post(Address::new(coordinator, TM), to_bytes(&msg).unwrap());
}

fn applied_once(w: &World, node: NodeId, txn: &TxnId) -> bool {
    w.stable(node)
        .get(&format!("applied_count/{}", txn.key()))
        .map(|b| b == [1])
        .unwrap_or(false)
}

#[test]
fn happy_path_applies_work_exactly_once() {
    let (mut w, a, b) = build_world(1);
    start_commit(&mut w, a, b, 1);
    w.run_for(SimDuration::from_secs(2));
    let txn = TxnId::new(a, 1);
    assert!(applied_once(&w, b, &txn));
    assert_eq!(w.stable(b).get("data/k1"), Some(&[1u8][..]));
    assert!(w.stable(a).contains(&format!("local_commit/{}", txn.key())));
    // Protocol garbage collected on the coordinator.
    assert!(!w.stable(a).contains(&format!("2pc/decision/{}", txn.key())));
}

#[test]
fn participant_crash_after_prepare_still_commits() {
    let (mut w, a, b) = build_world(2);
    start_commit(&mut w, a, b, 1);
    // Let the prepare land (LAN base latency ~1ms), then crash the
    // participant before the decision can be processed.
    w.run_for(SimDuration::from_millis(2));
    w.crash_for(b, SimDuration::from_millis(500));
    w.run_for(SimDuration::from_secs(5));
    let txn = TxnId::new(a, 1);
    assert!(
        applied_once(&w, b, &txn),
        "prepared work must be applied after recovery via query/decision"
    );
    assert_eq!(w.stable(b).get("data/k1"), Some(&[1u8][..]));
}

#[test]
fn coordinator_crash_after_decision_recovers_and_finishes() {
    let (mut w, a, b) = build_world(3);
    // Cut the link so the decision cannot reach the participant, forcing the
    // coordinator to persist the decision and then crash with it in flight.
    start_commit(&mut w, a, b, 1);
    w.run_for(SimDuration::from_millis(3)); // prepare + vote exchanged
    w.net_mut().set_link(a, b, false);
    w.run_for(SimDuration::from_millis(200));
    let txn = TxnId::new(a, 1);
    let decision_persisted = w.stable(a).contains(&format!("2pc/decision/{}", txn.key()));
    w.crash_for(a, SimDuration::from_millis(300));
    w.net_mut().set_link(a, b, true);
    w.run_for(SimDuration::from_secs(5));
    if decision_persisted {
        assert!(
            applied_once(&w, b, &txn),
            "commit must survive coordinator crash"
        );
        assert!(
            !w.stable(a).contains(&format!("2pc/decision/{}", txn.key())),
            "decision record should be forgotten after all acks"
        );
    } else {
        // The vote had not arrived yet: presumed abort is also a legal outcome.
        assert!(!applied_once(&w, b, &txn));
    }
}

#[test]
fn coordinator_crash_before_decision_presumes_abort() {
    let (mut w, a, b) = build_world(4);
    // Stop votes from reaching the coordinator so it never decides.
    w.net_mut().set_link(a, b, false);
    start_commit(&mut w, a, b, 1);
    w.run_for(SimDuration::from_millis(100));
    w.crash_for(a, SimDuration::from_millis(100));
    w.net_mut().set_link(a, b, true);
    w.run_for(SimDuration::from_secs(5));
    let txn = TxnId::new(a, 1);
    // Participant never prepared (prepare was dropped) or prepared and then
    // learned abort via query. Either way the work must not be applied.
    assert!(!applied_once(&w, b, &txn));
    assert_eq!(w.stable(b).get("data/k1"), None);
    // No in-doubt state may linger.
    w.run_for(SimDuration::from_secs(2));
    assert_eq!(w.stable(b).count_with_prefix("2pc/prepared/"), 0);
}

#[test]
fn link_flaps_are_ridden_out_by_retries() {
    let (mut w, a, b) = build_world(5);
    start_commit(&mut w, a, b, 1);
    // Flap the link every few ms for a while.
    for i in 0..20u64 {
        let t = mar_simnet::SimTime::from_micros(i * 5_000);
        w.schedule_link(t, a, b, i % 2 == 1);
    }
    w.run_for(SimDuration::from_secs(10));
    let txn = TxnId::new(a, 1);
    assert!(
        applied_once(&w, b, &txn),
        "retries must eventually complete the txn"
    );
}

#[test]
fn many_concurrent_transactions_all_settle() {
    let (mut w, a, b) = build_world(6);
    for seq in 1..=20 {
        start_commit(&mut w, a, b, seq);
    }
    for seq in 1..=20 {
        start_commit(&mut w, b, a, 100 + seq);
    }
    w.run_for(SimDuration::from_secs(5));
    for seq in 1..=20 {
        assert!(applied_once(&w, b, &TxnId::new(a, seq)));
        assert!(applied_once(&w, a, &TxnId::new(b, 100 + seq)));
    }
}

/// ROADMAP "duplicate-prepare regression test at the txn layer": a delayed
/// vote opens a `Prepare` retransmit window. A host that guards tentative
/// work execution with [`Participant::is_known`] (as the agent platform's
/// mole does for RCE lists) must validate — i.e. tentatively execute — the
/// branch exactly once, re-vote on the retransmission, and apply the work
/// exactly once after the late vote finally lands. This pins the protocol
/// contract the platform-level chain test exercises end to end.
#[test]
fn retransmitted_prepare_is_validated_once() {
    let a = NodeId(0);
    let b = NodeId(1);
    let txn = TxnId::new(a, 1);
    let work = RemoteWork::new("put", to_bytes(&("k".to_owned(), vec![1u8])).unwrap());

    let mut co = mar_txn::Coordinator::new();
    let mut pa = Participant::new();
    // Host-side mimic of the mole's prepare admission: the tentative
    // execution (here just a counter) runs ONLY for unknown transactions.
    let mut validations = 0u32;

    // 1. The coordinator starts the commit and sends the Prepare.
    let actions = co.commit_request(txn, vec![(b, work.clone())]);
    assert!(actions
        .iter()
        .any(|ac| matches!(ac, Action::SendPrepare { to, .. } if *to == b)));

    // The host pattern under test: tentative execution only for unknown
    // branches, exactly how the mole admits RCE prepares.
    let admit = |pa: &mut Participant, validations: &mut u32| {
        if !pa.is_known(txn) {
            *validations += 1; // the tentative RCE execution in the mole
        }
        pa.on_prepare(txn, a, work.clone(), true)
    };

    // 2. The participant admits the branch (one validation) and votes —
    //    but the vote is delayed in the network.
    let v1 = admit(&mut pa, &mut validations);
    assert!(v1
        .iter()
        .any(|ac| matches!(ac, Action::SendVote { ok: true, .. })));
    assert!(v1
        .iter()
        .any(|ac| matches!(ac, Action::PersistPrepared { .. })));

    // 3. No vote has arrived: the coordinator's retry timer re-sends the
    //    Prepare — the retransmit window.
    let retry = co.on_retry();
    assert!(
        retry.iter().any(
            |ac| matches!(ac, Action::SendPrepare { to, txn: t, .. } if *to == b && *t == txn)
        ),
        "coordinator must retransmit the unanswered prepare"
    );

    // 4. The retransmitted Prepare reaches the participant. The branch is
    //    known — the host must NOT validate (tentatively execute) again;
    //    the state machine just re-votes, without re-persisting.
    assert!(pa.is_known(txn), "prepared branch must be known");
    let v2 = admit(&mut pa, &mut validations);
    assert_eq!(validations, 1, "retransmit re-validated the branch");
    assert!(v2
        .iter()
        .any(|ac| matches!(ac, Action::SendVote { ok: true, .. })));
    assert!(
        !v2.iter()
            .any(|ac| matches!(ac, Action::PersistPrepared { .. })),
        "no second persist for a retransmitted prepare"
    );

    // 5. The delayed vote (and its duplicate) finally arrive; the first
    //    decides commit, the duplicate must not restart the protocol.
    let d1 = co.on_vote(txn, b, true);
    assert!(d1
        .iter()
        .any(|ac| matches!(ac, Action::SendDecision { commit: true, .. })));
    let _ = co.on_vote(txn, b, true);

    // 6. The decision applies the work exactly once; a duplicate decision
    //    only re-acks.
    let dec = pa.on_decision(txn, true, a);
    assert_eq!(
        dec.iter()
            .filter(|ac| matches!(ac, Action::ApplyWork { .. }))
            .count(),
        1
    );
    assert!(pa.is_known(txn), "settled branch stays known (done set)");
    let dup = pa.on_decision(txn, true, a);
    assert!(!dup.iter().any(|ac| matches!(ac, Action::ApplyWork { .. })));
    assert!(dup.iter().any(|ac| matches!(ac, Action::SendAck { .. })));
}

#[test]
fn repeated_crashes_never_double_apply() {
    let (mut w, a, b) = build_world(7);
    for seq in 1..=10 {
        start_commit(&mut w, a, b, seq);
    }
    // Crash both nodes a few times while the protocol runs.
    for i in 0..5u64 {
        w.run_for(SimDuration::from_millis(20));
        let victim = if i % 2 == 0 { b } else { a };
        w.crash_for(victim, SimDuration::from_millis(30));
    }
    w.run_for(SimDuration::from_secs(10));
    for seq in 1..=10 {
        let txn = TxnId::new(a, seq);
        let count = w
            .stable(b)
            .get(&format!("applied_count/{}", txn.key()))
            .map(|v| v[0])
            .unwrap_or(0);
        assert!(count <= 1, "txn {txn} applied {count} times");
        // If the coordinator committed locally, the participant must apply.
        let local = w.stable(a).contains(&format!("local_commit/{}", txn.key()));
        if local {
            assert_eq!(
                count, 1,
                "txn {txn} committed locally but not applied remotely"
            );
        }
    }
}
