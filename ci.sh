#!/usr/bin/env bash
# CI gate for the workspace. Runs the formatter check, clippy with warnings
# denied, the rustdoc gate (broken intra-doc links and missing docs fail the
# build), tier-1 verify (release build + tests of every crate), and — when
# invoked with --bench — the benches that refresh BENCH_log.json /
# BENCH_macro.json, diffed against the committed baselines by bench_diff.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps \
    --exclude serde --exclude serde_derive --exclude proptest

echo "==> tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q
cargo test --workspace -q

# sync-log is the workspace default now (the sharded simulator needs Sync
# rollback logs); the tier-1 tests above already cover it. Keep the legacy
# Cell-based path compiling for one release.
echo "==> mar-core legacy Cell path (--no-default-features) still compiles"
cargo check -p mar-core --no-default-features -q

echo "==> shard equivalence: platform + kernel suites at shards {1,2,4}"
cargo test -p mar-platform --test shard_equivalence_props -q
cargo test -p mar-simnet shard -q

echo "==> itinerary interning: equivalence + degraded-path suite"
cargo test -p mar-platform --test itinerary_intern_props -q

echo "==> stable backends: conformance + crash-injection suites, all backends"
cargo test -p mar-simnet --test backend_conformance -q
cargo test -p mar-simnet --test backend_crash_props -q
cargo test -p mar-platform --test stable_backend_props -q

echo "==> example smoke stage (all five examples, release)"
for ex in quickstart travel_agency ecommerce_cash systems_management failure_storm; do
    echo "    --example $ex"
    cargo run -q --release --example "$ex" > /dev/null
done

echo "==> distributed smoke stage: driver + 2 node hosts over UDS"
# The travel-agency fleet end to end across three real processes. A wedged
# process must fail CI, not hang it: every PID is reaped with a timeout and
# the driver's own settlement deadline bounds the run.
smoke_dir=$(mktemp -d)
smoke_sock="unix:$smoke_dir/driver.sock"
cargo build -q --release -p mar-net
timeout -k 5 120 target/release/mar-driver --socket "$smoke_sock" --hosts 2 \
    --scenario travel --seed 11 --agents 4 --deadline-secs 600 \
    > "$smoke_dir/driver.out" 2> "$smoke_dir/driver.err" &
driver_pid=$!
timeout -k 5 150 target/release/mar-node-host --socket "$smoke_sock" --host-id 0 \
    --wal-dir "$smoke_dir/h0" 2> /dev/null &
host0_pid=$!
timeout -k 5 150 target/release/mar-node-host --socket "$smoke_sock" --host-id 1 \
    --wal-dir "$smoke_dir/h1" 2> /dev/null &
host1_pid=$!
smoke_ok=1
wait "$driver_pid" || smoke_ok=0
wait "$host0_pid" || smoke_ok=0
wait "$host1_pid" || smoke_ok=0
if [[ "$smoke_ok" != 1 ]] || ! grep -q '^settled=true$' "$smoke_dir/driver.out" \
    || ! grep -q '^money USD=12000$' "$smoke_dir/driver.out"; then
    echo "distributed smoke stage FAILED; driver output:"
    cat "$smoke_dir/driver.out" "$smoke_dir/driver.err" || true
    rm -rf "$smoke_dir"
    exit 1
fi
echo "    settled: $(grep -c '^report ' "$smoke_dir/driver.out") reports, money USD=12000"
rm -rf "$smoke_dir"

echo "==> chaos smoke stage: mar-fleet with a scripted mid-run SIGKILL"
# The supervised deployment end to end: mar-fleet spawns the driver and both
# hosts, SIGKILLs host 1 mid-run, restarts it with backoff, and the run must
# still settle on the exact crash-free answer. `timeout` backstops the
# supervisor's own fleet deadline.
chaos_dir=$(mktemp -d)
chaos_ok=1
timeout -k 5 150 target/release/mar-fleet --socket "unix:$chaos_dir/fleet.sock" \
    --hosts 2 --scenario travel --seed 11 --agents 6 --window-delay-us 3000 \
    --io-timeout-secs 1 --wal-root "$chaos_dir/wal" --kill 400:1 \
    > "$chaos_dir/fleet.out" 2> "$chaos_dir/fleet.err" || chaos_ok=0
if [[ "$chaos_ok" != 1 ]] || ! grep -q '^settled=true$' "$chaos_dir/fleet.out" \
    || ! grep -q '^money USD=12000$' "$chaos_dir/fleet.out"; then
    echo "chaos smoke stage FAILED; fleet output:"
    cat "$chaos_dir/fleet.out" "$chaos_dir/fleet.err" || true
    rm -rf "$chaos_dir"
    exit 1
fi
echo "    $(grep '^mar-fleet: driver exit' "$chaos_dir/fleet.err" | head -1)"
rm -rf "$chaos_dir"

if [[ "${1:-}" == "--bench" ]]; then
    echo "==> cargo bench -p mar-bench (writes BENCH_log.json / BENCH_macro.json)"
    baseline_dir=$(mktemp -d)
    trap 'rm -rf "$baseline_dir"' EXIT
    # Baseline = the *committed* reports (HEAD), so repeated local runs
    # cannot ratchet the baseline; fall back to the working copy only if a
    # report was never committed.
    for f in BENCH_log.json BENCH_macro.json; do
        if ! git show "HEAD:$f" > "$baseline_dir/$f" 2>/dev/null; then
            if [[ -f "$f" ]]; then cp "$f" "$baseline_dir/$f"; fi
        fi
    done
    cargo bench -p mar-bench
    echo "==> bench trend check against committed baselines"
    # --require pins coverage: each tracked benchmark family must appear in
    # the fresh report (a refactor that drops one fails, instead of passing
    # an empty diff).
    cargo run --release -q -p mar-bench --bin bench_diff -- \
        "$baseline_dir/BENCH_log.json" BENCH_log.json --max-regression 3.0 \
        --require "record/lazy_decode/" --require "record/splice_encode/" \
        --require "log/" --require "planner/"
    # The sharded-kernel arm is gated by a floor, not a trend: the 1k-agent
    # fleet's critical-path speedup at 4 shards must stay >= 2x.
    cargo run --release -q -p mar-bench --bin bench_diff -- \
        "$baseline_dir/BENCH_macro.json" BENCH_macro.json --max-regression 3.0 \
        --require "e1_forward/" --require "e9_resident/" --require "e8_fleet/" \
        --require "e10_stable/" --require "e11_itinerary/" --require "e12_net/" \
        --require "e13_chaos/" \
        --min-derived "e8_fleet/agents1000/speedup_shards4:2.0" \
        --min-derived "e13_chaos/kill_uds/restarts:1.0" \
        --min-derived "e10_stable/steady_state/commit_reduction:4.9" \
        --min-derived "e11_itinerary/warm_fleet/byte_reduction:2.0"
fi

echo "ci: all green"
