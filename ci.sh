#!/usr/bin/env bash
# CI gate for the workspace. Runs the formatter check, clippy with warnings
# denied, tier-1 verify (release build + tests of every crate), and — when
# invoked with --bench — the micro benches that refresh BENCH_log.json.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q
cargo test --workspace -q

if [[ "${1:-}" == "--bench" ]]; then
    echo "==> cargo bench -p mar-bench (writes BENCH_log.json / BENCH_macro.json)"
    cargo bench -p mar-bench
fi

echo "ci: all green"
